//! The distributed protocol (message-level, on the simulator) must reach
//! the same structural invariants the central topology model enforces:
//! primary regions tile the space, mutual neighbor knowledge matches edge
//! contact, and dual peers agree on their shared region.

use geogrid::core::engine::sim::SimHarness;
use geogrid::core::engine::{EngineConfig, EngineMode, OwnerView};
use geogrid::core::topology::Role;
use geogrid::core::NodeId;
use geogrid::geometry::{Point, Region, Space};

fn build(mode: EngineMode, n: usize, seed: u64) -> SimHarness {
    let mut h = SimHarness::new(
        Space::paper_evaluation(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
        seed,
    );
    let coord = |i: usize| {
        Point::new(
            ((i as f64 + 1.0) * 0.754877666).fract() * 63.0 + 0.5,
            ((i as f64 + 1.0) * 0.569840296).fract() * 63.0 + 0.5,
        )
    };
    let cap = |i: usize| [1.0, 10.0, 10.0, 100.0, 10.0][i % 5];
    h.bootstrap(coord(0), cap(0));
    for i in 1..n {
        h.join(coord(i), cap(i));
        h.run_for(250);
    }
    h.settle();
    h
}

fn primaries(views: &[(NodeId, OwnerView)]) -> Vec<(NodeId, Region)> {
    views
        .iter()
        .filter(|(_, v)| v.role == Role::Primary)
        .map(|(id, v)| (*id, v.region))
        .collect()
}

fn assert_tiling(views: &[(NodeId, OwnerView)]) {
    let space = Space::paper_evaluation();
    let ps = primaries(views);
    let area: f64 = ps.iter().map(|(_, r)| r.area()).sum();
    assert!(
        (area - space.bounds().area()).abs() < 1e-6,
        "primaries cover {area}"
    );
    for (i, (_, a)) in ps.iter().enumerate() {
        for (_, b) in ps.iter().skip(i + 1) {
            assert!(!a.intersects(b), "{a} overlaps {b}");
        }
    }
}

#[test]
fn basic_protocol_matches_model_invariants() {
    let h = build(EngineMode::Basic, 24, 1);
    let views = h.owner_views();
    assert_eq!(views.len(), 24);
    assert_tiling(&views);

    // Neighbor knowledge: every primary knows an entry for every primary
    // whose region touches its own.
    let ps = primaries(&views);
    for (id, v) in &views {
        if v.role != Role::Primary {
            continue;
        }
        for (other_id, other_region) in &ps {
            if other_id == id {
                continue;
            }
            if v.region.touches_edge(other_region) {
                assert!(
                    v.neighbors.iter().any(|n| n.region == *other_region),
                    "{id} misses touching neighbor region {other_region}"
                );
            }
        }
        // ...and no entry for a non-touching region.
        for n in &v.neighbors {
            assert!(
                n.region.touches_edge(&v.region),
                "{id} holds stale neighbor {}",
                n.region
            );
        }
    }
}

#[test]
fn dual_protocol_pairs_match() {
    let h = build(EngineMode::DualPeer, 20, 2);
    let views = h.owner_views();
    assert_eq!(views.len(), 20);
    assert_tiling(&views);
    // Every secondary's peer is a primary over the same region, and that
    // primary names the secondary back.
    for (id, v) in &views {
        if v.role != Role::Secondary {
            continue;
        }
        let peer = v.peer.expect("secondary has a peer");
        let (_, pv) = views
            .iter()
            .find(|(pid, _)| *pid == peer.id())
            .expect("peer is alive");
        assert_eq!(pv.role, Role::Primary, "{id}'s peer is not primary");
        assert_eq!(pv.region, v.region, "{id} disagrees with its peer's region");
        assert_eq!(
            pv.peer.map(|p| p.id()),
            Some(*id),
            "peer does not acknowledge {id}"
        );
    }
}

#[test]
fn crash_storm_heals_to_full_coverage() {
    let mut h = build(EngineMode::DualPeer, 18, 3);
    // Crash a third of the primaries that have dual peers.
    let victims: Vec<NodeId> = h
        .owner_views()
        .into_iter()
        .filter(|(_, v)| v.role == Role::Primary && v.peer.is_some())
        .map(|(id, _)| id)
        .take(3)
        .collect();
    assert!(!victims.is_empty(), "no full regions formed");
    for v in &victims {
        h.crash(*v);
    }
    h.run_for(5_000); // heartbeat timeouts + promotions
    let views = h.owner_views();
    assert_tiling(&views);
}

#[test]
fn message_cost_of_a_join_is_bounded() {
    // The join protocol is a handful of messages plus neighbor updates —
    // growth must be roughly linear in N (no broadcast storms). Compare
    // non-heartbeat traffic growth between sizes.
    let traffic = |n: usize| {
        let h = build(EngineMode::Basic, n, 4);
        h.stats().sent
    };
    let small = traffic(8);
    let large = traffic(16);
    // Heartbeats dominate (quadratic-ish in run time), so just sanity
    // bound: doubling the network less than quintuples total traffic.
    assert!(
        large < small * 5,
        "traffic exploded: {small} -> {large} for 2x nodes"
    );
}
