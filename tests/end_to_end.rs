//! Cross-crate integration: the paper's full pipeline — build networks,
//! drop hot-spot workloads on them, adapt, and check the headline claims
//! directionally.

use geogrid::core::balance::{AdaptationEngine, BalanceConfig};
use geogrid::core::builder::{Mode, NetworkBuilder};
use geogrid::core::join;
use geogrid::core::load::LoadMap;
use geogrid::core::routing::{RouteOptions, Router};
use geogrid::geometry::{Point, Space};
use geogrid::metrics::gini;
use geogrid::workload::{HotSpotField, WorkloadGrid};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn workload(seed: u64) -> (HotSpotField, WorkloadGrid) {
    let space = Space::paper_evaluation();
    let mut rng = SmallRng::seed_from_u64(seed);
    let field = HotSpotField::random(&mut rng, space, 10);
    let grid = WorkloadGrid::from_field(space, 0.5, &field);
    (field, grid)
}

#[test]
fn variant_ladder_improves_balance() {
    let space = Space::paper_evaluation();
    let (_, grid) = workload(1);

    let basic = NetworkBuilder::new(space, 1).mode(Mode::Basic).build(600);
    let basic_std = LoadMap::from_grid(basic.topology(), &grid)
        .summary(basic.topology())
        .std_dev();

    let mut dual = NetworkBuilder::new(space, 1)
        .mode(Mode::DualPeer)
        .build(600);
    let dual_std = LoadMap::from_grid(dual.topology(), &grid)
        .summary(dual.topology())
        .std_dev();

    let mut loads = LoadMap::from_grid(dual.topology(), &grid);
    AdaptationEngine::new(BalanceConfig::default()).run(dual.topology_mut(), &grid, &mut loads, 25);
    let adapted_std = loads.summary(dual.topology()).std_dev();

    assert!(
        dual_std < basic_std,
        "dual {dual_std} not better than basic {basic_std}"
    );
    assert!(
        adapted_std < dual_std,
        "adaptation {adapted_std} not better than dual {dual_std}"
    );
    // The paper's headline: about an order of magnitude between basic and
    // dual+adaptation. Require at least 4x here (one seed, modest N).
    assert!(
        basic_std / adapted_std > 4.0,
        "improvement only {:.1}x",
        basic_std / adapted_std
    );
    dual.topology().validate().unwrap();
}

#[test]
fn adaptation_reduces_gini_not_just_stddev() {
    let space = Space::paper_evaluation();
    let (_, grid) = workload(2);
    let mut net = NetworkBuilder::new(space, 2)
        .mode(Mode::DualPeer)
        .build(400);
    let before = gini(
        LoadMap::from_grid(net.topology(), &grid)
            .node_indexes(net.topology())
            .into_values()
            .filter(|v| *v > 0.0),
    );
    let mut loads = LoadMap::from_grid(net.topology(), &grid);
    AdaptationEngine::default().run(net.topology_mut(), &grid, &mut loads, 25);
    let after = gini(
        loads
            .node_indexes(net.topology())
            .into_values()
            .filter(|v| *v > 0.0),
    );
    assert!(
        after <= before + 1e-9,
        "gini got worse: {before} -> {after}"
    );
}

#[test]
fn churn_then_adaptation_keeps_invariants() {
    let space = Space::paper_evaluation();
    let (_, grid) = workload(3);
    let mut net = NetworkBuilder::new(space, 3)
        .mode(Mode::DualPeer)
        .build(300);
    // Kill 30 random-ish nodes (every 7th primary/secondary id).
    let victims: Vec<_> = net
        .topology()
        .nodes()
        .map(|n| n.id())
        .filter(|id| id.as_u64() % 7 == 0)
        .take(30)
        .collect();
    for v in victims {
        join::fail(net.topology_mut(), v).expect("failure handled");
    }
    net.topology().validate().unwrap();
    // Adapt afterwards: still valid, still improves.
    let before = LoadMap::from_grid(net.topology(), &grid)
        .summary(net.topology())
        .std_dev();
    let mut loads = LoadMap::from_grid(net.topology(), &grid);
    AdaptationEngine::default().run(net.topology_mut(), &grid, &mut loads, 15);
    let after = loads.summary(net.topology()).std_dev();
    assert!(after <= before);
    net.topology().validate().unwrap();
}

#[test]
fn routing_works_after_heavy_adaptation() {
    let space = Space::paper_evaluation();
    let (_, grid) = workload(4);
    let mut net = NetworkBuilder::new(space, 4)
        .mode(Mode::DualPeer)
        .build(500);
    let mut loads = LoadMap::from_grid(net.topology(), &grid);
    AdaptationEngine::default().run(net.topology_mut(), &grid, &mut loads, 25);
    let topo = net.topology();
    let entry = topo.first_region().unwrap();
    let mut router = Router::new();
    for i in 0..50 {
        let target = Point::new(
            ((i as f64 * 0.7548).fract()) * 63.9 + 0.05,
            ((i as f64 * 0.5698).fract()) * 63.9 + 0.05,
        );
        let executor = router
            .route(topo, entry, target, &RouteOptions::greedy())
            .expect("routable");
        assert!(topo.region(executor).unwrap().covers(target, space));
    }
}

#[test]
fn moving_hotspots_never_break_the_overlay() {
    let space = Space::paper_evaluation();
    let mut rng = SmallRng::seed_from_u64(5);
    let mut field = HotSpotField::random(&mut rng, space, 8);
    let mut grid = WorkloadGrid::from_field(space, 0.5, &field);
    let mut net = NetworkBuilder::new(space, 5)
        .mode(Mode::DualPeer)
        .build(300);
    let engine = AdaptationEngine::default();
    for _ in 0..10 {
        field.advance_epochs(&mut rng, space, 6);
        grid.fill(&field);
        let mut loads = LoadMap::from_grid(net.topology(), &grid);
        engine.run_round(net.topology_mut(), &grid, &mut loads);
        net.topology().validate().unwrap();
    }
}
