//! Property-based tests over the whole stack: arbitrary join/leave
//! sequences and workloads must never break the overlay's invariants.

use geogrid::core::balance::{AdaptationEngine, BalanceConfig};
use geogrid::core::builder::{Mode, NetworkBuilder};
use geogrid::core::join;
use geogrid::core::load::LoadMap;
use geogrid::core::routing::{RouteOptions, Router};
use geogrid::core::Topology;
use geogrid::geometry::{Point, Space};
use geogrid::workload::{HotSpot, HotSpotField, WorkloadGrid};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..=64.0, 0.0..=64.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_capacity() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(1.0),
        Just(10.0),
        Just(100.0),
        Just(1_000.0),
        Just(10_000.0)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any mixed sequence of basic joins keeps the topology valid and the
    /// partition exact.
    #[test]
    fn basic_joins_always_valid(
        points in prop::collection::vec((arb_point(), arb_capacity()), 1..40)
    ) {
        let space = Space::paper_evaluation();
        let mut topo = Topology::new(space);
        let first = topo.register_node(points[0].0, points[0].1);
        let root = topo.bootstrap(first).expect("fresh");
        for (p, cap) in &points[1..] {
            join::join_basic(&mut topo, root, *p, *cap).expect("join");
        }
        prop_assert!(topo.validate().is_ok(), "{:?}", topo.validate());
    }

    /// Dual-peer joins keep validity and never produce more regions than
    /// nodes.
    #[test]
    fn dual_joins_always_valid(
        points in prop::collection::vec((arb_point(), arb_capacity()), 1..40)
    ) {
        let space = Space::paper_evaluation();
        let mut topo = Topology::new(space);
        let first = topo.register_node(points[0].0, points[0].1);
        let root = topo.bootstrap(first).expect("fresh");
        for (p, cap) in &points[1..] {
            join::join_dual(&mut topo, root, *p, *cap).expect("join");
        }
        prop_assert!(topo.validate().is_ok(), "{:?}", topo.validate());
        prop_assert!(topo.region_count() <= topo.node_count());
    }

    /// Joins interleaved with departures/failures keep validity as long
    /// as at least one node remains.
    #[test]
    fn churn_always_valid(
        seed in 0u64..1000,
        ops in prop::collection::vec((any::<bool>(), arb_point(), arb_capacity()), 1..60)
    ) {
        let space = Space::paper_evaluation();
        let mut net = NetworkBuilder::new(space, seed).mode(Mode::DualPeer).build(8);
        for (leave, p, cap) in ops {
            if leave && net.topology().node_count() > 4 {
                // Depart a deterministic victim.
                let victim = net
                    .topology()
                    .nodes()
                    .map(|n| n.id())
                    .min()
                    .expect("nonempty");
                join::depart(net.topology_mut(), victim).expect("departure");
            } else {
                let entry = net.topology().first_region().expect("nonempty");
                join::join_dual(net.topology_mut(), entry, p, cap).expect("join");
            }
            prop_assert!(
                net.topology().validate().is_ok(),
                "{:?}",
                net.topology().validate()
            );
        }
    }

    /// Greedy routing always terminates at the region covering the target
    /// and never exceeds the scan-verified executor.
    #[test]
    fn routing_always_reaches_cover(
        seed in 0u64..100,
        n in 2usize..120,
        target in arb_point()
    ) {
        let space = Space::paper_evaluation();
        let net = NetworkBuilder::new(space, seed).build(n);
        let topo = net.topology();
        let from = topo.first_region().expect("nonempty");
        let mut router = Router::new();
        let executor = router
            .route(topo, from, target, &RouteOptions::greedy())
            .expect("route");
        prop_assert!(topo.region(executor).expect("live").covers(target, space));
        prop_assert_eq!(executor, topo.locate_scan(target).expect("scan"));
    }

    /// Adaptation preserves every structural invariant and never
    /// meaningfully increases the workload-index spread, for any hot-spot
    /// layout. (Each mechanism improves its own overloaded region; the
    /// *global* std-dev may wiggle by a hair when ownership moves, so the
    /// bound allows 1% relative slack.)
    #[test]
    fn adaptation_is_safe_and_non_worsening(
        seed in 0u64..100,
        spots in prop::collection::vec((arb_point(), 0.5..10.0), 1..6)
    ) {
        let space = Space::paper_evaluation();
        let mut net = NetworkBuilder::new(space, seed).mode(Mode::DualPeer).build(120);
        let field = HotSpotField::new(
            spots.into_iter().map(|(c, r)| HotSpot::new(c, r)).collect(),
        );
        let grid = WorkloadGrid::from_field(space, 0.5, &field);
        let before = LoadMap::from_grid(net.topology(), &grid)
            .summary(net.topology())
            .std_dev();
        let mut loads = LoadMap::from_grid(net.topology(), &grid);
        AdaptationEngine::new(BalanceConfig::default())
            .run(net.topology_mut(), &grid, &mut loads, 15);
        let after = loads.summary(net.topology()).std_dev();
        prop_assert!(net.topology().validate().is_ok(), "{:?}", net.topology().validate());
        prop_assert!(after <= before * 1.01 + 1e-12, "std grew: {before} -> {after}");
    }

    /// Everything at once: joins, departures, hot-spot migration, and
    /// adaptation rounds interleaved in arbitrary order never break a
    /// structural invariant.
    #[test]
    fn full_lifecycle_chaos(seed in 0u64..200, ops in prop::collection::vec(0u8..4, 1..40)) {
        let space = Space::paper_evaluation();
        let mut net = NetworkBuilder::new(space, seed).mode(Mode::DualPeer).build(60);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut field = HotSpotField::random(&mut rng, space, 5);
        let mut grid = WorkloadGrid::from_field(space, 0.5, &field);
        let engine = AdaptationEngine::new(BalanceConfig::default());
        for op in ops {
            match op {
                0 => {
                    net.join_one();
                }
                1 => {
                    if net.topology().node_count() > 8 {
                        let victim = net
                            .topology()
                            .nodes()
                            .map(|n| n.id())
                            .min()
                            .expect("nonempty");
                        join::fail(net.topology_mut(), victim).expect("failure handled");
                    }
                }
                2 => {
                    field.advance_epoch(&mut rng, space);
                    grid.fill(&field);
                }
                _ => {
                    let mut loads = LoadMap::from_grid(net.topology(), &grid);
                    engine.run_round(net.topology_mut(), &grid, &mut loads);
                }
            }
            prop_assert!(
                net.topology().validate().is_ok(),
                "after op {op}: {:?}",
                net.topology().validate()
            );
        }
        // Routing still works everywhere afterwards.
        let topo = net.topology();
        let entry = topo.first_region().expect("nonempty");
        let mut router = Router::new();
        let executor = router
            .route(topo, entry, Point::new(33.0, 31.0), &RouteOptions::greedy())
            .expect("routable");
        prop_assert!(topo
            .region(executor)
            .expect("live")
            .covers(Point::new(33.0, 31.0), space));
    }

    /// The workload grid conserves mass under any partition the builder
    /// produces: per-region loads sum to the grid total.
    #[test]
    fn region_loads_conserve_mass(
        seed in 0u64..100,
        n in 2usize..150,
        spot in arb_point(),
        radius in 0.5..10.0
    ) {
        let space = Space::paper_evaluation();
        let net = NetworkBuilder::new(space, seed).build(n);
        let field = HotSpotField::new(vec![HotSpot::new(spot, radius)]);
        let grid = WorkloadGrid::from_field(space, 0.5, &field);
        let sum: f64 = net
            .topology()
            .regions()
            .map(|(_, e)| grid.region_load(&e.region()))
            .sum();
        prop_assert!((sum - grid.total()).abs() < 1e-6, "sum {sum} != {}", grid.total());
    }
}
