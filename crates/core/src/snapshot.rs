//! Epoch-published immutable topology snapshots: lock-free concurrent
//! routing behind a redesigned read API.
//!
//! [`Topology`](crate::Topology) is a single-writer structure — every
//! split, merge, and ownership move takes `&mut`. The routing engines,
//! however, only ever *read* geometry, and the invariants enforced by the
//! workspace lint pass make those reads snapshottable:
//!
//! * **GG001** — region geometry (rectangles, adjacency, the grid index,
//!   the finger blocks) is rewritten at exactly three marked sites:
//!   [`Topology::bootstrap`](crate::Topology::bootstrap),
//!   [`Topology::split_region`](crate::Topology::split_region), and
//!   [`Topology::merge_regions`](crate::Topology::merge_regions).
//! * **GG005** — the geometry epoch is written only by `bump_epoch`,
//!   which each of those sites calls exactly once.
//!
//! So "the geometry at epoch E" is a well-defined immutable value, and the
//! three sites are the only places it can change. This module captures
//! that value as a [`TopologySnapshot`] and publishes it through a
//! [`SnapshotCell`] — an RCU-style cell the three sites atomically swap a
//! fresh `Arc` into (rule GG006 forbids publication anywhere else). Reader
//! threads hold a [`SnapshotReader`] whose steady-state cost per query is
//! **one atomic load**: the cell's version counter is checked, and only
//! when it changed does the reader touch the lock to fetch the new `Arc`.
//! Readers route against their snapshot with a per-thread
//! [`RouteScratch`](crate::routing::RouteScratch) — no locks, no shared
//! mutable state — while writers serialize on the `&mut Topology` path.
//!
//! Reclamation is `Arc` reference counting: a superseded snapshot lives
//! exactly as long as the slowest reader still routing on it, then frees.
//! There is no grace period to manage and no epoch-based deferred list —
//! the cost is one allocation per publication, which is already O(N).
//!
//! [`TopologyView`] is the read API the routing engines are written
//! against: both `Topology` (direct, single-threaded) and
//! `TopologySnapshot` (published, many-threaded) implement it, so one
//! monomorphized engine serves both paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use geogrid_geometry::{Point, Region, Space};

use crate::topology::{FingerBlock, SlotGeo, GRID_DIM};
use crate::{CoreError, RegionId};

/// The read-only geometry interface the routing engines are written
/// against, implemented by both [`Topology`](crate::Topology) (the live
/// single-writer structure) and [`TopologySnapshot`] (the immutable
/// published copy).
///
/// Slot indexes follow the [`RegionId::index`] contract of the topology's
/// flat mirrors: only live slots may be dereferenced through
/// [`Self::slot_rect`] / [`Self::slot_center`] / [`Self::slot_fingers`] /
/// [`Self::neighbors`]; [`Self::is_live`] is total over `usize`.
pub trait TopologyView {
    /// The space this view partitions.
    fn space(&self) -> Space;

    /// Process-unique identity of the underlying topology instance (see
    /// [`Topology::instance_id`](crate::Topology::instance_id)). A
    /// snapshot inherits its source's id, so route caches keyed by
    /// `(instance_id, epoch)` stay warm across republications of the
    /// same unchanged geometry and flush on any real change.
    fn instance_id(&self) -> u64;

    /// The geometry epoch this view describes (see
    /// [`Topology::epoch`](crate::Topology::epoch)).
    fn epoch(&self) -> u64;

    /// Number of live regions.
    fn region_count(&self) -> usize;

    /// Exclusive upper bound on live slot indexes (the slot-table length).
    fn slot_count(&self) -> usize;

    /// Whether `slot` currently holds a live region. Total: out-of-range
    /// slots are simply not live.
    fn is_live(&self, slot: usize) -> bool;

    /// The rectangle of the live region in `slot`.
    fn slot_rect(&self, slot: usize) -> Region;

    /// The center of the live region in `slot`.
    fn slot_center(&self, slot: usize) -> Point;

    /// The express-link finger block of the live region in `slot`.
    fn slot_fingers(&self, slot: usize) -> &FingerBlock;

    /// Ids of the regions edge-adjacent to the live region in `slot`.
    fn neighbors(&self, slot: usize) -> &[RegionId];

    /// The smallest finger distance scale (see
    /// [`Topology::finger_base`](crate::Topology::finger_base)).
    fn finger_base(&self) -> f64;

    /// Row-major grid-index cell containing `p` (0 when uninitialised).
    fn grid_cell_of(&self, p: Point) -> u32;

    /// Number of grid-index cells (0 until initialised).
    fn grid_cell_count(&self) -> usize;

    /// Closed rectangle of grid cell `cell`; `None` until initialised.
    fn grid_cell_rect(&self, cell: u32) -> Option<Region>;

    /// The region covering `p`, via the spatial index.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfSpace`] if `p` is outside the space, or
    /// [`CoreError::EmptyNetwork`] if there are no regions.
    fn locate(&self, p: Point) -> Result<RegionId, CoreError>;

    /// Whether the live region in `slot` covers `p`, honoring the
    /// space-boundary adjustment (see [`Space::region_covers`]).
    #[inline]
    fn covers(&self, slot: usize, p: Point) -> bool {
        self.space().region_covers(&self.slot_rect(slot), p)
    }
}

/// An immutable copy of one geometry epoch of a topology: the slot
/// rectangle/center mirror, the express-finger blocks, edge adjacency,
/// and the uniform-grid spatial index, flattened into dense arrays.
///
/// Built by [`Topology::snapshot`](crate::Topology::snapshot) and
/// published through a [`SnapshotCell`]; never mutated after
/// construction, so any number of threads may route against one
/// concurrently with zero synchronization. Ownership data (primaries,
/// secondaries) is deliberately absent — routing never reads it, and
/// leaving it out keeps ownership churn (fail-over, swaps) from forcing
/// republication.
#[derive(Debug, Clone)]
pub struct TopologySnapshot {
    pub(crate) space: Space,
    pub(crate) instance_id: u64,
    pub(crate) epoch: u64,
    pub(crate) region_count: usize,
    /// Rect + center per slot, same layout as the live mirror (entries of
    /// dead slots are arbitrary; consult `live` first).
    pub(crate) slot_geo: Vec<SlotGeo>,
    /// Finger block per slot (same staleness contract as `slot_geo`).
    pub(crate) slot_fingers: Vec<FingerBlock>,
    /// Liveness per slot.
    pub(crate) live: Vec<bool>,
    /// CSR offsets into `neighbor_ids`, length `slot_count + 1`.
    pub(crate) neighbor_off: Vec<u32>,
    /// Concatenated neighbor lists of every slot (dead slots span zero).
    pub(crate) neighbor_ids: Vec<RegionId>,
    pub(crate) grid_origin_x: f64,
    pub(crate) grid_origin_y: f64,
    pub(crate) grid_cell_w: f64,
    pub(crate) grid_cell_h: f64,
    /// CSR offsets into `cell_ids`, length `cell_count + 1` (empty when
    /// the grid was never initialised).
    pub(crate) cell_off: Vec<u32>,
    /// Concatenated grid-bucket candidate lists, row-major cell order.
    pub(crate) cell_ids: Vec<RegionId>,
    pub(crate) finger_base: f64,
}

impl TopologySnapshot {
    /// The geometry epoch this snapshot captured.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The instance id of the topology this snapshot was taken from.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Number of live regions in the snapshot.
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// Exclusive upper bound on live slot indexes.
    pub fn slot_count(&self) -> usize {
        self.live.len()
    }

    /// The space the snapshotted topology partitions.
    pub fn space(&self) -> Space {
        self.space
    }

    /// Iterator over live region ids, ascending.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| RegionId::new(i as u32))
    }

    /// Any live region id (the lowest).
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyNetwork`] when the snapshot holds no regions.
    pub fn first_region(&self) -> Result<RegionId, CoreError> {
        self.region_ids().next().ok_or(CoreError::EmptyNetwork)
    }

    /// Grid column of `x`, clamped (mirrors the live index's closed-span
    /// arithmetic bit for bit).
    fn col(&self, x: f64) -> usize {
        (((x - self.grid_origin_x) / self.grid_cell_w) as usize).min(GRID_DIM - 1)
    }

    fn row(&self, y: f64) -> usize {
        (((y - self.grid_origin_y) / self.grid_cell_h) as usize).min(GRID_DIM - 1)
    }
}

impl TopologyView for TopologySnapshot {
    fn space(&self) -> Space {
        self.space
    }

    fn instance_id(&self) -> u64 {
        self.instance_id
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn region_count(&self) -> usize {
        self.region_count
    }

    fn slot_count(&self) -> usize {
        self.live.len()
    }

    #[inline]
    fn is_live(&self, slot: usize) -> bool {
        self.live.get(slot).copied().unwrap_or(false)
    }

    #[inline]
    fn slot_rect(&self, slot: usize) -> Region {
        self.slot_geo[slot].rect
    }

    #[inline]
    fn slot_center(&self, slot: usize) -> Point {
        self.slot_geo[slot].center
    }

    #[inline]
    fn slot_fingers(&self, slot: usize) -> &FingerBlock {
        &self.slot_fingers[slot]
    }

    #[inline]
    fn neighbors(&self, slot: usize) -> &[RegionId] {
        let lo = self.neighbor_off[slot] as usize;
        let hi = self.neighbor_off[slot + 1] as usize;
        &self.neighbor_ids[lo..hi]
    }

    #[inline]
    fn finger_base(&self) -> f64 {
        self.finger_base
    }

    #[inline]
    fn grid_cell_of(&self, p: Point) -> u32 {
        if self.cell_off.len() <= 1 {
            return 0;
        }
        (self.row(p.y) * GRID_DIM + self.col(p.x)) as u32
    }

    fn grid_cell_count(&self) -> usize {
        self.cell_off.len().saturating_sub(1)
    }

    fn grid_cell_rect(&self, cell: u32) -> Option<Region> {
        if self.cell_off.len() <= 1 {
            return None;
        }
        let (row, col) = (cell as usize / GRID_DIM, cell as usize % GRID_DIM);
        Some(Region::new(
            self.grid_origin_x + col as f64 * self.grid_cell_w,
            self.grid_origin_y + row as f64 * self.grid_cell_h,
            self.grid_cell_w,
            self.grid_cell_h,
        ))
    }

    fn locate(&self, p: Point) -> Result<RegionId, CoreError> {
        if !self.space.covers(p) {
            return Err(CoreError::OutOfSpace { x: p.x, y: p.y });
        }
        if self.cell_off.len() > 1 {
            let cell = self.grid_cell_of(p) as usize;
            let lo = self.cell_off[cell] as usize;
            let hi = self.cell_off[cell + 1] as usize;
            for &rid in &self.cell_ids[lo..hi] {
                if self
                    .space
                    .region_covers(&self.slot_geo[rid.index()].rect, p)
                {
                    return Ok(rid);
                }
            }
        }
        Err(CoreError::EmptyNetwork)
    }
}

/// The RCU publication point: an atomically versioned slot holding the
/// most recently published [`TopologySnapshot`].
///
/// Obtained from [`Topology::publish_handle`](crate::Topology::publish_handle);
/// once attached, the three geometry-rewrite sites republish into it on
/// every mutation (and the workspace lint rule **GG006** forbids calling
/// [`Self::install_snapshot`] anywhere else). Readers do not use the cell
/// directly per query — they hold a [`SnapshotReader`], which turns the
/// common no-change case into a single atomic load.
#[derive(Debug)]
pub struct SnapshotCell {
    /// Publication counter, bumped (Release) on every install while the
    /// write lock is held — a reader that observes version `v` and then
    /// locks the slot is guaranteed a snapshot at least as new as `v`.
    version: AtomicU64,
    /// The published snapshot. The lock is held for nanoseconds (an `Arc`
    /// clone or store); steady-state readers skip it entirely via the
    /// version check.
    slot: RwLock<Arc<TopologySnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(initial: Arc<TopologySnapshot>) -> Self {
        Self {
            version: AtomicU64::new(1),
            slot: RwLock::new(initial),
        }
    }

    /// The current publication counter (monotone; starts at 1).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Atomically publishes `snap` as the current snapshot.
    ///
    /// This is a publication primitive in the sense of lint rule GG006:
    /// outside tests, it may only be called from the marked
    /// geometry-rewrite / snapshot-publish sites — concurrent readers
    /// assume every published snapshot is a coherent epoch of the one
    /// attached topology, and an out-of-band install breaks that.
    pub fn install_snapshot(&self, snap: Arc<TopologySnapshot>) {
        let mut guard = self.slot.write().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(
            snap.instance_id == guard.instance_id && snap.epoch >= guard.epoch,
            "snapshot publication must be monotone within one topology instance"
        );
        *guard = snap;
        // Bumped while the write lock is still held: a reader seeing the
        // new version and then read-locking cannot get the old snapshot.
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The currently published snapshot (one lock round-trip). Prefer a
    /// [`SnapshotReader`] on hot paths.
    pub fn load(&self) -> Arc<TopologySnapshot> {
        Arc::clone(&self.slot.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// A per-thread reader handle over this cell.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader::new(Arc::clone(self))
    }
}

/// A per-thread cached handle onto a [`SnapshotCell`]: holds the last
/// snapshot `Arc` it saw and revalidates with one atomic version load per
/// [`Self::current`] call, touching the cell's lock only when a writer
/// actually published in between. Clone one per reader thread.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
    /// The cell version `current` was loaded under. Reading the version
    /// *before* the snapshot keeps staleness one-sided: if a publish
    /// lands between the two reads we hold a snapshot *newer* than
    /// `seen` and merely reload once more on the next call.
    seen: u64,
    current: Arc<TopologySnapshot>,
}

impl SnapshotReader {
    /// Creates a reader positioned at the cell's current snapshot.
    pub fn new(cell: Arc<SnapshotCell>) -> Self {
        let seen = cell.version();
        let current = cell.load();
        Self {
            cell,
            seen,
            current,
        }
    }

    /// The latest published snapshot. Steady state (no publication since
    /// the last call) is one atomic load and no locking; after a
    /// publication the new `Arc` is fetched under the cell's read lock
    /// once and cached again.
    #[inline]
    pub fn current(&mut self) -> &Arc<TopologySnapshot> {
        let v = self.cell.version();
        if v != self.seen {
            self.seen = v;
            self.current = self.cell.load();
        }
        &self.current
    }

    /// The snapshot this reader is currently pinned to, without
    /// revalidating against the cell.
    pub fn pinned(&self) -> &Arc<TopologySnapshot> {
        &self.current
    }
}
