//! Workload-index accounting.
//!
//! The paper's load measure is the **workload index**: the workload mapped
//! to a node's region, normalized by the node's capacity. Query workload
//! comes from the hot-spot cell grid (`geogrid-workload`); routing workload
//! counts greedy-forwarding transit traffic from a sampled query mix (the
//! paper balances "both the location query workload and the routing
//! workload").
//!
//! Mechanism (d) of §2.4 — splitting a region with equal-capacity dual
//! owners "can reduce the workload index of the original primary owner by
//! half" — implies the primary bears its region's entire load while the
//! secondary only replicates. Node indexes follow that model: a region's
//! index is charged to its primary; secondaries (and unassigned nodes)
//! carry index 0.

use std::collections::HashMap;

use geogrid_geometry::Point;
use geogrid_metrics::Summary;
use geogrid_workload::{HotSpotField, QueryGenerator, WorkloadGrid};
use rand::Rng;

use crate::{routing, NodeId, RegionId, Topology};

/// Per-region workload components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegionLoad {
    /// Normalized query workload (fraction of the global field's mass).
    pub query: f64,
    /// Routing transit load (mean transits per sampled query).
    pub routing: f64,
}

/// The workload of every region, plus the routing weight `α` used to
/// combine the two components.
///
/// # Examples
///
/// ```
/// use geogrid_core::builder::NetworkBuilder;
/// use geogrid_core::load::LoadMap;
/// use geogrid_geometry::Space;
/// use geogrid_workload::{HotSpotField, WorkloadGrid};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let space = Space::paper_evaluation();
/// let net = NetworkBuilder::new(space, 1).build(50);
/// let field = HotSpotField::random(&mut rng, space, 5);
/// let grid = WorkloadGrid::from_field(space, 0.5, &field);
/// let loads = LoadMap::from_grid(net.topology(), &grid);
/// assert!(loads.summary(net.topology()).mean() >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadMap {
    loads: HashMap<RegionId, RegionLoad>,
    alpha: f64,
}

impl LoadMap {
    /// Computes query loads for every region from the cell grid (no
    /// routing component; `α = 0`).
    pub fn from_grid(topo: &Topology, grid: &WorkloadGrid) -> Self {
        let total = grid.total().max(f64::MIN_POSITIVE);
        let loads = topo
            .regions()
            .map(|(rid, e)| {
                (
                    rid,
                    RegionLoad {
                        query: grid.region_load(&e.region()) / total,
                        routing: 0.0,
                    },
                )
            })
            .collect();
        Self { loads, alpha: 0.0 }
    }

    /// Computes query loads and adds routing transit loads from `samples`
    /// greedy-routed queries whose targets follow `field` with the given
    /// hot-spot `bias`. `alpha` weights routing against query load.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or non-finite.
    pub fn with_routing<R: Rng + ?Sized>(
        topo: &Topology,
        grid: &WorkloadGrid,
        field: &HotSpotField,
        rng: &mut R,
        samples: usize,
        bias: f64,
        alpha: f64,
    ) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        let mut map = Self::from_grid(topo, grid);
        map.alpha = alpha;
        if samples == 0 {
            return map;
        }
        let ids: Vec<RegionId> = topo.region_ids().collect();
        let mut generator = QueryGenerator::new(topo.space()).hotspot_bias(bias);
        let per_query = 1.0 / samples as f64;
        // One scratch for the whole sample batch: hot-spot-biased targets
        // hit the next-hop cache heavily, and no per-query buffers are
        // allocated.
        let mut scratch = routing::RouteScratch::new();
        for _ in 0..samples {
            let q = generator.generate(rng, field);
            let from = ids[rng.random_range(0..ids.len())];
            if routing::greedy_into(topo, from, q.target, &mut scratch).is_ok() {
                // Transit regions do forwarding work; the executor's query
                // work is already in the grid component.
                let hops = scratch.hops();
                for &rid in &hops[..hops.len().saturating_sub(1)] {
                    map.loads.entry(rid).or_default().routing += per_query;
                }
            }
        }
        map
    }

    /// The routing weight `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The load components of a region (default zero if untracked).
    pub fn region_load(&self, rid: RegionId) -> RegionLoad {
        self.loads.get(&rid).copied().unwrap_or_default()
    }

    /// Combined load of a region: `query + α · routing`.
    pub fn combined(&self, rid: RegionId) -> f64 {
        let l = self.region_load(rid);
        l.query + self.alpha * l.routing
    }

    /// The region's workload index: combined load over the primary's
    /// capacity. Returns 0 for dead regions.
    pub fn index_of(&self, topo: &Topology, rid: RegionId) -> f64 {
        let Some(entry) = topo.region(rid) else {
            return 0.0;
        };
        let cap = topo
            .node(entry.primary())
            .map(|n| n.capacity())
            .unwrap_or(f64::INFINITY);
        self.combined(rid) / cap
    }

    /// Workload index of every registered node: primaries carry their
    /// region's index, secondaries and unassigned nodes carry 0.
    pub fn node_indexes(&self, topo: &Topology) -> HashMap<NodeId, f64> {
        let mut out: HashMap<NodeId, f64> = topo.nodes().map(|n| (n.id(), 0.0)).collect();
        for (rid, e) in topo.regions() {
            out.insert(e.primary(), self.index_of(topo, rid));
        }
        out
    }

    /// Max/mean/std summary of all node workload indexes — the statistics
    /// Figures 5–10 plot.
    pub fn summary(&self, topo: &Topology) -> Summary {
        Summary::from_values(self.node_indexes(topo).into_values())
    }

    /// Re-reads one region's query load from the grid (after a split or
    /// merge changed its rectangle).
    pub fn refresh_from_grid(&mut self, topo: &Topology, grid: &WorkloadGrid, rid: RegionId) {
        if let Some(e) = topo.region(rid) {
            let total = grid.total().max(f64::MIN_POSITIVE);
            let entry = self.loads.entry(rid).or_default();
            entry.query = grid.region_load(&e.region()) / total;
        }
    }

    /// Accounts for a region split: recomputes query loads of both halves
    /// and divides the parent's routing load proportionally to query mass
    /// (a cheap, locality-preserving approximation; routing loads are
    /// re-sampled at the next full recomputation).
    pub fn on_split(
        &mut self,
        topo: &Topology,
        grid: &WorkloadGrid,
        kept: RegionId,
        created: RegionId,
    ) {
        let parent_routing = self.region_load(kept).routing;
        self.refresh_from_grid(topo, grid, kept);
        self.refresh_from_grid(topo, grid, created);
        let qa = self.region_load(kept).query;
        let qb = self.region_load(created).query;
        let total = (qa + qb).max(f64::MIN_POSITIVE);
        if let Some(l) = self.loads.get_mut(&kept) {
            l.routing = parent_routing * qa / total;
        }
        if let Some(l) = self.loads.get_mut(&created) {
            l.routing = parent_routing * qb / total;
        }
    }

    /// Accounts for a merge of `removed` into `into`: loads add.
    pub fn on_merge(&mut self, removed: RegionId, into: RegionId) {
        let gone = self.loads.remove(&removed).unwrap_or_default();
        let entry = self.loads.entry(into).or_default();
        entry.query += gone.query;
        entry.routing += gone.routing;
    }
}

/// Samples `(entry region, target point)` routing queries for ad-hoc hop
/// measurements (the `O(2√N)` routing experiment).
pub fn sample_routing_pairs<R: Rng + ?Sized>(
    topo: &Topology,
    rng: &mut R,
    n: usize,
) -> Vec<(RegionId, Point)> {
    let ids: Vec<RegionId> = topo.region_ids().collect();
    let bounds = topo.space().bounds();
    (0..n)
        .map(|_| {
            let from = ids[rng.random_range(0..ids.len())];
            let target = Point::new(
                rng.random_range(bounds.x()..=bounds.east()),
                rng.random_range(bounds.y()..=bounds.north()),
            );
            (from, target)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Mode, NetworkBuilder};
    use geogrid_geometry::Space;
    use geogrid_workload::HotSpot;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(n: usize, mode: Mode) -> (crate::Topology, WorkloadGrid, HotSpotField) {
        let space = Space::paper_evaluation();
        let net = NetworkBuilder::new(space, 11).mode(mode).build(n);
        let field = HotSpotField::new(vec![
            HotSpot::new(Point::new(16.0, 16.0), 8.0),
            HotSpot::new(Point::new(48.0, 48.0), 4.0),
        ]);
        let grid = WorkloadGrid::from_field(space, 0.5, &field);
        (net.topology().clone(), grid, field)
    }

    #[test]
    fn query_loads_sum_to_one() {
        let (topo, grid, _) = setup(100, Mode::Basic);
        let map = LoadMap::from_grid(&topo, &grid);
        let sum: f64 = topo.region_ids().map(|r| map.region_load(r).query).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn index_divides_by_capacity() {
        let (topo, grid, _) = setup(50, Mode::Basic);
        let map = LoadMap::from_grid(&topo, &grid);
        for rid in topo.region_ids() {
            let e = topo.region(rid).unwrap();
            let cap = topo.node(e.primary()).unwrap().capacity();
            let expected = map.combined(rid) / cap;
            assert!((map.index_of(&topo, rid) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn node_indexes_cover_every_node() {
        let (topo, grid, _) = setup(80, Mode::DualPeer);
        let map = LoadMap::from_grid(&topo, &grid);
        let idx = map.node_indexes(&topo);
        assert_eq!(idx.len(), topo.node_count());
        // Secondaries must be zero.
        for (_, e) in topo.regions() {
            if let Some(s) = e.secondary() {
                assert_eq!(idx[&s], 0.0);
            }
        }
    }

    #[test]
    fn routing_load_hits_transit_regions() {
        let (topo, grid, field) = setup(100, Mode::Basic);
        let mut rng = SmallRng::seed_from_u64(4);
        let map = LoadMap::with_routing(&topo, &grid, &field, &mut rng, 200, 0.5, 1.0);
        let total_routing: f64 = topo.region_ids().map(|r| map.region_load(r).routing).sum();
        // Mean path length over 100 regions should be a few hops.
        assert!(total_routing > 1.0, "total routing {total_routing}");
        assert!(map.alpha() == 1.0);
        // Combined load exceeds pure query load somewhere.
        let boosted = topo
            .region_ids()
            .any(|r| map.combined(r) > map.region_load(r).query);
        assert!(boosted);
    }

    #[test]
    fn split_bookkeeping_preserves_mass() {
        let (mut topo, grid, _) = setup(30, Mode::Basic);
        let mut map = LoadMap::from_grid(&topo, &grid);
        // Give a region some routing load, then split it via a fresh join.
        let rid = topo.region_ids().next().unwrap();
        let before = map.region_load(rid);
        let routing_seed = 0.6;
        if let Some(l) = map.loads.get_mut(&rid) {
            l.routing = routing_seed;
        }
        let primary = topo.region(rid).unwrap().primary();
        let joiner = topo.register_node(topo.region(rid).unwrap().region().center(), 10.0);
        let created = topo.split_region(rid, primary, joiner).unwrap();
        map.on_split(&topo, &grid, rid, created);
        let after = map.region_load(rid);
        let new = map.region_load(created);
        assert!((after.query + new.query - before.query).abs() < 1e-9);
        assert!((after.routing + new.routing - routing_seed).abs() < 1e-9);
    }

    #[test]
    fn merge_bookkeeping_adds() {
        let mut map = LoadMap {
            loads: HashMap::new(),
            alpha: 0.0,
        };
        map.loads.insert(
            RegionId::new(0),
            RegionLoad {
                query: 0.25,
                routing: 1.0,
            },
        );
        map.loads.insert(
            RegionId::new(1),
            RegionLoad {
                query: 0.5,
                routing: 2.0,
            },
        );
        map.on_merge(RegionId::new(1), RegionId::new(0));
        let l = map.region_load(RegionId::new(0));
        assert_eq!(l.query, 0.75);
        assert_eq!(l.routing, 3.0);
        assert_eq!(map.region_load(RegionId::new(1)), RegionLoad::default());
    }

    #[test]
    fn summary_matches_node_indexes() {
        let (topo, grid, _) = setup(60, Mode::Basic);
        let map = LoadMap::from_grid(&topo, &grid);
        let s = map.summary(&topo);
        assert_eq!(s.len(), topo.node_count());
        let max_by_hand = map
            .node_indexes(&topo)
            .into_values()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((s.max() - max_by_hand).abs() < 1e-12);
    }

    #[test]
    fn sample_routing_pairs_are_valid() {
        let (topo, _, _) = setup(20, Mode::Basic);
        let mut rng = SmallRng::seed_from_u64(8);
        for (from, target) in sample_routing_pairs(&topo, &mut rng, 50) {
            assert!(topo.region(from).is_some());
            assert!(topo.space().covers(target));
        }
    }
}
