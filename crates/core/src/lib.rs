//! The GeoGrid overlay — a geographic location service network.
//!
//! This crate implements the contribution of *"GeoGrid: A Scalable Location
//! Service Network"* (ICDCS 2007): a CAN-like overlay whose two-dimensional
//! coordinate space maps one-to-one to physical geography. The space is
//! partitioned into rectangular [regions](geogrid_geometry::Region), each
//! owned by one node (basic GeoGrid) or by a primary/secondary pair
//! (**dual peer** GeoGrid); location queries are routed greedily through
//! neighbor links toward the region covering the query point; and eight
//! **dynamic load-balance adaptation** mechanisms re-assign nodes to
//! regions to chase static and moving query hot spots.
//!
//! # Layers
//!
//! * [`topology`] — the authoritative model of a GeoGrid network: regions,
//!   owners, and the neighbor graph, with split/merge/ownership operations
//!   and invariant checking. Experiments and the adaptation engine operate
//!   on this model directly.
//! * [`audit`] — structured invariant auditing: typed
//!   [`Violation`](audit::Violation)s from a full multi-violation sweep
//!   ([`Topology::audit`]), plus the stateful [`TopologyAuditor`](audit::TopologyAuditor)
//!   that also tracks epoch monotonicity. The static side of the same
//!   story (the `cargo lint-all` rules) lives in `crates/audit`.
//! * [`snapshot`] — immutable epoch-published [`TopologySnapshot`](snapshot::TopologySnapshot)s
//!   behind an RCU-style [`SnapshotCell`](snapshot::SnapshotCell): N reader
//!   threads route lock-free against the latest snapshot while split/merge
//!   writers serialize on the mutable [`Topology`].
//! * [`routing`] — greedy geographic forwarding and query-region fan-out,
//!   as pure decisions over topology views (the [`Router`](routing::Router)
//!   facade works on both `&Topology` and `&TopologySnapshot`).
//! * [`join`] / [`builder`] — the paper's bootstrap protocols: basic
//!   (route-and-split) and dual-peer (probe the neighborhood, join the
//!   weakest owner), plus whole-network constructors.
//! * [`load`] — workload-index accounting: query load from the hot-spot
//!   cell grid plus routing load from a sampled query mix, normalized by
//!   owner capacity.
//! * [`balance`] — the √2 trigger, the eight adaptation mechanisms
//!   (a)–(h) in the paper's cost order, and the TTL-guided remote search.
//! * [`engine`] — a sans-io per-node protocol state machine (messages in,
//!   effects out) that runs the same overlay on
//!   [`geogrid-simnet`](geogrid_simnet) or a real transport.
//! * [`service`] — the location-service layer: spatial records, location
//!   queries, and standing subscriptions.
//!
//! # Quick start
//!
//! ```
//! use geogrid_core::builder::{NetworkBuilder, Mode};
//! use geogrid_geometry::{Point, Space};
//!
//! // Build a 200-node dual-peer GeoGrid over the paper's 64x64-mile plane.
//! let mut net = NetworkBuilder::new(Space::paper_evaluation(), 42)
//!     .mode(Mode::DualPeer)
//!     .build(200);
//! let topo = net.topology();
//! assert!(topo.region_count() <= 200);
//!
//! // Route a query to the region covering a point.
//! use geogrid_core::routing::{RouteOptions, Router};
//! let from = topo.region_ids().next().unwrap();
//! let mut router = Router::new();
//! let executor = router.route(topo, from, Point::new(12.0, 51.0), &RouteOptions::greedy()).unwrap();
//! assert!(topo.region(executor).unwrap().covers(Point::new(12.0, 51.0), topo.space()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod balance;
pub mod builder;
pub mod engine;
pub mod error;
pub mod id;
pub mod join;
pub mod load;
pub mod node;
pub mod routing;
pub mod service;
pub mod snapshot;
pub mod topology;

pub use error::CoreError;
pub use id::{NodeId, RegionId};
pub use node::NodeInfo;
pub use routing::{RouteOptions, Router};
pub use snapshot::{SnapshotCell, SnapshotReader, TopologySnapshot, TopologyView};
pub use topology::Topology;
