//! Error types for overlay operations.

use std::error::Error;
use std::fmt;

use crate::{NodeId, RegionId};

/// Errors returned by topology and protocol operations.
///
/// # Examples
///
/// ```
/// use geogrid_core::{CoreError, RegionId};
///
/// let err = CoreError::UnknownRegion(RegionId::new(3));
/// assert!(err.to_string().contains("r3"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The region id does not name a live region.
    UnknownRegion(RegionId),
    /// The node id is not part of the topology.
    UnknownNode(NodeId),
    /// The point lies outside the GeoGrid space.
    OutOfSpace {
        /// The offending coordinate.
        x: f64,
        /// The offending coordinate.
        y: f64,
    },
    /// The two regions cannot merge into a rectangle.
    NotMergeable(RegionId, RegionId),
    /// The region already has a secondary owner.
    RegionFull(RegionId),
    /// The region has no secondary owner to take.
    NoSecondary(RegionId),
    /// Routing gave up (hop budget exhausted on a degenerate topology).
    RoutingFailed {
        /// Hops taken before giving up.
        hops: u32,
    },
    /// The topology has no regions yet (bootstrap has not happened).
    EmptyNetwork,
    /// An operation references a node that does not hold the required role.
    WrongRole {
        /// The node in question.
        node: NodeId,
        /// What the operation expected of it.
        expected: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownRegion(r) => write!(f, "unknown region {r}"),
            CoreError::UnknownNode(n) => write!(f, "unknown node {n}"),
            CoreError::OutOfSpace { x, y } => {
                write!(f, "point ({x}, {y}) lies outside the GeoGrid space")
            }
            CoreError::NotMergeable(a, b) => {
                write!(f, "regions {a} and {b} do not form a rectangle")
            }
            CoreError::RegionFull(r) => write!(f, "region {r} already has a dual peer"),
            CoreError::NoSecondary(r) => write!(f, "region {r} has no secondary owner"),
            CoreError::RoutingFailed { hops } => {
                write!(f, "routing gave up after {hops} hops")
            }
            CoreError::EmptyNetwork => write!(f, "the network has no regions yet"),
            CoreError::WrongRole { node, expected } => {
                write!(f, "node {node} is not {expected}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_display() {
        let errors = [
            CoreError::UnknownRegion(RegionId::new(1)),
            CoreError::UnknownNode(NodeId::new(2)),
            CoreError::OutOfSpace { x: 1.0, y: -2.0 },
            CoreError::NotMergeable(RegionId::new(1), RegionId::new(2)),
            CoreError::RegionFull(RegionId::new(1)),
            CoreError::NoSecondary(RegionId::new(1)),
            CoreError::RoutingFailed { hops: 12 },
            CoreError::EmptyNetwork,
            CoreError::WrongRole {
                node: NodeId::new(1),
                expected: "a primary owner",
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(CoreError::EmptyNetwork);
    }
}
