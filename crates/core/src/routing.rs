//! Greedy geographic routing.
//!
//! §2.2 of the paper: "routing in a GeoGrid network works by following the
//! straight line path through the two dimensional coordinate space from
//! source to destination node" — each region forwards to the immediate
//! neighbor closest to the destination until the covering region is
//! reached. Over `N` regions this costs `O(2√N)` hops.
//!
//! After the *executor* region (the one covering the query center) is
//! reached, a query whose rectangle spans several regions fans out to every
//! region overlapping the rectangle ([`fanout`]).

use std::collections::HashSet;

use geogrid_geometry::{Point, Region};

use crate::{CoreError, RegionId, Topology};

/// The result of routing a request to its executor region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePath {
    /// The region covering the destination point.
    pub executor: RegionId,
    /// Every region visited, starting with the source and ending with the
    /// executor. `hops.len() - 1` is the hop count.
    pub hops: Vec<RegionId>,
}

impl RoutePath {
    /// Number of forwarding steps taken.
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

/// Picks the next hop from `current` toward `target`: the neighbor whose
/// region is closest to the target (by closest-point distance, then center
/// distance, then id for determinism), excluding `visited` regions.
///
/// Returns `None` when `current` covers the target or no unvisited
/// neighbor exists.
pub fn next_hop(
    topo: &Topology,
    current: RegionId,
    target: Point,
    visited: &HashSet<RegionId>,
) -> Option<RegionId> {
    let entry = topo.region(current)?;
    if entry.covers(target, topo.space()) {
        return None;
    }
    // Compute each neighbor's sort key once up front; a comparator that
    // recomputes both sides' distances evaluates each key about twice, and
    // the center distance (with its sqrt) is the expensive part.
    entry
        .neighbors()
        .iter()
        .copied()
        .filter(|n| !visited.contains(n))
        .map(|n| {
            let r = topo.region(n).expect("live neighbor").region();
            (r.distance_to_point(target), r.center().distance(target), n)
        })
        .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))
        .map(|(_, _, n)| n)
}

/// All neighbors of `current` tied (within `slack`, relative) for the
/// best closest-point distance to `target` — the candidate set for the
/// paper's *randomization of routing entries* (§2.2 lists it among the
/// management messages): picking uniformly among near-optimal next hops
/// spreads transit load over parallel paths instead of always burning the
/// same corridor.
pub fn next_hop_candidates(
    topo: &Topology,
    current: RegionId,
    target: Point,
    visited: &HashSet<RegionId>,
    slack: f64,
) -> Vec<RegionId> {
    let Some(entry) = topo.region(current) else {
        return Vec::new();
    };
    if entry.covers(target, topo.space()) {
        return Vec::new();
    }
    let candidates: Vec<(RegionId, f64)> = entry
        .neighbors()
        .iter()
        .copied()
        .filter(|n| !visited.contains(n))
        .filter_map(|n| {
            let d = topo.region(n)?.region().distance_to_point(target);
            Some((n, d))
        })
        .collect();
    let Some(best) = candidates
        .iter()
        .map(|&(_, d)| d)
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    else {
        return Vec::new();
    };
    let cutoff = best + slack * best.max(1e-9);
    let mut out: Vec<RegionId> = candidates
        .into_iter()
        .filter(|&(_, d)| d <= cutoff)
        .map(|(n, _)| n)
        .collect();
    out.sort();
    out
}

/// Like [`route`], but at each step picks uniformly at random among the
/// near-optimal next hops (`slack`-relative tie window). Trades a few
/// extra hops for spreading routing workload across parallel corridors.
///
/// # Errors
///
/// Same conditions as [`route`].
pub fn route_randomized<R: rand::Rng + ?Sized>(
    topo: &Topology,
    from: RegionId,
    target: Point,
    slack: f64,
    rng: &mut R,
) -> Result<RoutePath, CoreError> {
    if !topo.space().covers(target) {
        return Err(CoreError::OutOfSpace {
            x: target.x,
            y: target.y,
        });
    }
    if topo.region(from).is_none() {
        return Err(CoreError::UnknownRegion(from));
    }
    let budget = 8 * (topo.region_count() as f64).sqrt() as usize + 64;
    let mut visited = HashSet::new();
    let mut hops = vec![from];
    let mut current = from;
    visited.insert(from);
    loop {
        let entry = topo
            .region(current)
            .ok_or(CoreError::UnknownRegion(current))?;
        if entry.covers(target, topo.space()) {
            return Ok(RoutePath {
                executor: current,
                hops,
            });
        }
        if hops.len() > budget {
            let executor = topo.locate(target)?;
            hops.push(executor);
            return Ok(RoutePath { executor, hops });
        }
        let candidates = next_hop_candidates(topo, current, target, &visited, slack);
        let next = if candidates.is_empty() {
            next_hop(topo, current, target, &visited)
        } else {
            Some(candidates[rng.random_range(0..candidates.len())])
        };
        match next {
            Some(next) => {
                visited.insert(next);
                hops.push(next);
                current = next;
            }
            None => {
                let executor = topo.locate(target)?;
                hops.push(executor);
                return Ok(RoutePath { executor, hops });
            }
        }
    }
}

/// Routes from `from` to the region covering `target`, greedily.
///
/// Greedy forwarding over a rectangular tiling makes monotone progress in
/// almost all configurations; the corner cases (corner-contact ties) are
/// handled by tracking visited regions. If the hop budget
/// (`8√N + 64`) is exhausted the search falls back to the linear-scan
/// ground truth and reports the path walked so far plus the answer.
///
/// # Errors
///
/// * [`CoreError::OutOfSpace`] if `target` lies outside the space.
/// * [`CoreError::UnknownRegion`] if `from` is dead.
/// * [`CoreError::EmptyNetwork`] if the network has no regions.
pub fn route(topo: &Topology, from: RegionId, target: Point) -> Result<RoutePath, CoreError> {
    if !topo.space().covers(target) {
        return Err(CoreError::OutOfSpace {
            x: target.x,
            y: target.y,
        });
    }
    if topo.region(from).is_none() {
        return Err(CoreError::UnknownRegion(from));
    }
    let budget = 8 * (topo.region_count() as f64).sqrt() as usize + 64;
    let mut visited = HashSet::new();
    let mut hops = vec![from];
    let mut current = from;
    visited.insert(from);
    loop {
        let entry = topo
            .region(current)
            .ok_or(CoreError::UnknownRegion(current))?;
        if entry.covers(target, topo.space()) {
            return Ok(RoutePath {
                executor: current,
                hops,
            });
        }
        if hops.len() > budget {
            // Degenerate topology (should not happen on a valid partition):
            // answer via scan so callers still make progress.
            let executor = topo.locate(target)?;
            hops.push(executor);
            return Ok(RoutePath { executor, hops });
        }
        match next_hop(topo, current, target, &visited) {
            Some(next) => {
                visited.insert(next);
                hops.push(next);
                current = next;
            }
            None => {
                let executor = topo.locate(target)?;
                hops.push(executor);
                return Ok(RoutePath { executor, hops });
            }
        }
    }
}

/// All regions a query rectangle must be delivered to: breadth-first flood
/// from the executor over neighbors overlapping `query`.
///
/// The paper forwards from the executor to the neighbors whose regions
/// intersect the query rectangle; the flood generalizes that to rectangles
/// wider than one neighborhood while visiting only overlapping regions.
/// The executor itself is always included (first).
pub fn fanout(topo: &Topology, executor: RegionId, query: &Region) -> Vec<RegionId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut frontier = vec![executor];
    seen.insert(executor);
    while let Some(rid) = frontier.pop() {
        let Some(entry) = topo.region(rid) else {
            continue;
        };
        out.push(rid);
        for &n in entry.neighbors() {
            if seen.contains(&n) {
                continue;
            }
            let overlaps = topo.region(n).is_some_and(|e| e.region().intersects(query));
            if overlaps {
                seen.insert(n);
                frontier.push(n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogrid_geometry::Space;

    /// Builds a 2^k-region topology by repeated joins at grid points.
    fn grid_topology(k: u32) -> Topology {
        let space = Space::paper_evaluation();
        let mut t = Topology::new(space);
        let n0 = t.register_node(Point::new(1.0, 1.0), 10.0);
        t.bootstrap(n0).unwrap();
        let count = 1u32 << k;
        let mut i = 1u32;
        while (t.region_count() as u32) < count {
            // Halton-ish deterministic spread.
            let x = ((i as f64 * 0.754877666) % 1.0) * 63.0 + 0.5;
            let y = ((i as f64 * 0.569840296) % 1.0) * 63.0 + 0.5;
            let p = Point::new(x, y);
            let rid = t.locate_scan(p).unwrap();
            let primary = t.region(rid).unwrap().primary();
            let j = t.register_node(p, 10.0);
            t.split_region(rid, primary, j).unwrap();
            i += 1;
        }
        t.validate().unwrap();
        t
    }

    #[test]
    fn route_reaches_covering_region() {
        let t = grid_topology(6); // 64 regions
        let from = t.first_region().unwrap();
        for target in [
            Point::new(0.5, 0.5),
            Point::new(63.5, 63.5),
            Point::new(32.0, 1.0),
            Point::new(5.0, 60.0),
        ] {
            let path = route(&t, from, target).expect("route");
            assert!(t.region(path.executor).unwrap().covers(target, t.space()));
            assert_eq!(path.executor, t.locate_scan(target).unwrap());
            assert_eq!(*path.hops.first().unwrap(), from);
            assert_eq!(*path.hops.last().unwrap(), path.executor);
        }
    }

    #[test]
    fn route_to_own_region_is_zero_hops() {
        let t = grid_topology(4);
        let from = t.first_region().unwrap();
        let inside = t.region(from).unwrap().region().center();
        let path = route(&t, from, inside).unwrap();
        assert_eq!(path.hop_count(), 0);
        assert_eq!(path.executor, from);
    }

    #[test]
    fn route_rejects_out_of_space() {
        let t = grid_topology(2);
        let from = t.first_region().unwrap();
        assert!(matches!(
            route(&t, from, Point::new(100.0, 0.0)),
            Err(CoreError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn hop_counts_scale_like_sqrt_n() {
        // Mean hops at 256 regions should be well below 2*sqrt(256) = 32
        // and grow roughly as sqrt when quadrupling the network.
        let t_small = grid_topology(6); // 64
        let t_big = grid_topology(8); // 256
        let mean_hops = |t: &Topology| {
            let ids: Vec<RegionId> = t.region_ids().collect();
            let mut total = 0usize;
            let mut count = 0usize;
            for (i, &from) in ids.iter().enumerate() {
                let target = t
                    .region(ids[(i * 7 + 3) % ids.len()])
                    .unwrap()
                    .region()
                    .center();
                total += route(t, from, target).unwrap().hop_count();
                count += 1;
            }
            total as f64 / count as f64
        };
        let small = mean_hops(&t_small);
        let big = mean_hops(&t_big);
        assert!(small < 16.0, "64-region mean hops {small}");
        assert!(big < 32.0, "256-region mean hops {big}");
        assert!(big > small, "hops must grow with network size");
    }

    #[test]
    fn next_hop_is_none_when_covering() {
        let t = grid_topology(4);
        let from = t.first_region().unwrap();
        let inside = t.region(from).unwrap().region().center();
        assert_eq!(next_hop(&t, from, inside, &HashSet::new()), None);
    }

    #[test]
    fn fanout_covers_exactly_overlapping_regions() {
        let t = grid_topology(6);
        let query = Region::new(20.0, 20.0, 24.0, 24.0);
        let executor = t.locate_scan(query.center()).unwrap();
        let fan = fanout(&t, executor, &query);
        assert_eq!(fan[0], executor);
        let expected: HashSet<RegionId> = t
            .regions()
            .filter(|(_, e)| e.region().intersects(&query))
            .map(|(rid, _)| rid)
            .collect();
        let got: HashSet<RegionId> = fan.iter().copied().collect();
        assert_eq!(got, expected);
        assert_eq!(fan.len(), got.len(), "no duplicates");
    }

    #[test]
    fn randomized_routing_reaches_cover_and_spreads_paths() {
        use rand::SeedableRng;
        let t = grid_topology(6);
        let from = t.first_region().unwrap();
        let target = Point::new(60.0, 60.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut distinct_paths = std::collections::HashSet::new();
        for _ in 0..20 {
            let path = route_randomized(&t, from, target, 0.25, &mut rng).unwrap();
            assert!(t.region(path.executor).unwrap().covers(target, t.space()));
            distinct_paths.insert(path.hops.clone());
        }
        // Randomization should explore more than one corridor.
        assert!(
            distinct_paths.len() > 1,
            "randomized routing always took the same path"
        );
        // And stay within the hop budget's ballpark of the greedy route.
        let greedy = route(&t, from, target).unwrap().hop_count();
        for p in &distinct_paths {
            assert!(p.len() - 1 <= greedy * 3 + 8);
        }
    }

    #[test]
    fn candidates_are_subset_of_neighbors_and_sorted() {
        let t = grid_topology(5);
        let from = t.first_region().unwrap();
        let target = Point::new(60.0, 60.0);
        let c = next_hop_candidates(&t, from, target, &HashSet::new(), 0.5);
        let neighbors = t.region(from).unwrap().neighbors().to_vec();
        for rid in &c {
            assert!(neighbors.contains(rid));
        }
        let mut sorted = c.clone();
        sorted.sort();
        assert_eq!(c, sorted);
        // Covering region has no candidates.
        let inside = t.region(from).unwrap().region().center();
        assert!(next_hop_candidates(&t, from, inside, &HashSet::new(), 0.5).is_empty());
    }

    #[test]
    fn fanout_of_tiny_query_is_executor_only() {
        let t = grid_topology(6);
        let executor = t.locate_scan(Point::new(10.0, 10.0)).unwrap();
        let inner = t.region(executor).unwrap().region();
        let tiny = Region::new(inner.center().x - 1e-6, inner.center().y - 1e-6, 2e-6, 2e-6);
        assert_eq!(fanout(&t, executor, &tiny), vec![executor]);
    }
}
