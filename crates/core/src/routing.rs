//! Greedy geographic routing.
//!
//! §2.2 of the paper: "routing in a GeoGrid network works by following the
//! straight line path through the two dimensional coordinate space from
//! source to destination node" — each region forwards to the immediate
//! neighbor closest to the destination until the covering region is
//! reached. Over `N` regions this costs `O(2√N)` hops.
//!
//! After the *executor* region (the one covering the query center) is
//! reached, a query whose rectangle spans several regions fans out to every
//! region overlapping the rectangle ([`fanout`]).
//!
//! # The routing engine
//!
//! Experiments issue millions of routed queries, and the paper's workloads
//! concentrate most of them on a few hot-spot cells — so the hot path must
//! neither allocate per query nor recompute what the previous query toward
//! the same destination already learned. [`RouteScratch`] packages the
//! reusable state:
//!
//! * a **generation-stamped visited array** indexed by region slot
//!   ([`RegionId::index`]) replaces the per-query `HashSet` — marking a
//!   region visited is one store, clearing all marks is one counter bump;
//! * the hop and candidate `Vec`s are recycled across queries;
//! * a **two-tier next-hop cache** of dense per-slot `u32` slabs, so a
//!   warm hop costs two array loads and no hashing. The L1 tier promotes
//!   *exact destinations* that recur (location queries name concrete
//!   places, so hot streams repeat exact coordinates) and memoizes each
//!   source slot's greedy argmin for that point. The L2 tier promotes
//!   *destination grid cells* and caches, per source slot, the neighbor
//!   that is the greedy choice for **every** target in the cell. Both
//!   tiers are capped, so pure-uniform traffic beyond the caps bypasses
//!   the cache machinery entirely, and both are validated against the
//!   topology's `(instance_id, epoch)` pair: any split/merge/bootstrap
//!   bumps the epoch ([`Topology::epoch`]) and flushes them, while
//!   ownership churn (fail-over, swaps) keeps them warm.
//!
//! The cell-granular entries stay hop-for-hop exact through interval
//! arithmetic rather than memoized answers (the greedy argmin depends on
//! the exact target point, which varies within a cell): when a slab entry
//! is first derived, the full scan also computes, per neighbor, a lower
//! bound (rectangle to cell-rectangle distance,
//! [`Region::distance_to_region`]) and an upper bound (max over the
//! cell's corners — the distance is convex in the target, so its max over
//! the cell is at a corner) of its distance to every possible target in
//! the cell. A neighbor whose lower bound exceeds the smallest upper
//! bound is *strictly* farther than some other neighbor for every target
//! in the cell, so it can never be (or tie) the greedy argmin. When
//! exactly one neighbor survives this filter it is the argmin for every
//! target in the cell — only then is it cached; otherwise the entry is
//! marked scan-always and the engine keeps doing full scans there, so the
//! cached answer reproduces the full scan's `(closest-point distance,
//! center distance, id)` minimum bit for bit. If the cached neighbor was
//! already visited this query, the engine falls back to a full unvisited
//! scan, again matching the reference. [`route_uncached`] keeps the
//! original allocating implementation as that reference, and a property
//! test drives both through random topology mutations to prove the
//! equivalence.
//!
//! # The Router facade
//!
//! [`Router`] is the one entry point: it owns a [`RouteScratch`] (and an
//! RNG for randomized queries) and dispatches on [`RouteOptions`] —
//! greedy, express, or randomized. Every engine is generic over
//! [`TopologyView`], so the same monomorphized code routes on a live
//! `&Topology` (single-threaded) or on an immutable
//! [`TopologySnapshot`](crate::snapshot::TopologySnapshot) published
//! through a [`SnapshotCell`](crate::snapshot::SnapshotCell) — N reader
//! threads each hold their own `Router` and route lock-free while
//! writers mutate the live topology. (The historical free-function
//! wrappers — `route`, `route_into`, `route_express`, and friends — have
//! been removed; [`route_uncached`] is the one free function left, kept
//! as the verification reference.)
//!
//! The cache slabs index slots as `u32` (they were `u16` until the
//! 65k-slot sentinel ceiling silently disengaged every tier on
//! million-region networks); [`RouteScratch`] memory is bounded by a
//! per-tier slab budget instead of a fixed slab count.
//!
//! # Express links
//!
//! Greedy forwarding costs `O(√N)` hops no matter how cheap each hop is,
//! so beyond ~16k regions route *length* dominates. The express engine
//! ([`RouteOptions::express`])
//! layers the topology's express fingers (see
//! [`Topology::slot_fingers`]: per region, one link per doubling of
//! distance per compass direction, Kleinberg/Chord-style) on top of the
//! same engine as a two-phase route:
//!
//! 1. **Express descent** — while the remaining distance exceeds both the
//!    finger floor ([`Topology::finger_base`]) and [`EXPRESS_ENGAGE`]
//!    current-region diameters, follow the best finger that cuts the
//!    remaining rectangle distance to at most [`EXPRESS_DECAY`]× — but
//!    only when that finger strictly beats every immediate neighbor's
//!    greedy key, so the express phase never takes a hop plain greedy
//!    would have bettered. Each hop shrinks the distance geometrically,
//!    giving `O(log N)` express hops; no visited marks are needed (or
//!    written) because the decay makes loops impossible.
//! 2. **Last mile** — hand off to the unmodified greedy walk, which is
//!    hop-for-hop identical to [`route_uncached`] from the handoff region
//!    ([`RouteScratch::express_prefix`] marks the boundary in the trace).
//!
//! The express decision is visited-independent, so promoted L1
//! destinations memoize it per source slot (`target_express` slabs) under
//! the same `(instance_id, epoch)` validation as the greedy tiers.

use std::cell::RefCell;
use std::collections::HashSet;

use geogrid_geometry::{Point, Region};
use geogrid_marks::hot_path;
use rand::SeedableRng;

use crate::snapshot::TopologyView;
use crate::topology::{FINGER_COUNT, FINGER_NONE};
use crate::{CoreError, RegionId};

/// The result of routing a request to its executor region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePath {
    /// The region covering the destination point.
    pub executor: RegionId,
    /// Every region visited, starting with the source and ending with the
    /// executor. `hops.len() - 1` is the hop count.
    pub hops: Vec<RegionId>,
}

impl RoutePath {
    /// Number of forwarding steps taken.
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

/// Memory budget per cache tier, bounding `slab_cap`. One promoted
/// destination costs `4 × slot_count` bytes per slab, so the per-tier cap
/// shrinks as the network grows: up to 512k slots the historical 64-slab
/// cap applies unchanged; at 1M slots each slab is 4 MiB and the cap
/// drops to 32.
const SLAB_TIER_BUDGET_BYTES: usize = 128 << 20;

/// Upper bound on promoted destinations per cache tier at `slots` slots.
/// Bounds cache memory under uniform traffic (destinations beyond the cap
/// bypass the cache and just use the scratch buffers); hot-spot streams
/// promote their few hot targets long before the cap fills.
fn slab_cap(slots: usize) -> usize {
    (SLAB_TIER_BUDGET_BYTES / (4 * slots.max(1))).clamp(8, 64)
}

/// Allocates one dense next-hop slab (`SLOT_EMPTY`-filled, one entry per
/// slot). Promotion happens at most [`slab_cap`] times per cache
/// generation and only when a destination recurs; steady-state lookups
/// never reach it.
// audit: hot-path-exempt(slab promotion is a capped one-time cost per recurring destination; steady-state routing hits the already-promoted slab)
fn alloc_slab(slots: usize) -> Vec<u32> {
    vec![SLOT_EMPTY; slots]
}

/// Open-addressed slots in the target-recurrence table (power of two).
const TARGET_TABLE_SLOTS: usize = 512;

/// Express qualification: a finger may be followed only if it cuts the
/// remaining rectangle distance to at most this fraction. Guarantees
/// geometric decay (so the express phase is loop-free and `O(log N)`
/// hops) and keeps marginal fingers from displacing a greedy hop that
/// would have made the same progress. Must exceed `sin 45° ≈ 0.707`: the
/// fingers are axial, so a perfectly diagonal target can only shed that
/// fraction per jump along the better axis.
pub const EXPRESS_DECAY: f64 = 0.75;

/// Express engagement gate: the remaining distance must exceed this many
/// current-region diameters before a finger is considered. Within a few
/// diameters the target is a couple of greedy hops away and *any* express
/// detour risks costing more hops than plain greedy saves — that near
/// field is exactly the regime the paper's mesh walk is optimal in.
pub const EXPRESS_ENGAGE: f64 = 4.0;

/// Safety cap on express hops per query. The decay bound alone caps the
/// phase at `log(space/floor) / log(1/EXPRESS_DECAY)` ≈ 35 hops; this is
/// a backstop against float-edge stagnation, after which the route simply
/// hands off to greedy early.
const EXPRESS_MAX_HOPS: usize = 64;

/// Linear probes before the table gives up on a destination.
const TARGET_TABLE_PROBES: usize = 8;

/// Cell-table entry: this grid cell has no slab yet.
const ENTRY_EMPTY: u32 = u32::MAX;

/// Slab entry: not yet derived for this `(destination, slot)`.
const SLOT_EMPTY: u32 = u32::MAX;

/// Slab entry: nothing cacheable from this slot (no single neighbor
/// dominates the whole cell, or no neighbors at all) — full scan.
const SLOT_SCAN: u32 = u32::MAX - 1;

/// Largest slot table the dense tiers index, capped by the `u32` sentinel
/// values. The slabs were originally `u16`, which silently disengaged
/// every cache tier beyond 65k slots — the 1M-region sweep paid ~3 µs of
/// on-the-fly recomputation per route. At `u32` the ceiling (~4.3B slots)
/// is past any network this process can hold, so the tiers stay engaged
/// at every evaluated size; `slab_cap` bounds the memory instead.
const ROUTE_CACHE_MAX_SLOTS: usize = SLOT_SCAN as usize;

/// Target-table state: slot is free.
const TSTATE_EMPTY: u32 = u32::MAX;

/// Target-table state: destination seen once, not yet worth a slab.
const TSTATE_SEEN: u32 = u32::MAX - 1;

/// One slot of the target-recurrence table: an exact destination (bit
/// patterns of its coordinates) and either a `TSTATE_*` marker or the
/// index of its promoted slab in `target_slabs`.
#[derive(Debug, Clone, Copy)]
struct TargetSlot {
    x: u64,
    y: u64,
    state: u32,
}

const EMPTY_TARGET_SLOT: TargetSlot = TargetSlot {
    x: 0,
    y: 0,
    state: TSTATE_EMPTY,
};

/// The two-tier next-hop cache: direct-indexed dense slabs instead of a
/// hash map, so a warm hop costs two array loads and the working set for
/// one hot destination is one contiguous `2 × slot_count`-byte array
/// (see the [module docs](self) for the exactness argument).
///
/// * **L1 — exact destinations.** Location queries name concrete places,
///   so hot streams repeat exact coordinates. A destination seen twice
///   gets a slab memoizing, per source slot, the greedy argmin for that
///   exact point — no geometry proof needed, the key is exact.
/// * **L2 — destination cells.** For spread-out targets, a promoted grid
///   cell caches per slot the neighbor that provably wins for *every*
///   point of the cell (interval-arithmetic filter), falling back to a
///   full scan where no single neighbor dominates.
#[derive(Debug, Clone, Default)]
struct RouteCache {
    /// Grid cell → index into `cell_slabs`; `ENTRY_EMPTY` if unpromoted.
    cell_slab: Vec<u32>,
    /// Per promoted cell: source slot → cell-dominant neighbor's raw id,
    /// or one of the `SLOT_*` sentinels.
    cell_slabs: Vec<Vec<u32>>,
    /// Lossy open-addressed recurrence tracker for exact destinations.
    target_table: Vec<TargetSlot>,
    /// Per promoted exact destination: source slot → that target's greedy
    /// argmin over all neighbors, or one of the `SLOT_*` sentinels.
    target_slabs: Vec<Vec<u32>>,
    /// Per promoted exact destination: the slot whose region covers it
    /// (`SLOT_EMPTY` until first derived). The covering region is unique
    /// and epoch-stable, so the hot loop compares slot numbers instead of
    /// re-testing rectangle containment every hop.
    target_terminals: Vec<u32>,
    /// Per promoted exact destination: source slot → the express finger
    /// the two-phase route follows from there (`SLOT_SCAN` = hand off to
    /// greedy at that slot). The express decision ignores visited marks,
    /// so a cached entry is always followed as-is — no fallback arm.
    target_express: Vec<Vec<u32>>,
    /// Derived entries across all slabs (for stats).
    entries: usize,
}

impl RouteCache {
    fn flush(&mut self) {
        self.cell_slabs.clear();
        self.cell_slab.fill(ENTRY_EMPTY);
        self.target_slabs.clear();
        self.target_terminals.clear();
        self.target_express.clear();
        self.target_table.fill(EMPTY_TARGET_SLOT);
        self.entries = 0;
    }

    /// Slab index for the exact destination `(x, y)` (coordinate bit
    /// patterns), promoting it on its second sighting. Lossy by design:
    /// a destination that never recurs costs one table slot, reclaimable
    /// by any other destination hashing nearby.
    fn promote_target(&mut self, x: u64, y: u64, slots: usize) -> Option<usize> {
        let mask = TARGET_TABLE_SLOTS - 1;
        let mix = (x ^ y.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h = (mix >> 32) as usize & mask;
        for i in 0..TARGET_TABLE_PROBES {
            let idx = (h + i) & mask;
            let s = self.target_table[idx];
            if s.state == TSTATE_EMPTY {
                self.target_table[idx] = TargetSlot {
                    x,
                    y,
                    state: TSTATE_SEEN,
                };
                return None;
            }
            if s.x == x && s.y == y {
                return match s.state {
                    TSTATE_SEEN => {
                        if self.target_slabs.len() >= slab_cap(slots) {
                            return None;
                        }
                        let slab = self.target_slabs.len();
                        self.target_table[idx].state = slab as u32;
                        self.target_slabs.push(alloc_slab(slots));
                        self.target_terminals.push(SLOT_EMPTY);
                        self.target_express.push(alloc_slab(slots));
                        Some(slab)
                    }
                    slab => Some(slab as usize),
                };
            }
        }
        // Every probe hit a foreign destination: recycle a once-seen slot
        // (never one that backs a promoted slab).
        for i in 0..TARGET_TABLE_PROBES {
            let idx = (h + i) & mask;
            if self.target_table[idx].state == TSTATE_SEEN {
                self.target_table[idx] = TargetSlot {
                    x,
                    y,
                    state: TSTATE_SEEN,
                };
                break;
            }
        }
        None
    }
}

/// Reusable routing state: visited stamps, hop/candidate buffers, and the
/// epoch-invalidated next-hop cache. [`Router`] owns one; the join
/// helpers borrow the thread-local one. See the [module docs](self) for
/// the design.
///
/// A scratch may be reused freely across different [`Topology`] instances
/// and [`TopologyView`]s — the cache re-keys itself on
/// `(instance_id, epoch)` and flushes whenever either changes.
#[derive(Debug, Clone)]
pub struct RouteScratch {
    /// `stamps[slot] == generation` ⇔ slot visited in the current query.
    /// One byte per slot: the whole stamp table for a 16k-region network
    /// is 16 KiB, so it stays cache-resident; the cheap price is a full
    /// clear every 255 generations at the `u8` wrap.
    stamps: Vec<u8>,
    generation: u8,
    /// Hop trace of the most recent successful routed query.
    hops: Vec<RegionId>,
    /// Length of the express prefix of the most recent trace (0 for plain
    /// greedy routes); see [`Self::express_prefix`].
    express_len: usize,
    /// Recycled candidate buffer for randomized routing.
    cand: Vec<RegionId>,
    /// The promoted-cell next-hop slabs.
    cache: RouteCache,
    /// The `(instance_id, epoch)` the cache contents are valid for.
    cache_key: (u64, u64),
    hits: u64,
    lookups: u64,
}

impl Default for RouteScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self {
            stamps: Vec::new(),
            generation: 0,
            hops: Vec::new(),
            express_len: 0,
            cand: Vec::new(),
            cache: RouteCache::default(),
            cache_key: (u64::MAX, u64::MAX),
            hits: 0,
            lookups: 0,
        }
    }

    /// The hop trace of the most recent successful routed query: starts at
    /// the source, ends at the executor (same contract as
    /// [`RoutePath::hops`]).
    pub fn hops(&self) -> &[RegionId] {
        &self.hops
    }

    /// Hop count of the most recent successful routed query.
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// Index into [`Self::hops`] of the express→greedy handoff region of
    /// the most recent express route: `hops()[prefix..]` is
    /// the last-mile greedy segment (hop-for-hop what [`route_uncached`]
    /// walks from the handoff region), `hops()[..prefix]` the express
    /// descent. 0 when no express hop was taken or after a plain greedy
    /// route.
    pub fn express_prefix(&self) -> usize {
        self.express_len
    }

    /// Derived next-hop entries across all promoted destination cells.
    pub fn cached_entries(&self) -> usize {
        self.cache.entries
    }

    /// Fraction of next-hop decisions served from the cache since the last
    /// [`Self::reset_stats`]. 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Clears the hit/lookup counters (not the cache).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.lookups = 0;
    }

    /// Drops every cached next hop (stats and buffers survive).
    pub fn clear_cache(&mut self) {
        self.cache.flush();
        self.cache_key = (u64::MAX, u64::MAX);
    }

    /// Prepares the scratch for one query against `view`: re-keys the
    /// cache, resizes the stamp and cell tables, and starts a fresh
    /// visited generation.
    fn begin<V: TopologyView + ?Sized>(&mut self, view: &V) {
        let key = (view.instance_id(), view.epoch());
        if self.cache_key != key {
            self.cache.flush();
            self.cache_key = key;
        }
        let cells = view.grid_cell_count();
        if self.cache.cell_slab.len() != cells {
            // In-place resize reuses the buffer's capacity across epoch
            // flushes (`flush` already resets the contents), so re-keying
            // against a same-sized topology allocates nothing.
            self.cache.cell_slab.clear();
            self.cache.cell_slab.resize(cells, ENTRY_EMPTY);
        }
        if self.cache.target_table.is_empty() {
            self.cache
                .target_table
                .resize(TARGET_TABLE_SLOTS, EMPTY_TARGET_SLOT);
        }
        let slots = view.slot_count();
        if self.stamps.len() < slots {
            self.stamps.resize(slots, 0);
        }
        self.next_generation();
        self.hops.clear();
        self.express_len = 0;
    }

    /// Starts a fresh visited generation. The stamps are one byte each, so
    /// after 255 queries the counter wraps and *every* stale stamp in the
    /// array would alias the new generation as "visited"; the wrap
    /// therefore clears the whole array and restarts the counter at 1
    /// (stamp 0 = never visited). Skipping the clear corrupts every 256th
    /// query — `route_scratch_wrap.rs` pins this down.
    fn next_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    #[inline]
    fn visit(&mut self, slot: usize) {
        self.stamps[slot] = self.generation;
    }

    #[inline]
    fn visited(&self, slot: usize) -> bool {
        self.stamps[slot] == self.generation
    }

    /// Slab index of destination cell `cell`, promoting it (allocating
    /// its dense per-slot slab) on first use. `None` when the grid is
    /// uninitialised or the promoted-cell cap is full and `cell` missed
    /// it — those queries run uncached on the scratch buffers.
    fn promote_cell(&mut self, cell: usize, slots: usize) -> Option<usize> {
        let slab = self.cache.cell_slab.get(cell).copied()?;
        if slab != ENTRY_EMPTY {
            return Some(slab as usize);
        }
        if self.cache.cell_slabs.len() >= slab_cap(slots) {
            return None;
        }
        let idx = self.cache.cell_slabs.len();
        self.cache.cell_slab[cell] = idx as u32;
        self.cache.cell_slabs.push(alloc_slab(slots));
        Some(idx)
    }
}

/// Picks the next hop from `current` toward `target`: the neighbor whose
/// region is closest to the target (by closest-point distance, then center
/// distance, then id for determinism), excluding `visited` regions.
///
/// Returns `None` when `current` covers the target or no unvisited
/// neighbor exists.
pub fn next_hop<V: TopologyView + ?Sized>(
    view: &V,
    current: RegionId,
    target: Point,
    visited: &HashSet<RegionId>,
) -> Option<RegionId> {
    let slot = current.index();
    if !view.is_live(slot) {
        return None;
    }
    if view.covers(slot, target) {
        return None;
    }
    // Compute each neighbor's sort key once up front; a comparator that
    // recomputes both sides' distances evaluates each key about twice, and
    // the center distance (with its sqrt) is the expensive part.
    view.neighbors(slot)
        .iter()
        .copied()
        .filter(|n| !visited.contains(n))
        .map(|n| {
            let r = view.slot_rect(n.index());
            (r.distance_to_point(target), r.center().distance(target), n)
        })
        .min_by(|a, b| {
            a.partial_cmp(b)
                .expect("invariant: distances are finite (regions and coords are finite)")
        })
        .map(|(_, _, n)| n)
}

/// One scan over the neighbors of the region in `from_slot`, reading the
/// view's rectangle/center mirrors: returns the greedy minimum over
/// **all** neighbors (what the cache stores) and over **unvisited**
/// neighbors (what this query follows). Orders by the same
/// `(closest-point distance, center distance, id)` key as [`next_hop`].
#[inline]
#[hot_path]
fn scan_next_hop<V: TopologyView + ?Sized>(
    view: &V,
    from_slot: usize,
    target: Point,
    scratch: &RouteScratch,
) -> (Option<RegionId>, Option<RegionId>) {
    let mut best_all: Option<(f64, f64, RegionId)> = None;
    let mut best_unvisited: Option<(f64, f64, RegionId)> = None;
    for &n in view.neighbors(from_slot) {
        let slot = n.index();
        let key = (
            view.slot_rect(slot).distance_to_point(target),
            view.slot_center(slot).distance(target),
            n,
        );
        if best_all.is_none_or(|b| key < b) {
            best_all = Some(key);
        }
        if !scratch.visited(slot) && best_unvisited.is_none_or(|b| key < b) {
            best_unvisited = Some(key);
        }
    }
    (best_all.map(|k| k.2), best_unvisited.map(|k| k.2))
}

/// The entry-derivation scan: the same full pass as [`scan_next_hop`],
/// plus the interval bounds that make the entry target-independent. For
/// each neighbor it takes the minimum (`LB`, rectangle-to-rectangle) and
/// maximum (`UB`, worst cell corner) possible closest-point distance over
/// every target in `dest_rect`. A neighbor with `LB > min UB` is strictly
/// farther than the `UB`-minimizing neighbor for *every* target in the
/// cell, so it can never be (or tie) the greedy argmin. Returns the slab
/// entry to store — the sole surviving neighbor's raw id, or
/// [`SLOT_SCAN`] when no single neighbor dominates the cell — and the
/// best unvisited neighbor for this query's exact target.
#[hot_path]
fn scan_and_filter<V: TopologyView + ?Sized>(
    view: &V,
    from_slot: usize,
    target: Point,
    dest_rect: &Region,
    scratch: &RouteScratch,
) -> (u32, Option<RegionId>) {
    let corners = [
        Point::new(dest_rect.x(), dest_rect.y()),
        Point::new(dest_rect.east(), dest_rect.y()),
        Point::new(dest_rect.x(), dest_rect.north()),
        Point::new(dest_rect.east(), dest_rect.north()),
    ];
    let mut best_unvisited: Option<(f64, f64, RegionId)> = None;
    let mut min_ub = f64::INFINITY;
    for &n in view.neighbors(from_slot) {
        let slot = n.index();
        let rect = view.slot_rect(slot);
        let key = (
            rect.distance_to_point(target),
            view.slot_center(slot).distance(target),
            n,
        );
        if !scratch.visited(slot) && best_unvisited.is_none_or(|b| key < b) {
            best_unvisited = Some(key);
        }
        // Distance-to-target is convex in the target, so its max over
        // the cell rectangle is attained at a corner.
        let ub = corners
            .iter()
            .map(|&c| rect.distance_to_point(c))
            .fold(0.0, f64::max);
        min_ub = min_ub.min(ub);
    }
    let mut dominant = None;
    for &n in view.neighbors(from_slot) {
        if view.slot_rect(n.index()).distance_to_region(dest_rect) <= min_ub {
            if dominant.is_some() {
                return (SLOT_SCAN, best_unvisited.map(|k| k.2));
            }
            dominant = Some(n);
        }
    }
    let value = match dominant {
        Some(n) => {
            debug_assert!(
                (n.index()) < SLOT_SCAN as usize,
                "slot collides with sentinel"
            );
            n.as_u32()
        }
        // No neighbors at all: nothing to dominate, nothing to cache.
        None => SLOT_SCAN,
    };
    (value, best_unvisited.map(|k| k.2))
}

/// Shared fill of the randomized-routing candidate set: all unvisited
/// neighbors within the `slack`-relative tie window of the best
/// closest-point distance, ascending by id, written into `out` without
/// allocating.
#[hot_path]
fn candidates_into_filtered<V: TopologyView + ?Sized>(
    view: &V,
    from_slot: usize,
    target: Point,
    visited: impl Fn(RegionId) -> bool,
    slack: f64,
    out: &mut Vec<RegionId>,
) {
    out.clear();
    // Pass 1: best closest-point distance among unvisited neighbors.
    let mut best = f64::INFINITY;
    for &n in view.neighbors(from_slot) {
        if visited(n) {
            continue;
        }
        let d = view.slot_rect(n.index()).distance_to_point(target);
        if d < best {
            best = d;
        }
    }
    if best == f64::INFINITY {
        return;
    }
    // Pass 2: keep everything within the tie window.
    let cutoff = best + slack * best.max(1e-9);
    for &n in view.neighbors(from_slot) {
        if visited(n) {
            continue;
        }
        if view.slot_rect(n.index()).distance_to_point(target) <= cutoff {
            out.push(n);
        }
    }
    out.sort_unstable();
}

/// All neighbors of `current` tied (within `slack`, relative) for the
/// best closest-point distance to `target` — the candidate set for the
/// paper's *randomization of routing entries* (§2.2 lists it among the
/// management messages): picking uniformly among near-optimal next hops
/// spreads transit load over parallel paths instead of always burning the
/// same corridor.
pub fn next_hop_candidates<V: TopologyView + ?Sized>(
    view: &V,
    current: RegionId,
    target: Point,
    visited: &HashSet<RegionId>,
    slack: f64,
) -> Vec<RegionId> {
    let mut out = Vec::new();
    next_hop_candidates_into(view, current, target, visited, slack, &mut out);
    out
}

/// Allocation-free form of [`next_hop_candidates`]: one pass finds the
/// best distance, a second filters the tie window into `out` (cleared
/// first) — no intermediate `Vec` of `(id, distance)` pairs.
pub fn next_hop_candidates_into<V: TopologyView + ?Sized>(
    view: &V,
    current: RegionId,
    target: Point,
    visited: &HashSet<RegionId>,
    slack: f64,
    out: &mut Vec<RegionId>,
) {
    out.clear();
    let slot = current.index();
    if !view.is_live(slot) || view.covers(slot, target) {
        return;
    }
    candidates_into_filtered(view, slot, target, |n| visited.contains(&n), slack, out);
}

/// The greedy engine behind [`Router::route`] with
/// [`RouteOptions::greedy`] (see the [module docs](self)): no per-query
/// allocation, and next hops toward recently routed destination cells
/// come from the epoch-validated cache. Returns the executor; the hop
/// trace is in [`RouteScratch::hops`].
///
/// Produces exactly the hops of [`route_uncached`] for every input.
#[hot_path]
pub(crate) fn greedy_into<V: TopologyView + ?Sized>(
    view: &V,
    from: RegionId,
    target: Point,
    scratch: &mut RouteScratch,
) -> Result<RegionId, CoreError> {
    if !view.space().covers(target) {
        return Err(CoreError::OutOfSpace {
            x: target.x,
            y: target.y,
        });
    }
    if !view.is_live(from.index()) {
        return Err(CoreError::UnknownRegion(from));
    }
    scratch.begin(view);
    let budget = 8 * (view.region_count() as f64).sqrt() as usize + 64;
    let slots = view.slot_count();
    let cacheable = slots < ROUTE_CACHE_MAX_SLOTS;
    // L1: a destination seen before by its exact coordinates gets a slab
    // of memoized argmins — no geometry proof needed, the key is exact.
    let l1 = if cacheable {
        scratch
            .cache
            .promote_target(target.x.to_bits(), target.y.to_bits(), slots)
    } else {
        None
    };
    // L2: cell entries are only sound for targets inside the cell
    // rectangle the interval bounds were computed over; grid clamping
    // maps out-of-range points to edge cells, so re-check containment
    // instead of trusting the cell number.
    let l2: Option<(Region, usize)> = if !cacheable || l1.is_some() {
        None
    } else {
        let dest_cell = view.grid_cell_of(target) as usize;
        view.grid_cell_rect(dest_cell as u32)
            .filter(|r| r.contains_closed(target))
            .and_then(|rect| {
                scratch
                    .promote_cell(dest_cell, slots)
                    .map(|slab| (rect, slab))
            })
    };
    scratch.hops.push(from);
    scratch.visit(from.index());
    greedy_loop(view, from, target, scratch, l1, l2, budget, 0)
}

/// The greedy mesh walk shared by [`greedy_into`] (whole route, `base` 0)
/// and [`express_into`] (last mile, `base` = express prefix length):
/// termination test, hop budget relative to `base`, and the three-arm
/// cache match per hop. The caller has already pushed and visited
/// `current`; the express prefix before `base` carries no visited marks,
/// so from the handoff on this walk sees exactly the state
/// [`route_uncached`] would build starting there.
#[hot_path]
#[allow(clippy::too_many_arguments)]
fn greedy_loop<V: TopologyView + ?Sized>(
    view: &V,
    mut current: RegionId,
    target: Point,
    scratch: &mut RouteScratch,
    l1: Option<usize>,
    l2: Option<(Region, usize)>,
    budget: usize,
    base: usize,
) -> Result<RegionId, CoreError> {
    loop {
        let slot = current.index();
        if !view.is_live(slot) {
            return Err(CoreError::UnknownRegion(current));
        }
        // Termination. The region covering `target` is unique and stable
        // within an epoch, so on the L1 path its slot is memoized and the
        // per-hop rectangle test collapses into one integer compare.
        let covered = if let Some(slab) = l1 {
            match scratch.cache.target_terminals[slab] {
                SLOT_EMPTY => {
                    let covered = view.covers(slot, target);
                    if covered {
                        scratch.cache.target_terminals[slab] = slot as u32;
                    }
                    covered
                }
                term => term as usize == slot,
            }
        } else {
            view.covers(slot, target)
        };
        if covered {
            return Ok(current);
        }
        if scratch.hops.len() - base > budget {
            // Degenerate topology (should not happen on a valid partition):
            // answer via the spatial index so callers still make progress.
            let executor = view.locate(target)?;
            scratch.hops.push(executor);
            return Ok(executor);
        }
        // A cached neighbor — from either tier — is the greedy argmin
        // over ALL neighbors (for this exact target in L1, for every
        // target of the cell in L2); when it is unvisited it is also the
        // minimum over unvisited neighbors, so following it is exactly
        // what the uncached scan would do. A visited one falls back to
        // the full unvisited scan, again matching the reference.
        let next = if let Some(slab) = l1 {
            scratch.lookups += 1;
            match scratch.cache.target_slabs[slab][slot] {
                SLOT_EMPTY => {
                    let (best_all, best_unvisited) = scan_next_hop(view, slot, target, scratch);
                    scratch.cache.target_slabs[slab][slot] =
                        best_all.map_or(SLOT_SCAN, |r| r.as_u32());
                    scratch.cache.entries += 1;
                    best_unvisited
                }
                raw if raw < SLOT_SCAN && !scratch.visited(raw as usize) => {
                    scratch.hits += 1;
                    Some(RegionId::new(raw))
                }
                _ => scan_next_hop(view, slot, target, scratch).1,
            }
        } else if let Some((dest_rect, slab)) = l2 {
            scratch.lookups += 1;
            match scratch.cache.cell_slabs[slab][slot] {
                SLOT_EMPTY => {
                    let (value, best_unvisited) =
                        scan_and_filter(view, slot, target, &dest_rect, scratch);
                    scratch.cache.cell_slabs[slab][slot] = value;
                    scratch.cache.entries += 1;
                    best_unvisited
                }
                raw if raw < SLOT_SCAN && !scratch.visited(raw as usize) => {
                    scratch.hits += 1;
                    Some(RegionId::new(raw))
                }
                _ => scan_next_hop(view, slot, target, scratch).1,
            }
        } else {
            scan_next_hop(view, slot, target, scratch).1
        };
        match next {
            Some(next) => {
                scratch.visit(next.index());
                scratch.hops.push(next);
                current = next;
            }
            None => {
                let executor = view.locate(target)?;
                scratch.hops.push(executor);
                return Ok(executor);
            }
        }
    }
}

/// The express decision at `current` toward `target`: the finger to
/// follow, or `None` to hand off to the greedy walk. A finger qualifies
/// when it cuts the remaining rectangle distance to at most
/// [`EXPRESS_DECAY`]× (geometric decay — the express phase cannot loop),
/// and the best qualified finger is followed only when its greedy key
/// `(closest-point distance, center distance, id)` strictly beats every
/// immediate neighbor's — otherwise plain greedy makes at least the same
/// progress and the express hop would only lengthen the route. Below the
/// finger floor, or within [`EXPRESS_ENGAGE`] diameters of the current
/// region, the express phase is over.
///
/// Deterministic in the geometry alone (no visited state), which is what
/// makes the per-destination `target_express` cache sound.
#[hot_path]
fn express_choice<V: TopologyView + ?Sized>(
    view: &V,
    current: RegionId,
    target: Point,
    floor: f64,
) -> Option<RegionId> {
    let slot = current.index();
    let rect = view.slot_rect(slot);
    let d = rect.distance_to_point(target);
    // Hand off inside the near field: below the global finger floor, or
    // within a few diameters of the current region (where greedy needs
    // only a couple of hops and an express detour can only lose).
    if d <= floor.max(EXPRESS_ENGAGE * rect.width().max(rect.height())) {
        return None;
    }
    let cutoff = EXPRESS_DECAY * d;
    let mut best: Option<(f64, f64, RegionId)> = None;
    for &raw in &view.slot_fingers(slot).ids()[..FINGER_COUNT] {
        if raw == FINGER_NONE {
            continue;
        }
        let fslot = raw as usize;
        let rect_d = view.slot_rect(fslot).distance_to_point(target);
        if rect_d > cutoff {
            continue;
        }
        let key = (
            rect_d,
            view.slot_center(fslot).distance(target),
            RegionId::new(raw),
        );
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    let best = best?;
    let mut best_neighbor: Option<(f64, f64, RegionId)> = None;
    for &n in view.neighbors(slot) {
        let key = (
            view.slot_rect(n.index()).distance_to_point(target),
            view.slot_center(n.index()).distance(target),
            n,
        );
        if best_neighbor.is_none_or(|b| key < b) {
            best_neighbor = Some(key);
        }
    }
    match best_neighbor {
        Some(nb) if best >= nb => None,
        _ => Some(best.2),
    }
}

/// Two-phase express route (see the [module docs](self)): descend the
/// express fingers while the remaining distance exceeds the finger floor,
/// then hand off to the paper-faithful greedy walk for the last mile. The
/// hop trace lands in [`RouteScratch::hops`] with the handoff index in
/// [`RouteScratch::express_prefix`]; the last-mile segment is hop-for-hop
/// what [`route_uncached`] walks from the handoff region.
///
/// On networks too coarse for any finger to qualify the express phase
/// takes zero hops and this is exactly [`greedy_into`].
#[hot_path]
pub(crate) fn express_into<V: TopologyView + ?Sized>(
    view: &V,
    from: RegionId,
    target: Point,
    scratch: &mut RouteScratch,
) -> Result<RegionId, CoreError> {
    if !view.space().covers(target) {
        return Err(CoreError::OutOfSpace {
            x: target.x,
            y: target.y,
        });
    }
    if !view.is_live(from.index()) {
        return Err(CoreError::UnknownRegion(from));
    }
    scratch.begin(view);
    let budget = 8 * (view.region_count() as f64).sqrt() as usize + 64;
    let slots = view.slot_count();
    let cacheable = slots < ROUTE_CACHE_MAX_SLOTS;
    let l1 = if cacheable {
        scratch
            .cache
            .promote_target(target.x.to_bits(), target.y.to_bits(), slots)
    } else {
        None
    };
    let l2: Option<(Region, usize)> = if !cacheable || l1.is_some() {
        None
    } else {
        let dest_cell = view.grid_cell_of(target) as usize;
        view.grid_cell_rect(dest_cell as u32)
            .filter(|r| r.contains_closed(target))
            .and_then(|rect| {
                scratch
                    .promote_cell(dest_cell, slots)
                    .map(|slab| (rect, slab))
            })
    };
    let floor = view.finger_base();
    let mut current = from;
    scratch.hops.push(from);
    // Phase 1: express descent. Hops are recorded but NOT marked visited —
    // the greedy tail must start from exactly the visited state
    // route_uncached would have at the handoff (just the handoff itself),
    // and the decay guarantee already rules out express loops.
    let mut express_hops = 0usize;
    while express_hops < EXPRESS_MAX_HOPS {
        let next = if let Some(slab) = l1 {
            scratch.lookups += 1;
            match scratch.cache.target_express[slab][current.index()] {
                SLOT_EMPTY => {
                    let choice = express_choice(view, current, target, floor);
                    scratch.cache.target_express[slab][current.index()] =
                        choice.map_or(SLOT_SCAN, |r| r.as_u32());
                    scratch.cache.entries += 1;
                    choice
                }
                SLOT_SCAN => None,
                raw => {
                    scratch.hits += 1;
                    Some(RegionId::new(raw))
                }
            }
        } else {
            express_choice(view, current, target, floor)
        };
        match next {
            Some(next) => {
                scratch.hops.push(next);
                current = next;
                express_hops += 1;
            }
            None => break,
        }
    }
    scratch.express_len = express_hops;
    // Phase 2: the unmodified greedy engine finishes the last mile.
    scratch.visit(current.index());
    greedy_loop(view, current, target, scratch, l1, l2, budget, express_hops)
}

/// Like [`greedy_into`], but at each step picks uniformly at random among
/// the near-optimal next hops (`slack`-relative tie window). Reuses the
/// scratch buffers but never consults the next-hop cache — the point of
/// randomization is to *not* repeat the previous choice.
///
/// Produces exactly the same hops for the same RNG state regardless of
/// which wrapper drives it.
#[hot_path]
pub(crate) fn randomized_into<V: TopologyView + ?Sized, R: rand::Rng + ?Sized>(
    view: &V,
    from: RegionId,
    target: Point,
    slack: f64,
    rng: &mut R,
    scratch: &mut RouteScratch,
) -> Result<RegionId, CoreError> {
    if !view.space().covers(target) {
        return Err(CoreError::OutOfSpace {
            x: target.x,
            y: target.y,
        });
    }
    if !view.is_live(from.index()) {
        return Err(CoreError::UnknownRegion(from));
    }
    scratch.begin(view);
    let budget = 8 * (view.region_count() as f64).sqrt() as usize + 64;
    let mut current = from;
    scratch.hops.push(from);
    scratch.visit(from.index());
    loop {
        let slot = current.index();
        if !view.is_live(slot) {
            return Err(CoreError::UnknownRegion(current));
        }
        if view.covers(slot, target) {
            return Ok(current);
        }
        if scratch.hops.len() > budget {
            let executor = view.locate(target)?;
            scratch.hops.push(executor);
            return Ok(executor);
        }
        let mut cand = std::mem::take(&mut scratch.cand);
        candidates_into_filtered(
            view,
            slot,
            target,
            |n| scratch.visited(n.index()),
            slack,
            &mut cand,
        );
        let next = if cand.is_empty() {
            scan_next_hop(view, slot, target, scratch).1
        } else {
            Some(cand[rng.random_range(0..cand.len())])
        };
        scratch.cand = cand;
        match next {
            Some(next) => {
                scratch.visit(next.index());
                scratch.hops.push(next);
                current = next;
            }
            None => {
                let executor = view.locate(target)?;
                scratch.hops.push(executor);
                return Ok(executor);
            }
        }
    }
}

thread_local! {
    /// Per-thread scratch backing the join helpers, so callers without a
    /// [`Router`] of their own still reuse buffers and the next-hop cache.
    static THREAD_SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::new());
}

/// Runs `f` with the thread-local [`RouteScratch`]. Falls back to a fresh
/// scratch if the thread-local one is already borrowed (re-entrant use).
pub(crate) fn with_thread_scratch<T>(f: impl FnOnce(&mut RouteScratch) -> T) -> T {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut RouteScratch::new()),
    })
}

/// Which forwarding engine a [`Router`] query uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RouteEngine {
    /// The paper's greedy mesh walk (§2.2): `O(√N)` hops, hop-for-hop
    /// identical to [`route_uncached`].
    #[default]
    Greedy,
    /// Two-phase express route: finger descent (`O(log N)` hops), then
    /// the greedy walk for the last mile.
    Express,
}

/// Per-query options for [`Router::route`]: which engine forwards, and
/// whether next hops are randomized over the near-optimal tie window.
///
/// `RouteOptions::default()` is the plain greedy walk.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouteOptions {
    /// The forwarding engine ([`RouteEngine::Greedy`] by default).
    pub engine: RouteEngine,
    /// `Some(slack)` picks uniformly at random among the next hops within
    /// the `slack`-relative tie window of the best (the paper's
    /// *randomization of routing entries*, spreading transit load over
    /// parallel corridors). Randomization always runs the greedy walk —
    /// `engine` is ignored when this is set — and never consults the
    /// next-hop cache: the point is to *not* repeat the previous choice.
    pub randomize: Option<f64>,
}

impl RouteOptions {
    /// Plain greedy forwarding (the default).
    pub fn greedy() -> Self {
        Self::default()
    }

    /// Two-phase express forwarding over the topology's finger links.
    pub fn express() -> Self {
        Self {
            engine: RouteEngine::Express,
            randomize: None,
        }
    }

    /// Greedy forwarding randomized over the `slack`-relative tie window.
    pub fn randomized(slack: f64) -> Self {
        Self {
            engine: RouteEngine::Greedy,
            randomize: Some(slack),
        }
    }
}

/// The routing facade: one reusable object bundling the zero-allocation
/// [`RouteScratch`] (visited stamps, hop buffer, epoch-validated next-hop
/// cache) with an RNG for randomized queries, dispatching on
/// [`RouteOptions`].
///
/// A `Router` works on any [`TopologyView`]: pass `&Topology` on the
/// single-threaded path or `&TopologySnapshot` when routing concurrently
/// against a published snapshot (one `Router` per reader thread — the
/// scratch is the per-thread state, the snapshot the shared immutable
/// one). The cache re-keys itself on `(instance_id, epoch)`, so a router
/// may be reused freely across views, epochs, and instances.
///
/// ```
/// use geogrid_core::routing::{RouteOptions, Router};
/// use geogrid_core::Topology;
/// use geogrid_geometry::{Point, Space};
///
/// let mut t = Topology::new(Space::paper_evaluation());
/// let n = t.register_node(Point::new(1.0, 1.0), 10.0);
/// t.bootstrap(n).unwrap();
///
/// let mut router = Router::new();
/// let from = t.first_region().unwrap();
/// let executor = router
///     .route(&t, from, Point::new(12.0, 51.0), &RouteOptions::greedy())
///     .unwrap();
/// assert_eq!(router.hops().last(), Some(&executor));
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    scratch: RouteScratch,
    rng: rand::rngs::SmallRng,
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// A fresh router with an empty cache and a fixed default RNG seed
    /// (use [`Self::with_seed`] or [`Self::route_with_rng`] when the
    /// randomized-tie stream must be controlled).
    pub fn new() -> Self {
        Self::with_seed(0x6765_6f67_7269_6421)
    }

    /// A fresh router whose randomized queries draw from a
    /// deterministically seeded RNG.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            scratch: RouteScratch::new(),
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
        }
    }

    /// Routes from `from` to the region covering `target` on `view`,
    /// dispatching on `options`. Returns the executor region; the hop
    /// trace is in [`Self::hops`] (or [`Self::path`] for an owned copy).
    ///
    /// # Errors
    ///
    /// * [`CoreError::OutOfSpace`] if `target` lies outside the space.
    /// * [`CoreError::UnknownRegion`] if `from` is dead.
    /// * [`CoreError::EmptyNetwork`] if the network has no regions.
    pub fn route<V: TopologyView + ?Sized>(
        &mut self,
        view: &V,
        from: RegionId,
        target: Point,
        options: &RouteOptions,
    ) -> Result<RegionId, CoreError> {
        if let Some(slack) = options.randomize {
            return randomized_into(view, from, target, slack, &mut self.rng, &mut self.scratch);
        }
        match options.engine {
            RouteEngine::Greedy => greedy_into(view, from, target, &mut self.scratch),
            RouteEngine::Express => express_into(view, from, target, &mut self.scratch),
        }
    }

    /// Like [`Self::route`], but randomized queries draw from the
    /// caller's `rng` instead of the router's own — for experiment
    /// harnesses that must reproduce an exact historical random stream.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::route`].
    pub fn route_with_rng<V: TopologyView + ?Sized, R: rand::Rng + ?Sized>(
        &mut self,
        view: &V,
        from: RegionId,
        target: Point,
        options: &RouteOptions,
        rng: &mut R,
    ) -> Result<RegionId, CoreError> {
        if let Some(slack) = options.randomize {
            return randomized_into(view, from, target, slack, rng, &mut self.scratch);
        }
        match options.engine {
            RouteEngine::Greedy => greedy_into(view, from, target, &mut self.scratch),
            RouteEngine::Express => express_into(view, from, target, &mut self.scratch),
        }
    }

    /// The hop trace of the most recent successful route: starts at the
    /// source, ends at the executor.
    pub fn hops(&self) -> &[RegionId] {
        self.scratch.hops()
    }

    /// Hop count of the most recent successful route.
    pub fn hop_count(&self) -> usize {
        self.scratch.hop_count()
    }

    /// An owned [`RoutePath`] of the most recent successful route, or
    /// `None` if no route has completed yet.
    pub fn path(&self) -> Option<RoutePath> {
        self.scratch.hops().last().map(|&executor| RoutePath {
            executor,
            hops: self.scratch.hops().to_vec(),
        })
    }

    /// Index of the express→greedy handoff in [`Self::hops`] (see
    /// [`RouteScratch::express_prefix`]).
    pub fn express_prefix(&self) -> usize {
        self.scratch.express_prefix()
    }

    /// Derived next-hop entries across all promoted destinations.
    pub fn cached_entries(&self) -> usize {
        self.scratch.cached_entries()
    }

    /// Fraction of next-hop decisions served from the cache since the
    /// last [`Self::reset_stats`].
    pub fn hit_rate(&self) -> f64 {
        self.scratch.hit_rate()
    }

    /// Clears the hit/lookup counters (not the cache).
    pub fn reset_stats(&mut self) {
        self.scratch.reset_stats();
    }

    /// Drops every cached next hop (stats and buffers survive).
    pub fn clear_cache(&mut self) {
        self.scratch.clear_cache();
    }

    /// The underlying scratch, for callers migrating incrementally from
    /// the free-function API.
    pub fn scratch_mut(&mut self) -> &mut RouteScratch {
        &mut self.scratch
    }
}

/// The original allocating implementation — per-query `HashSet` and
/// `Vec`s, no scratch, no cache. Kept as the reference the cached engine
/// is verified against (the cache-consistency property test asserts the
/// [`Router`] facade matches this hop for hop) and as the *cold* baseline
/// in benchmarks. Works on any [`TopologyView`], so the concurrency
/// stress test can run it against the very snapshot a reader routed on.
///
/// # Errors
///
/// Same conditions as [`Router::route`].
pub fn route_uncached<V: TopologyView + ?Sized>(
    view: &V,
    from: RegionId,
    target: Point,
) -> Result<RoutePath, CoreError> {
    if !view.space().covers(target) {
        return Err(CoreError::OutOfSpace {
            x: target.x,
            y: target.y,
        });
    }
    if !view.is_live(from.index()) {
        return Err(CoreError::UnknownRegion(from));
    }
    let budget = 8 * (view.region_count() as f64).sqrt() as usize + 64;
    let mut visited = HashSet::new();
    let mut hops = vec![from];
    let mut current = from;
    visited.insert(from);
    loop {
        let slot = current.index();
        if !view.is_live(slot) {
            return Err(CoreError::UnknownRegion(current));
        }
        if view.covers(slot, target) {
            return Ok(RoutePath {
                executor: current,
                hops,
            });
        }
        if hops.len() > budget {
            let executor = view.locate(target)?;
            hops.push(executor);
            return Ok(RoutePath { executor, hops });
        }
        match next_hop(view, current, target, &visited) {
            Some(next) => {
                visited.insert(next);
                hops.push(next);
                current = next;
            }
            None => {
                let executor = view.locate(target)?;
                hops.push(executor);
                return Ok(RoutePath { executor, hops });
            }
        }
    }
}

/// All regions a query rectangle must be delivered to: breadth-first flood
/// from the executor over neighbors overlapping `query`.
///
/// The paper forwards from the executor to the neighbors whose regions
/// intersect the query rectangle; the flood generalizes that to rectangles
/// wider than one neighborhood while visiting only overlapping regions.
/// The executor itself is always included (first).
pub fn fanout<V: TopologyView + ?Sized>(
    view: &V,
    executor: RegionId,
    query: &Region,
) -> Vec<RegionId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut frontier = vec![executor];
    seen.insert(executor);
    while let Some(rid) = frontier.pop() {
        if !view.is_live(rid.index()) {
            continue;
        }
        out.push(rid);
        for &n in view.neighbors(rid.index()) {
            if seen.contains(&n) {
                continue;
            }
            let overlaps = view.is_live(n.index()) && view.slot_rect(n.index()).intersects(query);
            if overlaps {
                seen.insert(n);
                frontier.push(n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use geogrid_geometry::Space;

    /// Builds a 2^k-region topology by repeated joins at grid points.
    fn grid_topology(k: u32) -> Topology {
        let space = Space::paper_evaluation();
        let mut t = Topology::new(space);
        let n0 = t.register_node(Point::new(1.0, 1.0), 10.0);
        t.bootstrap(n0).unwrap();
        let count = 1u32 << k;
        let mut i = 1u32;
        while (t.region_count() as u32) < count {
            // Halton-ish deterministic spread.
            let x = ((i as f64 * 0.754877666) % 1.0) * 63.0 + 0.5;
            let y = ((i as f64 * 0.569840296) % 1.0) * 63.0 + 0.5;
            let p = Point::new(x, y);
            let rid = t.locate_scan(p).unwrap();
            let primary = t.region(rid).unwrap().primary();
            let j = t.register_node(p, 10.0);
            t.split_region(rid, primary, j).unwrap();
            i += 1;
        }
        t.validate().unwrap();
        t
    }

    #[test]
    fn route_reaches_covering_region() {
        let t = grid_topology(6); // 64 regions
        let from = t.first_region().unwrap();
        let mut router = Router::new();
        for target in [
            Point::new(0.5, 0.5),
            Point::new(63.5, 63.5),
            Point::new(32.0, 1.0),
            Point::new(5.0, 60.0),
        ] {
            let executor = router
                .route(&t, from, target, &RouteOptions::greedy())
                .expect("route");
            assert!(t.region(executor).unwrap().covers(target, t.space()));
            assert_eq!(executor, t.locate_scan(target).unwrap());
            assert_eq!(*router.hops().first().unwrap(), from);
            assert_eq!(*router.hops().last().unwrap(), executor);
            let path = router.path().expect("a route just completed");
            assert_eq!(path.executor, executor);
            assert_eq!(&path.hops[..], router.hops());
        }
    }

    #[test]
    fn route_to_own_region_is_zero_hops() {
        let t = grid_topology(4);
        let from = t.first_region().unwrap();
        let inside = t.region(from).unwrap().region().center();
        let mut router = Router::new();
        let executor = router
            .route(&t, from, inside, &RouteOptions::greedy())
            .unwrap();
        assert_eq!(router.hop_count(), 0);
        assert_eq!(executor, from);
    }

    #[test]
    fn route_rejects_out_of_space() {
        let t = grid_topology(2);
        let from = t.first_region().unwrap();
        let mut router = Router::new();
        assert!(matches!(
            router.route(&t, from, Point::new(100.0, 0.0), &RouteOptions::greedy()),
            Err(CoreError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn hop_counts_scale_like_sqrt_n() {
        // Mean hops at 256 regions should be well below 2*sqrt(256) = 32
        // and grow roughly as sqrt when quadrupling the network.
        let t_small = grid_topology(6); // 64
        let t_big = grid_topology(8); // 256
        let mean_hops = |t: &Topology| {
            let ids: Vec<RegionId> = t.region_ids().collect();
            let mut router = Router::new();
            let mut total = 0usize;
            let mut count = 0usize;
            for (i, &from) in ids.iter().enumerate() {
                let target = t
                    .region(ids[(i * 7 + 3) % ids.len()])
                    .unwrap()
                    .region()
                    .center();
                router
                    .route(t, from, target, &RouteOptions::greedy())
                    .unwrap();
                total += router.hop_count();
                count += 1;
            }
            total as f64 / count as f64
        };
        let small = mean_hops(&t_small);
        let big = mean_hops(&t_big);
        assert!(small < 16.0, "64-region mean hops {small}");
        assert!(big < 32.0, "256-region mean hops {big}");
        assert!(big > small, "hops must grow with network size");
    }

    #[test]
    fn next_hop_is_none_when_covering() {
        let t = grid_topology(4);
        let from = t.first_region().unwrap();
        let inside = t.region(from).unwrap().region().center();
        assert_eq!(next_hop(&t, from, inside, &HashSet::new()), None);
    }

    #[test]
    fn fanout_covers_exactly_overlapping_regions() {
        let t = grid_topology(6);
        let query = Region::new(20.0, 20.0, 24.0, 24.0);
        let executor = t.locate_scan(query.center()).unwrap();
        let fan = fanout(&t, executor, &query);
        assert_eq!(fan[0], executor);
        let expected: HashSet<RegionId> = t
            .regions()
            .filter(|(_, e)| e.region().intersects(&query))
            .map(|(rid, _)| rid)
            .collect();
        let got: HashSet<RegionId> = fan.iter().copied().collect();
        assert_eq!(got, expected);
        assert_eq!(fan.len(), got.len(), "no duplicates");
    }

    #[test]
    fn randomized_routing_reaches_cover_and_spreads_paths() {
        let t = grid_topology(6);
        let from = t.first_region().unwrap();
        let target = Point::new(60.0, 60.0);
        let mut router = Router::with_seed(3);
        let opts = RouteOptions::randomized(0.25);
        let mut distinct_paths = std::collections::HashSet::new();
        for _ in 0..20 {
            let executor = router.route(&t, from, target, &opts).unwrap();
            assert!(t.region(executor).unwrap().covers(target, t.space()));
            distinct_paths.insert(router.hops().to_vec());
        }
        // Randomization should explore more than one corridor.
        assert!(
            distinct_paths.len() > 1,
            "randomized routing always took the same path"
        );
        // And stay within the hop budget's ballpark of the greedy route.
        router
            .route(&t, from, target, &RouteOptions::greedy())
            .unwrap();
        let greedy = router.hop_count();
        for p in &distinct_paths {
            assert!(p.len() - 1 <= greedy * 3 + 8);
        }
    }

    #[test]
    fn candidates_are_subset_of_neighbors_and_sorted() {
        let t = grid_topology(5);
        let from = t.first_region().unwrap();
        let target = Point::new(60.0, 60.0);
        let c = next_hop_candidates(&t, from, target, &HashSet::new(), 0.5);
        let neighbors = t.region(from).unwrap().neighbors().to_vec();
        for rid in &c {
            assert!(neighbors.contains(rid));
        }
        let mut sorted = c.clone();
        sorted.sort();
        assert_eq!(c, sorted);
        // Covering region has no candidates.
        let inside = t.region(from).unwrap().region().center();
        assert!(next_hop_candidates(&t, from, inside, &HashSet::new(), 0.5).is_empty());
    }

    #[test]
    fn fanout_of_tiny_query_is_executor_only() {
        let t = grid_topology(6);
        let executor = t.locate_scan(Point::new(10.0, 10.0)).unwrap();
        let inner = t.region(executor).unwrap().region();
        let tiny = Region::new(inner.center().x - 1e-6, inner.center().y - 1e-6, 2e-6, 2e-6);
        assert_eq!(fanout(&t, executor, &tiny), vec![executor]);
    }

    #[test]
    fn cached_engine_matches_uncached_reference_on_all_pairs() {
        let t = grid_topology(6);
        let ids: Vec<RegionId> = t.region_ids().collect();
        let mut router = Router::new();
        // Twice over every (from, target) pair: the second round runs with
        // a warm cache and must still agree hop for hop.
        for _round in 0..2 {
            for &from in &ids {
                for &to in &ids {
                    let target = t.region(to).unwrap().region().center();
                    let reference = route_uncached(&t, from, target).unwrap();
                    let executor = router
                        .route(&t, from, target, &RouteOptions::greedy())
                        .unwrap();
                    assert_eq!(executor, reference.executor);
                    assert_eq!(router.hops(), &reference.hops[..]);
                }
            }
        }
        assert!(router.hit_rate() > 0.0, "warm round never hit the cache");
    }

    #[test]
    fn cache_survives_ownership_churn_but_not_geometry_changes() {
        let mut t = grid_topology(5);
        let ids: Vec<RegionId> = t.region_ids().collect();
        let (from, to) = (ids[0], ids[ids.len() - 1]);
        let target = t.region(to).unwrap().region().center();
        let mut router = Router::new();
        let opts = RouteOptions::greedy();
        // Twice: the second sighting promotes the exact target to its L1
        // slab and derives every entry along the (identical) path.
        router.route(&t, from, target, &opts).unwrap();
        router.route(&t, from, target, &opts).unwrap();
        let warm = router.cached_entries();
        assert!(warm > 0);
        // Ownership-only churn keeps the cache.
        t.swap_primaries(from, to).unwrap();
        router.route(&t, from, target, &opts).unwrap();
        assert_eq!(router.cached_entries(), warm);
        // A split flushes it (epoch bump) and routing stays correct.
        let rid = t.locate_scan(Point::new(32.0, 32.0)).unwrap();
        let primary = t.region(rid).unwrap().primary();
        let j = t.register_node(Point::new(32.0, 32.0), 10.0);
        t.split_region(rid, primary, j).unwrap();
        let reference = route_uncached(&t, from, target).unwrap();
        let executor = router.route(&t, from, target, &opts).unwrap();
        assert_eq!(executor, reference.executor);
        assert_eq!(router.hops(), &reference.hops[..]);
    }

    #[test]
    fn express_route_tail_matches_uncached_reference() {
        let t = grid_topology(8); // 256 regions
        let ids: Vec<RegionId> = t.region_ids().collect();
        let mut router = Router::new();
        let opts = RouteOptions::express();
        // Twice so the second round exercises the warm target_express slabs.
        for _round in 0..2 {
            for (i, &from) in ids.iter().enumerate().step_by(5) {
                let target = t
                    .region(ids[(i * 13 + 7) % ids.len()])
                    .unwrap()
                    .region()
                    .center();
                let reference = route_uncached(&t, from, target).unwrap();
                let executor = router.route(&t, from, target, &opts).unwrap();
                assert_eq!(executor, reference.executor, "{from} -> {target:?}");
                assert!(
                    router.hop_count() <= reference.hop_count(),
                    "{from} -> {target:?}: express {} hops vs greedy {}",
                    router.hop_count(),
                    reference.hop_count()
                );
                // The last mile is hop-for-hop the greedy reference from
                // the handoff region.
                let handoff = router.hops()[router.express_prefix()];
                let tail = route_uncached(&t, handoff, target).unwrap();
                assert_eq!(&router.hops()[router.express_prefix()..], &tail.hops[..]);
            }
        }
    }

    #[test]
    fn express_route_saves_hops_on_long_paths() {
        let t = grid_topology(10); // 1024 regions
        let from = t.locate_scan(Point::new(0.5, 0.5)).unwrap();
        let target = Point::new(63.5, 63.5);
        let reference = route_uncached(&t, from, target).unwrap();
        let mut router = Router::new();
        let executor = router
            .route(&t, from, target, &RouteOptions::express())
            .unwrap();
        assert_eq!(executor, reference.executor);
        assert!(
            router.express_prefix() > 0,
            "corner-to-corner route at 1024 regions never took an express hop"
        );
        assert!(
            router.hop_count() * 2 <= reference.hop_count(),
            "express {} hops vs greedy {}",
            router.hop_count(),
            reference.hop_count()
        );
    }

    #[test]
    fn express_route_to_own_region_is_zero_hops() {
        let t = grid_topology(4);
        let from = t.first_region().unwrap();
        let inside = t.region(from).unwrap().region().center();
        let mut router = Router::new();
        let executor = router
            .route(&t, from, inside, &RouteOptions::express())
            .unwrap();
        assert_eq!(router.hop_count(), 0);
        assert_eq!(executor, from);
    }

    #[test]
    fn snapshot_routing_matches_topology_routing() {
        let t = grid_topology(8); // 256 regions
        let snap = t.snapshot();
        let ids: Vec<RegionId> = t.region_ids().collect();
        let mut on_topo = Router::new();
        let mut on_snap = Router::new();
        for (i, &from) in ids.iter().enumerate().step_by(3) {
            let target = t
                .region(ids[(i * 17 + 3) % ids.len()])
                .unwrap()
                .region()
                .center();
            for opts in [RouteOptions::greedy(), RouteOptions::express()] {
                let a = on_topo.route(&t, from, target, &opts).unwrap();
                let b = on_snap.route(&*snap, from, target, &opts).unwrap();
                assert_eq!(a, b, "{from} -> {target:?}");
                assert_eq!(on_topo.hops(), on_snap.hops(), "{from} -> {target:?}");
            }
            let reference = route_uncached(&t, from, target).unwrap();
            let on_view = route_uncached(&*snap, from, target).unwrap();
            assert_eq!(reference, on_view);
        }
        // The snapshot's own locate agrees with the live spatial index.
        for p in [
            Point::new(0.5, 0.5),
            Point::new(63.5, 63.5),
            Point::new(31.0, 7.0),
        ] {
            assert_eq!(snap.locate(p).unwrap(), t.locate(p).unwrap());
        }
    }

    #[test]
    fn candidates_into_matches_allocating_form() {
        let t = grid_topology(6);
        let target = Point::new(60.0, 60.0);
        let mut buf = Vec::new();
        for rid in t.region_ids() {
            for slack in [0.0, 0.25, 0.5] {
                let reference = next_hop_candidates(&t, rid, target, &HashSet::new(), slack);
                next_hop_candidates_into(&t, rid, target, &HashSet::new(), slack, &mut buf);
                assert_eq!(buf, reference);
            }
        }
    }
}
