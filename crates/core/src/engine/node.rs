//! The per-node protocol state machine.

use geogrid_geometry::{Point, Region, Space};

use crate::engine::messages::{Message, NeighborInfo};
use crate::service::{LocationQuery, LocationRecord, RegionStore, Subscription};
use crate::topology::Role;
use crate::{NodeId, NodeInfo};

/// Which join protocol the engine speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Basic GeoGrid: every join splits the covering region.
    #[default]
    Basic,
    /// Dual-peer GeoGrid: joins fill half-full regions first.
    DualPeer,
}

/// Engine tuning. Times are in the driver's tick domain (milliseconds
/// under both the simulator and the tokio transport).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Join protocol.
    pub mode: EngineMode,
    /// How often the driver is expected to deliver [`Input::Tick`].
    pub heartbeat_interval: u64,
    /// A dual peer silent for this long is declared failed (§2.3 has
    /// primaries and secondaries heartbeat "at a higher frequency").
    pub peer_timeout: u64,
    /// A neighbor primary silent for this long is dropped from the
    /// routing table.
    pub neighbor_timeout: u64,
    /// Hop budget for greedy forwarding (loop guard).
    pub max_hops: u32,
    /// Whether the engine runs the message-level load-balance adaptation
    /// (mechanisms (a)/(e) of §2.4; the remote and merge/split mechanisms
    /// are exercised through the topology model).
    pub balance_enabled: bool,
    /// Ticks per workload-statistics window: the served-query count is
    /// folded into the node's workload index at this cadence, and the
    /// adaptation trigger is evaluated.
    pub stats_window_ticks: u64,
    /// Adaptation trigger: adapt when own index exceeds this multiple of
    /// the lowest neighbor index (√2 in the paper).
    pub trigger_ratio: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mode: EngineMode::DualPeer,
            heartbeat_interval: 100,
            peer_timeout: 350,
            neighbor_timeout: 1_000,
            max_hops: 256,
            balance_enabled: true,
            stats_window_ticks: 5,
            trigger_ratio: std::f64::consts::SQRT_2,
        }
    }
}

/// Local input to the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// Become the first node: own the entire space.
    BootstrapAsFirst,
    /// Start joining through `entry` (any known node).
    Join {
        /// The entry node to contact.
        entry: NodeId,
    },
    /// A protocol message arrived.
    Message {
        /// Sender node.
        from: NodeId,
        /// The message.
        message: Message,
    },
    /// Periodic driver tick (heartbeats, timeouts).
    Tick,
    /// Gracefully leave the network (§2.3 "Node Departure").
    Leave,
    /// The local user (mobile client) issues a query.
    UserQuery {
        /// The query.
        query: LocationQuery,
    },
    /// The local user publishes a record.
    UserPublish {
        /// The record.
        record: LocationRecord,
    },
    /// The local user registers a subscription.
    UserSubscribe {
        /// The subscription.
        sub: Subscription,
    },
}

/// Externally visible consequence of handling an input.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send a protocol message to another node.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        message: Message,
    },
    /// Deliver an event to the local client.
    Client(ClientEvent),
}

/// Events the engine reports to its local client (the proxied mobile
/// user / operator).
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// The node now (co-)owns a region.
    Joined {
        /// The owned region.
        region: Region,
        /// The role held.
        role: Role,
    },
    /// The node's dual peer failed or left; this node is now the primary.
    PromotedToPrimary {
        /// The owned region.
        region: Region,
    },
    /// This primary's secondary went silent; the region is half-full.
    PeerLost {
        /// The owned region.
        region: Region,
    },
    /// Results for a user query arrived. One event arrives per answering
    /// region (the executor plus each fanned-out overlapping region);
    /// `query_id` correlates them to the issuing [`Input::UserQuery`].
    QueryResults {
        /// The correlation id returned by the issuing engine.
        query_id: u64,
        /// Matching records from one answering region.
        records: Vec<LocationRecord>,
    },
    /// A subscribed publication arrived.
    Notified {
        /// The matching record.
        record: LocationRecord,
    },
    /// This node executed a load-balance adaptation (§2.4).
    AdaptationExecuted {
        /// The paper's letter for the mechanism used ('a' or 'e' at the
        /// engine level).
        mechanism: char,
    },
    /// The node has left the overlay (after [`Input::Leave`]); the driver
    /// may shut the node down.
    Left,
    /// A graceful departure was requested but the region has no dual peer
    /// and no mergeable neighbor to hand it to; the node stays (retry
    /// later, after churn reshapes the neighborhood, or crash-leave and
    /// let the model-level repair take over).
    LeaveDeferred,
}

/// Read-only view of an owner's protocol state (drivers and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct OwnerView {
    /// The owned region.
    pub region: Region,
    /// This node's role.
    pub role: Role,
    /// The dual peer, if any.
    pub peer: Option<NodeInfo>,
    /// Known neighbor entries.
    pub neighbors: Vec<NeighborInfo>,
    /// Number of records held.
    pub records: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum State {
    Idle,
    Joining,
    // Boxed: Owner is two orders of magnitude larger than the other
    // variants (store, neighbor tables), and engines move between states
    // rarely.
    Owner(Box<Owner>),
}

#[derive(Debug, Clone, PartialEq)]
struct Owner {
    region: Region,
    role: Role,
    peer: Option<NodeInfo>,
    neighbors: Vec<NeighborInfo>,
    store: RegionStore,
    last_peer_seen: u64,
    last_neighbor_seen: Vec<(NodeId, u64)>,
    /// Queries/publications served since the last statistics window.
    served: f64,
    /// Workload index measured over the last window (served / capacity).
    my_index: f64,
    /// Latest workload indexes reported by neighbor primaries.
    neighbor_indexes: Vec<(NodeId, f64)>,
    /// An adaptation request is outstanding (avoid concurrent attempts).
    steal_in_flight: bool,
    /// Ticks seen (drives the statistics window).
    ticks: u64,
    /// Silent sibling regions queued for absorption, pending the
    /// [`Message::WhoOwns`] ring-check (entry, absorb-after deadline).
    pending_claims: Vec<(NeighborInfo, u64)>,
    /// Whether the current peer has heartbeat us since it was installed.
    /// An unconfirmed secondary is still settling a hand-off and must not
    /// be granted away to a steal request.
    peer_confirmed: bool,
    /// Recently seen fan-out keys (query/subscription flood dedup), a
    /// bounded FIFO.
    seen_fanout: std::collections::VecDeque<(NodeId, u64)>,
}

impl From<Owner> for State {
    fn from(owner: Owner) -> State {
        State::Owner(Box::new(owner))
    }
}

impl Owner {
    fn new(
        node: NodeId,
        region: Region,
        role: Role,
        peer: Option<NodeInfo>,
        neighbors: Vec<NeighborInfo>,
        mut store: RegionStore,
        now: u64,
    ) -> Self {
        // Re-home the store's HLC clock: stamps minted for records
        // published here must carry this owner's id so hand-off
        // last-write-wins is totally ordered across owners.
        store.set_node(node.as_u64());
        let last_neighbor_seen = neighbors.iter().map(|n| (n.primary.id(), now)).collect();
        Self {
            region,
            role,
            peer,
            neighbors,
            store,
            last_peer_seen: now,
            last_neighbor_seen,
            served: 0.0,
            my_index: 0.0,
            neighbor_indexes: Vec::new(),
            steal_in_flight: false,
            ticks: 0,
            pending_claims: Vec::new(),
            peer_confirmed: false,
            seen_fanout: std::collections::VecDeque::new(),
        }
    }

    fn upsert_neighbor(&mut self, own_region: Region, info: NeighborInfo, now: u64) {
        // Fresh knowledge about the area cancels any pending absorption
        // overlapping it (the region is not dead after all).
        self.pending_claims
            .retain(|(gone, _)| !gone.region.intersects(&info.region));
        self.neighbors
            .retain(|n| n.primary.id() != info.primary.id() && n.region != info.region);
        self.last_neighbor_seen
            .retain(|(id, _)| *id != info.primary.id());
        if info.region.touches_edge(&own_region) {
            self.last_neighbor_seen.push((info.primary.id(), now));
            self.neighbors.push(info);
        }
    }

    /// Flood dedup: returns true the first time a fan-out key is seen.
    fn first_sight(&mut self, key: (NodeId, u64)) -> bool {
        if self.seen_fanout.contains(&key) {
            return false;
        }
        if self.seen_fanout.len() >= 128 {
            self.seen_fanout.pop_front();
        }
        self.seen_fanout.push_back(key);
        true
    }

    fn record_neighbor_index(&mut self, id: NodeId, index: f64) {
        self.neighbor_indexes.retain(|(n, _)| *n != id);
        self.neighbor_indexes.push((id, index));
    }

    /// Lowest index among *current* neighbors (stale reports for dropped
    /// neighbors are ignored).
    fn lowest_neighbor_index(&self) -> Option<f64> {
        let current: Vec<NodeId> = self.neighbors.iter().map(|n| n.primary.id()).collect();
        self.neighbor_indexes
            .iter()
            .filter(|(id, _)| current.contains(id))
            .map(|(_, v)| *v)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))))
    }
}

/// The GeoGrid middleware state machine for one node.
///
/// See the [module docs](crate::engine) for the design and
/// [`crate::engine::sim`] for a complete simulated deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEngine {
    info: NodeInfo,
    space: Space,
    config: EngineConfig,
    state: State,
    next_query_id: u64,
}

impl NodeEngine {
    /// Creates an engine for node `info` over `space`.
    pub fn new(info: NodeInfo, space: Space, config: EngineConfig) -> Self {
        Self {
            info,
            space,
            config,
            state: State::Idle,
            next_query_id: 0,
        }
    }

    /// This node's descriptor.
    pub fn info(&self) -> NodeInfo {
        self.info
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Whether the node currently owns (or co-owns) a region.
    pub fn is_owner(&self) -> bool {
        matches!(self.state, State::Owner(_))
    }

    /// A snapshot of the owner state, if owning.
    pub fn owner_view(&self) -> Option<OwnerView> {
        match &self.state {
            State::Owner(o) => Some(OwnerView {
                region: o.region,
                role: o.role,
                peer: o.peer,
                neighbors: o.neighbors.clone(),
                records: o.store.record_count(),
            }),
            _ => None,
        }
    }

    /// Processes one input at tick `now`, returning the effects to apply.
    pub fn handle(&mut self, now: u64, input: Input) -> Vec<Effect> {
        match input {
            Input::BootstrapAsFirst => self.handle_bootstrap(now),
            Input::Join { entry } => self.handle_join_start(entry),
            Input::Message { from, message } => self.handle_message(now, from, message),
            Input::Tick => self.handle_tick(now),
            Input::Leave => self.handle_leave(now),
            Input::UserQuery { query } => self.handle_user_query(now, query),
            Input::UserPublish { record } => self.handle_user_publish(now, record),
            Input::UserSubscribe { sub } => self.handle_user_subscribe(now, sub),
        }
    }

    fn handle_bootstrap(&mut self, now: u64) -> Vec<Effect> {
        let region = self.space.bounds();
        self.state = State::from(Owner::new(
            self.info.id(),
            region,
            Role::Primary,
            None,
            Vec::new(),
            RegionStore::new(),
            now,
        ));
        vec![Effect::Client(ClientEvent::Joined {
            region,
            role: Role::Primary,
        })]
    }

    /// Graceful departure (§2.3):
    /// * a secondary just notifies its primary (region becomes half-full);
    /// * a primary with a dual peer hands the region to it;
    /// * a sole owner hands region + store to a mergeable neighbor;
    /// * otherwise the departure is deferred (see
    ///   [`ClientEvent::LeaveDeferred`]).
    fn handle_leave(&mut self, _now: u64) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            self.state = State::Idle;
            return vec![Effect::Client(ClientEvent::Left)];
        };
        let mut effects = Vec::new();
        match (owner.role, owner.peer) {
            (Role::Secondary, Some(primary)) => {
                effects.push(Effect::Send {
                    to: primary.id(),
                    message: Message::LeaveNotice,
                });
            }
            (Role::Primary, Some(peer)) => {
                effects.push(Effect::Send {
                    to: peer.id(),
                    message: Message::TakeOverRegion {
                        region: owner.region,
                        store: Box::new(owner.store.clone()),
                        neighbors: owner.neighbors.clone(),
                        new_secondary: None,
                    },
                });
            }
            (_, None) => {
                // Sole owner: find a neighbor whose rectangle re-forms a
                // rectangle with ours and hand everything over.
                let target = owner
                    .neighbors
                    .iter()
                    .find(|n| n.region.merge(&owner.region).is_some())
                    .map(|n| n.primary.id());
                match target {
                    Some(absorber) => {
                        effects.push(Effect::Send {
                            to: absorber,
                            message: Message::MergeRegions {
                                region: owner.region,
                                store: Box::new(owner.store.clone()),
                                neighbors: owner.neighbors.clone(),
                            },
                        });
                    }
                    None => {
                        return vec![Effect::Client(ClientEvent::LeaveDeferred)];
                    }
                }
            }
        }
        self.state = State::Idle;
        effects.push(Effect::Client(ClientEvent::Left));
        effects
    }

    /// Ring-check: reply with any live entry for (part of) the asked
    /// region — our own region included (we may be the promoted owner the
    /// asker never learned about).
    fn on_who_owns(&mut self, from: NodeId, region: Region) -> Vec<Effect> {
        let State::Owner(owner) = &self.state else {
            return Vec::new();
        };
        let mut effects = Vec::new();
        if owner.region.intersects(&region) {
            let me = NeighborInfo {
                primary: if owner.role == Role::Primary {
                    self.info
                } else {
                    owner.peer.unwrap_or(self.info)
                },
                secondary: if owner.role == Role::Primary {
                    owner.peer
                } else {
                    Some(self.info)
                },
                region: owner.region,
            };
            effects.push(Effect::Send {
                to: from,
                message: Message::OwnerIs { info: me },
            });
        }
        for n in &owner.neighbors {
            if n.region.intersects(&region) {
                effects.push(Effect::Send {
                    to: from,
                    message: Message::OwnerIs { info: n.clone() },
                });
            }
        }
        effects
    }

    /// Our primary granted us away (§2.4 steal): give up the secondary
    /// role and wait for the TakeOverRegion hand-off (or a re-placement).
    fn on_detached(&mut self, from: NodeId) -> Vec<Effect> {
        if let State::Owner(owner) = &self.state {
            if owner.role == Role::Secondary && owner.peer.is_some_and(|p| p.id() == from) {
                self.state = State::Joining;
            }
        }
        Vec::new()
    }

    /// A secondary announced its departure: the region is half-full.
    fn on_leave_notice(&mut self, from: NodeId) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        if owner.peer.is_some_and(|p| p.id() == from) {
            owner.peer = None;
            let entry = NeighborInfo::new(self.info, owner.region);
            return owner
                .neighbors
                .iter()
                .map(|n| Effect::Send {
                    to: n.primary.id(),
                    message: Message::NeighborUpdate {
                        info: entry.clone(),
                    },
                })
                .collect();
        }
        Vec::new()
    }

    /// A departing sole-owner neighbor handed us its region: absorb it.
    // audit: store-handoff
    fn on_merge_regions(
        &mut self,
        now: u64,
        region: Region,
        store: RegionStore,
        neighbors: Vec<NeighborInfo>,
    ) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        let Some(merged) = owner.region.merge(&region) else {
            return Vec::new(); // stale request: shapes changed
        };
        owner.region = merged;
        owner.store.absorb(store);
        // Union the departed node's neighbor table with ours; entries are
        // re-filtered against the merged rectangle.
        let mut candidates = std::mem::take(&mut owner.neighbors);
        candidates.extend(neighbors);
        owner.last_neighbor_seen.clear();
        let mut effects = Vec::new();
        let me = self.info.id();
        let entry = NeighborInfo {
            primary: self.info,
            secondary: owner.peer,
            region: merged,
        };
        let mut seen = Vec::new();
        for n in candidates {
            if n.primary.id() == me || seen.contains(&n.primary.id()) {
                continue;
            }
            if n.region.touches_edge(&merged) {
                seen.push(n.primary.id());
                owner.last_neighbor_seen.push((n.primary.id(), now));
                effects.push(Effect::Send {
                    to: n.primary.id(),
                    message: Message::NeighborUpdate {
                        info: entry.clone(),
                    },
                });
                owner.neighbors.push(n);
            }
        }
        effects
    }

    fn handle_join_start(&mut self, entry: NodeId) -> Vec<Effect> {
        self.state = State::Joining;
        vec![Effect::Send {
            to: entry,
            message: Message::JoinRequest {
                joiner: self.info,
                hops: 0,
            },
        }]
    }

    fn handle_tick(&mut self, now: u64) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        let mut effects = Vec::new();
        // Fold the served-request count into the workload index at the
        // statistics-window cadence (§2.4: nodes periodically exchange
        // workload statistics).
        owner.ticks += 1;
        if owner
            .ticks
            .is_multiple_of(self.config.stats_window_ticks.max(1))
        {
            owner.my_index = owner.served / self.info.capacity();
            owner.served = 0.0;
        }
        let my_index = owner.my_index;
        let self_entry = NeighborInfo {
            primary: if owner.role == Role::Primary {
                self.info
            } else {
                owner.peer.unwrap_or(self.info)
            },
            secondary: if owner.role == Role::Primary {
                owner.peer
            } else {
                Some(self.info)
            },
            region: owner.region,
        };
        // Heartbeat the dual peer (both directions, high frequency).
        if let Some(peer) = owner.peer {
            effects.push(Effect::Send {
                to: peer.id(),
                message: Message::Heartbeat {
                    info: self_entry.clone(),
                    index: my_index,
                },
            });
            if now.saturating_sub(owner.last_peer_seen) > self.config.peer_timeout {
                // Peer declared failed.
                let region = owner.region;
                let was_secondary = owner.role == Role::Secondary;
                owner.peer = None;
                owner.last_peer_seen = 0;
                if was_secondary {
                    owner.role = Role::Primary;
                    // The replica's seen-times are stale by construction
                    // (neighbors heartbeat the primary, not the secondary);
                    // restart the silence clocks or the fresh primary would
                    // immediately drop its whole table.
                    for (_, seen) in owner.last_neighbor_seen.iter_mut() {
                        *seen = now;
                    }
                    effects.push(Effect::Client(ClientEvent::PromotedToPrimary { region }));
                    // Tell neighbors the primary changed.
                    let entry = NeighborInfo::new(self.info, region);
                    for n in &owner.neighbors {
                        effects.push(Effect::Send {
                            to: n.primary.id(),
                            message: Message::NeighborUpdate {
                                info: entry.clone(),
                            },
                        });
                    }
                } else {
                    effects.push(Effect::Client(ClientEvent::PeerLost { region }));
                }
            }
        }
        // Primaries periodically refresh the dual peer's replica (store +
        // neighbor table) so a promoted secondary starts from fresh state.
        if owner.role == Role::Primary {
            if let Some(peer) = owner.peer {
                let period = self.config.heartbeat_interval.max(1);
                if (now / period).is_multiple_of(5) {
                    effects.push(Effect::Send {
                        to: peer.id(),
                        message: Message::SyncState {
                            store: Box::new(owner.store.clone()),
                            neighbors: owner.neighbors.clone(),
                        },
                    });
                }
            }
        }
        // Primaries heartbeat neighbor primaries (lower frequency is the
        // driver's choice of tick cadence; every tick here).
        if owner.role == Role::Primary {
            for n in &owner.neighbors {
                effects.push(Effect::Send {
                    to: n.primary.id(),
                    message: Message::Heartbeat {
                        info: self_entry.clone(),
                        index: my_index,
                    },
                });
            }
            // Drop neighbors that went silent (their secondary will
            // re-announce via its own promotion update).
            let timeout = self.config.neighbor_timeout;
            let silent: Vec<NodeId> = owner
                .last_neighbor_seen
                .iter()
                .filter(|(_, seen)| now.saturating_sub(*seen) > timeout && *seen > 0)
                .map(|(id, _)| *id)
                .collect();
            if !silent.is_empty() {
                // Coverage repair: a silent region whose owners (primary
                // *and* any secondary -- a live secondary would have
                // promoted and re-announced within the timeout) are gone
                // leaves a hole in the space. If the dead region is our
                // congruent sibling -- merging yields a rectangle -- and
                // we are the south/west sibling (a deterministic, purely
                // local tie-break so at most one claimant exists), absorb
                // it. Its data is lost (that is what the failover
                // experiment measures); coverage is restored.
                let dead: Vec<NeighborInfo> = owner
                    .neighbors
                    .iter()
                    .filter(|n| silent.contains(&n.primary.id()))
                    .cloned()
                    .collect();
                owner
                    .neighbors
                    .retain(|n| !silent.contains(&n.primary.id()));
                owner
                    .last_neighbor_seen
                    .retain(|(id, _)| !silent.contains(id));
                for gone in dead {
                    let mine = owner.region;
                    // Claim only as the *west* sibling: merge compatibility
                    // already forces equal y/height for a west-east pair,
                    // and at most one region can sit flush to the dead
                    // region's west edge with its exact extent -- so the
                    // claimant is globally unique without coordination. (A
                    // south sibling could also merge; letting both claim
                    // could overlap, so it does not.)
                    let claims = gone.region.merge(&mine).is_some()
                        && (mine.y() - gone.region.y()).abs() < 1e-9
                        && mine.x() < gone.region.x();
                    if !claims {
                        continue;
                    }
                    // Ring-check before absorbing: a promoted secondary we
                    // never learned about may own the region. Ask every
                    // current neighbor; absorb only if nobody knows a live
                    // owner by the deadline.
                    for n in &owner.neighbors {
                        effects.push(Effect::Send {
                            to: n.primary.id(),
                            message: Message::WhoOwns {
                                region: gone.region,
                            },
                        });
                    }
                    owner
                        .pending_claims
                        .push((gone, now + self.config.neighbor_timeout));
                }
            }
        }
        // Absorb pending claims whose ring-check came back empty.
        if owner.role == Role::Primary {
            let due: Vec<NeighborInfo> = owner
                .pending_claims
                .iter()
                .filter(|(_, deadline)| now >= *deadline)
                .map(|(gone, _)| gone.clone())
                .collect();
            owner.pending_claims.retain(|(_, deadline)| now < *deadline);
            for gone in due {
                let mine = owner.region;
                // Re-verify: shapes may have changed while waiting, and a
                // live overlapping entry means the region is owned.
                let still_claimable = gone.region.merge(&mine).is_some()
                    && (mine.y() - gone.region.y()).abs() < 1e-9
                    && mine.x() < gone.region.x()
                    && !owner
                        .neighbors
                        .iter()
                        .any(|n| n.region.intersects(&gone.region));
                if !still_claimable {
                    continue;
                }
                let merged = mine
                    .merge(&gone.region)
                    .expect("invariant: still_claimable re-verified the rectangles merge");
                owner.region = merged;
                let entry = NeighborInfo {
                    primary: self.info,
                    secondary: owner.peer,
                    region: merged,
                };
                // Growing the region only gains edge contact, so the
                // existing entries stay valid; announce the new shape.
                for n in &owner.neighbors {
                    effects.push(Effect::Send {
                        to: n.primary.id(),
                        message: Message::NeighborUpdate {
                            info: entry.clone(),
                        },
                    });
                }
            }
        }
        // Adaptation trigger (§2.4): a primary whose index exceeds √2×
        // the lowest neighbor index tries the cheapest applicable
        // mechanism — (a) steal a neighbor's stronger secondary when
        // half-full, (e) switch places with one when full.
        if self.config.balance_enabled
            && owner.role == Role::Primary
            && !owner.steal_in_flight
            && owner
                .ticks
                .is_multiple_of(self.config.stats_window_ticks.max(1))
        {
            if let Some(lowest) = owner.lowest_neighbor_index() {
                if owner.my_index > self.config.trigger_ratio * lowest && owner.my_index > 0.0 {
                    let my_cap = self.info.capacity();
                    let donor = owner
                        .neighbors
                        .iter()
                        .filter(|n| n.secondary.is_some_and(|s| s.capacity() > my_cap))
                        .min_by(|a, b| {
                            let ia = owner
                                .neighbor_indexes
                                .iter()
                                .find(|(id, _)| *id == a.primary.id())
                                .map(|(_, v)| *v)
                                .unwrap_or(f64::INFINITY);
                            let ib = owner
                                .neighbor_indexes
                                .iter()
                                .find(|(id, _)| *id == b.primary.id())
                                .map(|(_, v)| *v)
                                .unwrap_or(f64::INFINITY);
                            ia.partial_cmp(&ib)
                                .expect("invariant: workload indexes are finite (capacities are positive and finite)")
                                .then_with(|| a.primary.id().cmp(&b.primary.id()))
                        })
                        .map(|n| n.primary.id());
                    if let Some(donor) = donor {
                        owner.steal_in_flight = true;
                        effects.push(Effect::Send {
                            to: donor,
                            message: Message::StealSecondaryRequest {
                                requester: self.info,
                                index: owner.my_index,
                                swap: owner.peer.is_some(),
                            },
                        });
                    }
                }
            }
        }
        effects
    }

    /// Donor side of mechanisms (a)/(e): detach our secondary for the
    /// overloaded requester if the request still makes sense.
    fn on_steal_request(
        &mut self,
        now: u64,
        from: NodeId,
        requester: NodeInfo,
        index: f64,
        swap: bool,
    ) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        let deny = |from: NodeId| {
            vec![Effect::Send {
                to: from,
                message: Message::StealSecondaryDeny,
            }]
        };
        if owner.role != Role::Primary {
            return deny(from);
        }
        let Some(secondary) = owner.peer else {
            return deny(from);
        };
        // Only give up a secondary that actually helps (stronger than the
        // requester's primary), only if we are less loaded ourselves, and
        // only if the secondary has confirmed itself since installation —
        // granting away a peer that is still settling a hand-off of its
        // own forks region ownership.
        if secondary.capacity() <= requester.capacity()
            || owner.my_index >= index
            || !owner.peer_confirmed
        {
            return deny(from);
        }
        let donor_region = owner.region;
        if swap {
            // Mechanism (e): the requester becomes our new secondary.
            owner.peer = Some(requester);
            owner.last_peer_seen = now;
            owner.peer_confirmed = false;
        } else {
            // Mechanism (a): we are left half-full.
            owner.peer = None;
        }
        let mut effects = vec![
            Effect::Send {
                to: from,
                message: Message::StealSecondaryGrant {
                    secondary,
                    donor_region,
                    swap,
                },
            },
            // The detached secondary must not promote itself while the
            // hand-off is in flight.
            Effect::Send {
                to: secondary.id(),
                message: Message::Detached,
            },
        ];
        // Routing-table maintenance: our entry changed.
        let entry = NeighborInfo {
            primary: self.info,
            secondary: owner.peer,
            region: donor_region,
        };
        for n in &owner.neighbors {
            effects.push(Effect::Send {
                to: n.primary.id(),
                message: Message::NeighborUpdate {
                    info: entry.clone(),
                },
            });
        }
        effects
    }

    /// Requester side: install the stolen node as our region's primary.
    fn on_steal_grant(
        &mut self,
        now: u64,
        from: NodeId,
        secondary: NodeInfo,
        donor_region: Region,
        swap: bool,
    ) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        owner.steal_in_flight = false;
        let premise_holds = owner.role == Role::Primary
            && if swap {
                owner.peer.is_some()
            } else {
                owner.peer.is_none()
            };
        if !premise_holds {
            // Our situation changed between request and grant (a split, a
            // join, a promotion). The stolen node is detached from its
            // donor and MUST be placed somewhere or its stale self-view
            // eventually promotes into an overlap: run it through the
            // normal dual-peer placement as if it were a fresh joiner.
            return self.dual_peer_place(now, secondary);
        }
        let my_region = owner.region;
        let my_store = owner.store.clone();
        let my_neighbors = owner.neighbors.clone();
        let old_peer = owner.peer;
        let mut effects = Vec::new();
        let new_secondary = if swap { old_peer } else { Some(self.info) };
        effects.push(Effect::Send {
            to: secondary.id(),
            message: Message::TakeOverRegion {
                region: my_region,
                store: Box::new(my_store),
                neighbors: my_neighbors.clone(),
                new_secondary,
            },
        });
        effects.push(Effect::Client(ClientEvent::AdaptationExecuted {
            mechanism: if swap { 'e' } else { 'a' },
        }));
        if swap {
            // Mechanism (e): we take the stolen node's old place as the
            // donor's secondary.
            let donor_info = owner
                .neighbors
                .iter()
                .find(|n| n.primary.id() == from)
                .map(|n| n.primary)
                .unwrap_or(NodeInfo::new(
                    from,
                    donor_region.center(),
                    f64::MIN_POSITIVE,
                ));
            self.state = State::from(Owner::new(
                self.info.id(),
                donor_region,
                Role::Secondary,
                Some(donor_info),
                Vec::new(), // refreshed by the donor's periodic SyncState
                RegionStore::new(),
                now,
            ));
        } else {
            // Mechanism (a): we retire to secondary of our own region
            // under the stronger stolen node.
            owner.role = Role::Secondary;
            owner.peer = Some(secondary);
            owner.last_peer_seen = now;
        }
        effects
    }

    /// The stolen node becomes the primary of the requester's region.
    fn on_take_over_region(
        &mut self,
        now: u64,
        region: Region,
        store: RegionStore,
        neighbors: Vec<NeighborInfo>,
        new_secondary: Option<NodeInfo>,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        let entry = NeighborInfo {
            primary: self.info,
            secondary: new_secondary,
            region,
        };
        for n in &neighbors {
            effects.push(Effect::Send {
                to: n.primary.id(),
                message: Message::NeighborUpdate {
                    info: entry.clone(),
                },
            });
        }
        // Re-seat the inherited secondary under us. Without this, a
        // secondary inherited from the displaced primary keeps pointing
        // its peer link at the departed node, times it out, and promotes
        // into an ownership fork.
        if let Some(sec) = new_secondary {
            if sec.id() != self.info.id() {
                effects.push(Effect::Send {
                    to: sec.id(),
                    message: Message::JoinAsSecondary {
                        region,
                        primary: self.info,
                        store: Box::new(store.clone()),
                        neighbors: neighbors.clone(),
                    },
                });
            }
        }
        self.state = State::from(Owner::new(
            self.info.id(),
            region,
            Role::Primary,
            new_secondary,
            neighbors,
            store,
            now,
        ));
        effects.push(Effect::Client(ClientEvent::Joined {
            region,
            role: Role::Primary,
        }));
        effects
    }

    fn handle_message(&mut self, now: u64, from: NodeId, message: Message) -> Vec<Effect> {
        match message {
            Message::JoinRequest { joiner, hops } => self.on_join_request(now, joiner, hops),
            Message::JoinDirected { joiner } => self.on_join_directed(now, joiner),
            Message::JoinSplit {
                region,
                neighbors,
                store,
            } => self.on_join_split(now, region, neighbors, *store),
            Message::JoinAsSecondary {
                region,
                primary,
                store,
                neighbors,
            } => self.on_join_as_secondary(now, from, region, primary, *store, neighbors),
            Message::SplitTakeover {
                region,
                neighbors,
                store,
            } => self.on_split_takeover(now, region, neighbors, *store),
            Message::NeighborUpdate { info } => self.on_neighbor_update(now, info),
            Message::Query {
                query,
                query_id,
                reply_to,
                hops,
                fanout,
            } => self.on_query(now, query, query_id, reply_to, hops, fanout),
            Message::QueryReply { query_id, records } => {
                vec![Effect::Client(ClientEvent::QueryResults {
                    query_id,
                    records,
                })]
            }
            Message::Publish { record, hops } => self.on_publish(now, record, hops),
            Message::Subscribe { sub, hops, fanout } => self.on_subscribe(now, sub, hops, fanout),
            Message::Notify { record } => {
                vec![Effect::Client(ClientEvent::Notified { record })]
            }
            Message::Heartbeat { info, index } => self.on_heartbeat(now, from, info, index),
            Message::StealSecondaryRequest {
                requester,
                index,
                swap,
            } => self.on_steal_request(now, from, requester, index, swap),
            Message::StealSecondaryGrant {
                secondary,
                donor_region,
                swap,
            } => self.on_steal_grant(now, from, secondary, donor_region, swap),
            Message::StealSecondaryDeny => {
                if let State::Owner(owner) = &mut self.state {
                    owner.steal_in_flight = false;
                }
                Vec::new()
            }
            Message::TakeOverRegion {
                region,
                store,
                neighbors,
                new_secondary,
            } => self.on_take_over_region(now, region, *store, neighbors, new_secondary),
            Message::LeaveNotice => self.on_leave_notice(from),
            Message::Detached => self.on_detached(from),
            Message::WhoOwns { region } => self.on_who_owns(from, region),
            Message::OwnerIs { info } => self.on_neighbor_update(now, info),
            Message::MergeRegions {
                region,
                store,
                neighbors,
            } => self.on_merge_regions(now, region, *store, neighbors),
            Message::SyncState { store, neighbors } => self.on_sync_state(now, *store, neighbors),
        }
    }

    /// Greedy next hop toward `target` from this owner's neighbor table.
    fn greedy_next(owner: &Owner, target: Point) -> Option<NodeId> {
        // Compute each neighbor's sort key once up front; a comparator
        // that recomputes both sides' distances evaluates each key about
        // twice, and the center distance (with its sqrt) is the expensive
        // part.
        owner
            .neighbors
            .iter()
            .map(|n| {
                (
                    n.region.distance_to_point(target),
                    n.region.center().distance(target),
                    n.primary.id(),
                )
            })
            .min_by(|a, b| {
                a.partial_cmp(b)
                    .expect("invariant: distances are finite (regions and coords are finite)")
            })
            .map(|(_, _, id)| id)
    }

    fn covers(&self, owner: &Owner, p: Point) -> bool {
        self.space.region_covers(&owner.region, p)
    }

    fn on_join_request(&mut self, now: u64, joiner: NodeInfo, hops: u32) -> Vec<Effect> {
        let State::Owner(owner) = &self.state else {
            return Vec::new(); // not an owner: drop (bootstrap servers
                               // hand out owner nodes as entries)
        };
        if !self.covers(owner, joiner.coord()) {
            if hops >= self.config.max_hops {
                return Vec::new();
            }
            return match Self::greedy_next(owner, joiner.coord()) {
                Some(next) => vec![Effect::Send {
                    to: next,
                    message: Message::JoinRequest {
                        joiner,
                        hops: hops + 1,
                    },
                }],
                None => Vec::new(),
            };
        }
        match self.config.mode {
            EngineMode::Basic => self.accept_join_by_split(now, joiner),
            EngineMode::DualPeer => self.dual_peer_place(now, joiner),
        }
    }

    fn on_join_directed(&mut self, now: u64, joiner: NodeInfo) -> Vec<Effect> {
        let State::Owner(owner) = &self.state else {
            return Vec::new();
        };
        if owner.role != Role::Primary {
            return Vec::new();
        }
        if owner.peer.is_none() && !owner.steal_in_flight {
            self.accept_join_as_peer(now, joiner)
        } else if owner.peer.is_some() {
            // Filled up since the referral: split ourselves.
            self.split_with_peer_and_place(now, Some(joiner))
        } else {
            // Steal in flight: place the joiner like a fresh request so it
            // lands on a stable owner.
            self.dual_peer_place(now, joiner)
        }
    }

    /// Basic-mode acceptance: split the covering region, keep the half
    /// containing our coordinate, hand the other to the joiner.
    // audit: store-handoff
    fn accept_join_by_split(&mut self, now: u64, joiner: NodeInfo) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        if !crate::join::is_splittable(&owner.region) {
            // At the extent floor: refuse; the joiner will retry through
            // another entry (topology-level joins route around this).
            return Vec::new();
        }
        let (low, high) = owner.region.split_preferred();
        let keep_low =
            low.contains(self.info.coord()) || self.space.region_covers(&low, self.info.coord());
        let (kept, given) = if keep_low { (low, high) } else { (high, low) };
        let given_store = owner.store.split_for(&kept, &given);
        let old_neighbors = std::mem::take(&mut owner.neighbors);
        owner.region = kept;
        owner.last_neighbor_seen.clear();

        let mut joiner_neighbors = vec![NeighborInfo {
            primary: self.info,
            secondary: owner.peer,
            region: kept,
        }];
        let joiner_entry = NeighborInfo::new(joiner, given);
        let mut effects = Vec::new();
        for n in old_neighbors {
            if n.region.touches_edge(&given) {
                joiner_neighbors.push(n.clone());
            }
            // Tell every old neighbor about both new rectangles; they
            // upsert/drop by their own touch test.
            effects.push(Effect::Send {
                to: n.primary.id(),
                message: Message::NeighborUpdate {
                    info: NeighborInfo {
                        primary: self.info,
                        secondary: owner.peer,
                        region: kept,
                    },
                },
            });
            effects.push(Effect::Send {
                to: n.primary.id(),
                message: Message::NeighborUpdate {
                    info: joiner_entry.clone(),
                },
            });
            if n.region.touches_edge(&kept) {
                owner.last_neighbor_seen.push((n.primary.id(), now));
                owner.neighbors.push(n);
            }
        }
        owner.last_neighbor_seen.push((joiner.id(), now));
        owner.neighbors.push(joiner_entry);
        effects.push(Effect::Send {
            to: joiner.id(),
            message: Message::JoinSplit {
                region: given,
                neighbors: joiner_neighbors,
                store: Box::new(given_store),
            },
        });
        effects
    }

    /// Dual-peer placement probe (§2.3): among the covering region and its
    /// neighbors, fill the half-full region with the weakest owner; if all
    /// are full, split the one with the weakest primary.
    fn dual_peer_place(&mut self, now: u64, joiner: NodeInfo) -> Vec<Effect> {
        let State::Owner(owner) = &self.state else {
            return Vec::new();
        };
        // Half-full candidates: (capacity of sole owner, who). A node
        // with a steal in flight excludes itself: accepting a peer now
        // would break the premise of the grant already under way.
        let mut best_half: Option<(f64, Option<NodeId>)> = None; // None = me
        if owner.peer.is_none() && !owner.steal_in_flight {
            best_half = Some((self.info.capacity(), None));
        }
        for n in &owner.neighbors {
            if n.secondary.is_none() {
                let cap = n.primary.capacity();
                if best_half.as_ref().is_none_or(|(c, _)| cap < *c) {
                    best_half = Some((cap, Some(n.primary.id())));
                }
            }
        }
        if let Some((_, who)) = best_half {
            return match who {
                None => self.accept_join_as_peer(now, joiner),
                Some(target) => vec![Effect::Send {
                    to: target,
                    message: Message::JoinDirected { joiner },
                }],
            };
        }
        // All full: split where the primary is weakest.
        let mut victim: Option<(f64, Option<NodeId>)> = Some((self.info.capacity(), None));
        for n in &owner.neighbors {
            let cap = n.primary.capacity();
            if victim.as_ref().is_none_or(|(c, _)| cap < *c) {
                victim = Some((cap, Some(n.primary.id())));
            }
        }
        match victim.expect("invariant: victim starts as Some(self) and is only replaced") {
            (_, None) => self.split_with_peer_and_place(now, Some(joiner)),
            (_, Some(target)) => vec![Effect::Send {
                to: target,
                message: Message::JoinDirected { joiner },
            }],
        }
    }

    /// Accepts `joiner` as this region's dual peer. If the joiner is
    /// stronger, it takes the primary role (§2.3 "Node Join").
    fn accept_join_as_peer(&mut self, now: u64, joiner: NodeInfo) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        owner.peer = Some(joiner);
        owner.last_peer_seen = now;
        owner.peer_confirmed = false;
        let joiner_is_primary = joiner.capacity() > self.info.capacity();
        if joiner_is_primary {
            owner.role = Role::Secondary;
        }
        let (primary_info, secondary_info) = if joiner_is_primary {
            (joiner, self.info)
        } else {
            (self.info, joiner)
        };
        let entry = NeighborInfo {
            primary: primary_info,
            secondary: Some(secondary_info),
            region: owner.region,
        };
        let mut effects = vec![Effect::Send {
            to: joiner.id(),
            message: Message::JoinAsSecondary {
                region: owner.region,
                primary: primary_info,
                store: Box::new(owner.store.clone()),
                neighbors: owner.neighbors.clone(),
            },
        }];
        for n in &owner.neighbors {
            effects.push(Effect::Send {
                to: n.primary.id(),
                message: Message::NeighborUpdate {
                    info: entry.clone(),
                },
            });
        }
        effects
    }

    /// Splits a full region between its dual peers; if `joiner` is given,
    /// it is then directed to the weaker half's owner as secondary.
    // audit: store-handoff
    fn split_with_peer_and_place(&mut self, now: u64, joiner: Option<NodeInfo>) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        let Some(peer) = owner.peer else {
            return Vec::new(); // nothing to split with
        };
        if !crate::join::is_splittable(&owner.region) {
            return Vec::new(); // at the extent floor: refuse
        }
        let (low, high) = owner.region.split_preferred();
        let keep_low =
            low.contains(self.info.coord()) || self.space.region_covers(&low, self.info.coord());
        let (kept, given) = if keep_low { (low, high) } else { (high, low) };
        let given_store = owner.store.split_for(&kept, &given);
        let old_neighbors = std::mem::take(&mut owner.neighbors);
        owner.region = kept;
        owner.peer = None;
        owner.role = Role::Primary;
        owner.last_peer_seen = 0;
        owner.last_neighbor_seen.clear();

        let mut peer_neighbors = vec![NeighborInfo::new(self.info, kept)];
        let peer_entry = NeighborInfo::new(peer, given);
        let my_entry = NeighborInfo::new(self.info, kept);
        let mut effects = Vec::new();
        for n in old_neighbors {
            if n.region.touches_edge(&given) {
                peer_neighbors.push(n.clone());
            }
            effects.push(Effect::Send {
                to: n.primary.id(),
                message: Message::NeighborUpdate {
                    info: my_entry.clone(),
                },
            });
            effects.push(Effect::Send {
                to: n.primary.id(),
                message: Message::NeighborUpdate {
                    info: peer_entry.clone(),
                },
            });
            if n.region.touches_edge(&kept) {
                owner.last_neighbor_seen.push((n.primary.id(), now));
                owner.neighbors.push(n);
            }
        }
        owner.last_neighbor_seen.push((peer.id(), now));
        owner.neighbors.push(peer_entry);
        effects.push(Effect::Send {
            to: peer.id(),
            message: Message::SplitTakeover {
                region: given,
                neighbors: peer_neighbors,
                store: Box::new(given_store),
            },
        });
        if let Some(joiner) = joiner {
            // Pair the joiner with the weaker half-owner.
            let weaker_is_me = self.info.capacity() <= peer.capacity();
            if weaker_is_me {
                effects.extend(self.accept_join_as_peer(now, joiner));
            } else {
                effects.push(Effect::Send {
                    to: peer.id(),
                    message: Message::JoinDirected { joiner },
                });
            }
        }
        effects
    }

    fn on_join_split(
        &mut self,
        now: u64,
        region: Region,
        neighbors: Vec<NeighborInfo>,
        store: RegionStore,
    ) -> Vec<Effect> {
        if let State::Owner(owner) = &self.state {
            if owner.role == Role::Primary {
                // Stale placement: we already own a region exclusively; a
                // reordered join reply must not silently orphan it.
                return Vec::new();
            }
        }
        self.state = State::from(Owner::new(
            self.info.id(),
            region,
            Role::Primary,
            None,
            neighbors,
            store,
            now,
        ));
        vec![Effect::Client(ClientEvent::Joined {
            region,
            role: Role::Primary,
        })]
    }

    fn on_join_as_secondary(
        &mut self,
        now: u64,
        from: NodeId,
        region: Region,
        primary: NodeInfo,
        store: RegionStore,
        neighbors: Vec<NeighborInfo>,
    ) -> Vec<Effect> {
        if let State::Owner(owner) = &self.state {
            if owner.role == Role::Primary {
                // Stale placement: a primary must never be re-seated by a
                // reordered join reply (its region would be orphaned). A
                // secondary may be re-seated — its old region stays with
                // its old primary.
                return Vec::new();
            }
        }
        // If `primary` names us, the sender handed us the primary role
        // (we were the stronger joiner); otherwise we are the secondary.
        let we_are_primary = primary.id() == self.info.id();
        let peer = if we_are_primary {
            // The sender (previous owner) is our secondary now.
            neighbors
                .iter()
                .find(|n| n.primary.id() == from)
                .map(|n| n.primary)
        } else {
            Some(primary)
        };
        let role = if we_are_primary {
            Role::Primary
        } else {
            Role::Secondary
        };
        // Fall back to reconstructing the peer from the sender id if the
        // neighbor list does not carry it (normal case for the
        // stronger-joiner path: the sender built the list before the
        // swap). The driver only needs the id for addressing.
        let peer = peer.or(Some(NodeInfo::new(
            from,
            region.center(),
            f64::MIN_POSITIVE,
        )));
        self.state = State::from(Owner::new(
            self.info.id(),
            region,
            role,
            peer,
            neighbors,
            store,
            now,
        ));
        vec![Effect::Client(ClientEvent::Joined { region, role })]
    }

    fn on_split_takeover(
        &mut self,
        now: u64,
        region: Region,
        neighbors: Vec<NeighborInfo>,
        store: RegionStore,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        let entry = NeighborInfo::new(self.info, region);
        for n in &neighbors {
            effects.push(Effect::Send {
                to: n.primary.id(),
                message: Message::NeighborUpdate {
                    info: entry.clone(),
                },
            });
        }
        self.state = State::from(Owner::new(
            self.info.id(),
            region,
            Role::Primary,
            None,
            neighbors,
            store,
            now,
        ));
        effects.push(Effect::Client(ClientEvent::Joined {
            region,
            role: Role::Primary,
        }));
        effects
    }

    fn on_neighbor_update(&mut self, now: u64, info: NeighborInfo) -> Vec<Effect> {
        if info.primary.id() == self.info.id() {
            return Vec::new();
        }
        if let State::Owner(owner) = &mut self.state {
            let region = owner.region;
            owner.upsert_neighbor(region, info, now);
        }
        Vec::new()
    }

    fn on_heartbeat(
        &mut self,
        now: u64,
        from: NodeId,
        info: NeighborInfo,
        index: f64,
    ) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        if owner.peer.is_some_and(|p| p.id() == from) {
            owner.last_peer_seen = now;
            owner.peer_confirmed = true;
            return Vec::new();
        }
        if info.primary.id() != self.info.id() {
            let region = owner.region;
            owner.upsert_neighbor(region, info, now);
            if index.is_finite() && index >= 0.0 {
                owner.record_neighbor_index(from, index);
            }
        }
        Vec::new()
    }

    fn on_sync_state(
        &mut self,
        _now: u64,
        store: RegionStore,
        neighbors: Vec<NeighborInfo>,
    ) -> Vec<Effect> {
        if let State::Owner(owner) = &mut self.state {
            if owner.role == Role::Secondary {
                owner.store = store;
                owner.last_neighbor_seen =
                    neighbors.iter().map(|n| (n.primary.id(), _now)).collect();
                owner.neighbors = neighbors;
            }
        }
        Vec::new()
    }

    fn handle_user_query(&mut self, now: u64, query: LocationQuery) -> Vec<Effect> {
        let me = self.info.id();
        self.next_query_id += 1;
        let query_id = self.next_query_id;
        self.route_or_execute_query(now, query, query_id, me, 0)
    }

    fn on_query(
        &mut self,
        now: u64,
        query: LocationQuery,
        query_id: u64,
        reply_to: NodeId,
        hops: u32,
        fanout: bool,
    ) -> Vec<Effect> {
        if fanout {
            // Flood delivery over the regions overlapping the query
            // rectangle: answer locally, then re-forward to overlapping
            // neighbors. The (issuer, query id) dedup key keeps the flood
            // from looping; hops bound its depth.
            let State::Owner(owner) = &mut self.state else {
                return Vec::new();
            };
            if !owner.first_sight((reply_to, query_id)) {
                return Vec::new();
            }
            let records: Vec<LocationRecord> = owner
                .store
                .query(&query, now)
                .into_iter()
                .cloned()
                .collect();
            owner.served += 1.0;
            let mut effects = vec![Effect::Send {
                to: reply_to,
                message: Message::QueryReply { query_id, records },
            }];
            if hops < self.config.max_hops {
                let area = query.area();
                for n in &owner.neighbors {
                    if n.region.intersects(&area) {
                        effects.push(Effect::Send {
                            to: n.primary.id(),
                            message: Message::Query {
                                query: query.clone(),
                                query_id,
                                reply_to,
                                hops: hops + 1,
                                fanout: true,
                            },
                        });
                    }
                }
            }
            return effects;
        }
        self.route_or_execute_query(now, query, query_id, reply_to, hops)
    }

    fn route_or_execute_query(
        &mut self,
        now: u64,
        query: LocationQuery,
        query_id: u64,
        reply_to: NodeId,
        hops: u32,
    ) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        let target = query.target();
        // A secondary covering the target hands the request to its
        // primary — the primary "handles all the requests" (§2.3).
        if owner.role == Role::Secondary {
            if let Some(peer) = owner.peer {
                return vec![Effect::Send {
                    to: peer.id(),
                    message: Message::Query {
                        query,
                        query_id,
                        reply_to,
                        hops,
                        fanout: false,
                    },
                }];
            }
        }
        if !self.space.region_covers(&owner.region, target) {
            if hops >= self.config.max_hops {
                return Vec::new();
            }
            let next = owner
                .neighbors
                .iter()
                .map(|n| (n.region.distance_to_point(target), n.primary.id()))
                .min_by(|a, b| {
                    a.partial_cmp(b)
                        .expect("invariant: distances are finite (regions and coords are finite)")
                })
                .map(|(_, id)| id);
            return match next {
                Some(next) => vec![Effect::Send {
                    to: next,
                    message: Message::Query {
                        query,
                        query_id,
                        reply_to,
                        hops: hops + 1,
                        fanout: false,
                    },
                }],
                None => Vec::new(),
            };
        }
        // Executor: answer locally and fan out to overlapping neighbors.
        owner.first_sight((reply_to, query_id));
        let records: Vec<LocationRecord> = owner
            .store
            .query(&query, now)
            .into_iter()
            .cloned()
            .collect();
        owner.served += 1.0;
        let mut effects = Vec::new();
        let area = query.area();
        for n in &owner.neighbors {
            if n.region.intersects(&area) {
                effects.push(Effect::Send {
                    to: n.primary.id(),
                    message: Message::Query {
                        query: query.clone(),
                        query_id,
                        reply_to,
                        hops: hops + 1,
                        fanout: true,
                    },
                });
            }
        }
        if reply_to == self.info.id() {
            effects.push(Effect::Client(ClientEvent::QueryResults {
                query_id,
                records,
            }));
        } else {
            effects.push(Effect::Send {
                to: reply_to,
                message: Message::QueryReply { query_id, records },
            });
        }
        effects
    }

    fn handle_user_publish(&mut self, now: u64, record: LocationRecord) -> Vec<Effect> {
        self.on_publish(now, record, 0)
    }

    fn on_publish(&mut self, now: u64, record: LocationRecord, hops: u32) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        // Secondaries hand requests to their primary (§2.3).
        if owner.role == Role::Secondary {
            if let Some(peer) = owner.peer {
                return vec![Effect::Send {
                    to: peer.id(),
                    message: Message::Publish { record, hops },
                }];
            }
        }
        let target = record.position();
        if !self.space.region_covers(&owner.region, target) {
            if hops >= self.config.max_hops {
                return Vec::new();
            }
            let next = owner
                .neighbors
                .iter()
                .map(|n| (n.region.distance_to_point(target), n.primary.id()))
                .min_by(|a, b| {
                    a.partial_cmp(b)
                        .expect("invariant: distances are finite (regions and coords are finite)")
                })
                .map(|(_, id)| id);
            return match next {
                Some(next) => vec![Effect::Send {
                    to: next,
                    message: Message::Publish {
                        record,
                        hops: hops + 1,
                    },
                }],
                None => Vec::new(),
            };
        }
        let me = self.info.id();
        let notified = owner.store.publish(record.clone(), now);
        owner.served += 1.0;
        let mut effects: Vec<Effect> = Vec::new();
        for subscriber in notified {
            if subscriber == me {
                effects.push(Effect::Client(ClientEvent::Notified {
                    record: record.clone(),
                }));
            } else {
                effects.push(Effect::Send {
                    to: subscriber,
                    message: Message::Notify {
                        record: record.clone(),
                    },
                });
            }
        }
        // Replicate to the dual peer.
        if owner.role == Role::Primary {
            if let Some(peer) = owner.peer {
                effects.push(Effect::Send {
                    to: peer.id(),
                    message: Message::SyncState {
                        store: Box::new(owner.store.clone()),
                        neighbors: owner.neighbors.clone(),
                    },
                });
            }
        }
        effects
    }

    fn handle_user_subscribe(&mut self, now: u64, sub: Subscription) -> Vec<Effect> {
        self.on_subscribe(now, sub, 0, false)
    }

    fn on_subscribe(
        &mut self,
        now: u64,
        sub: Subscription,
        hops: u32,
        fanout: bool,
    ) -> Vec<Effect> {
        let State::Owner(owner) = &mut self.state else {
            return Vec::new();
        };
        // Secondaries hand requests to their primary (§2.3). Fan-out
        // copies are addressed to primaries, so only the non-fanout path
        // needs the redirect.
        if owner.role == Role::Secondary && !fanout {
            if let Some(peer) = owner.peer {
                return vec![Effect::Send {
                    to: peer.id(),
                    message: Message::Subscribe { sub, hops, fanout },
                }];
            }
        }
        let target = sub.area().center();
        if fanout || self.space.region_covers(&owner.region, target) {
            // Flood the subscription over every region overlapping its
            // area (the paper's region-2-and-3 example, generalized), with
            // the same dedup discipline as query fan-out.
            if !owner.first_sight((sub.subscriber(), sub.id())) {
                return Vec::new();
            }
            owner.store.subscribe(sub.clone(), now);
            let mut effects = Vec::new();
            if hops < self.config.max_hops {
                let area = sub.area();
                for n in &owner.neighbors {
                    if n.region.intersects(&area) {
                        effects.push(Effect::Send {
                            to: n.primary.id(),
                            message: Message::Subscribe {
                                sub: sub.clone(),
                                hops: hops + 1,
                                fanout: true,
                            },
                        });
                    }
                }
            }
            return effects;
        }
        if hops >= self.config.max_hops {
            return Vec::new();
        }
        match Self::greedy_next(owner, target) {
            Some(next) => vec![Effect::Send {
                to: next,
                message: Message::Subscribe {
                    sub,
                    hops: hops + 1,
                    fanout: false,
                },
            }],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64, x: f64, y: f64, cap: f64) -> NodeInfo {
        NodeInfo::new(NodeId::new(id), Point::new(x, y), cap)
    }

    fn engine(info: NodeInfo, mode: EngineMode) -> NodeEngine {
        NodeEngine::new(
            info,
            Space::paper_evaluation(),
            EngineConfig {
                mode,
                ..EngineConfig::default()
            },
        )
    }

    fn sends(effects: &[Effect]) -> Vec<(NodeId, &Message)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((*to, message)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn bootstrap_owns_whole_space() {
        let mut e = engine(node(1, 10.0, 10.0, 10.0), EngineMode::Basic);
        let fx = e.handle(0, Input::BootstrapAsFirst);
        assert!(e.is_owner());
        let view = e.owner_view().unwrap();
        assert_eq!(view.region, Space::paper_evaluation().bounds());
        assert_eq!(view.role, Role::Primary);
        assert!(matches!(fx[0], Effect::Client(ClientEvent::Joined { .. })));
    }

    #[test]
    fn basic_join_splits_and_hands_half() {
        let mut first = engine(node(1, 10.0, 10.0, 10.0), EngineMode::Basic);
        first.handle(0, Input::BootstrapAsFirst);
        let joiner = node(2, 50.0, 50.0, 10.0);
        let fx = first.handle(
            1,
            Input::Message {
                from: joiner.id(),
                message: Message::JoinRequest { joiner, hops: 0 },
            },
        );
        let sent = sends(&fx);
        let split = sent
            .iter()
            .find_map(|(to, m)| match m {
                Message::JoinSplit { region, .. } if *to == joiner.id() => Some(*region),
                _ => None,
            })
            .expect("join split sent");
        // Joiner's half covers its coordinate; first keeps its own.
        let space = Space::paper_evaluation();
        assert!(space.region_covers(&split, joiner.coord()));
        let view = first.owner_view().unwrap();
        assert!(space.region_covers(&view.region, Point::new(10.0, 10.0)));
        assert_eq!(view.neighbors.len(), 1);
        assert_eq!(view.neighbors[0].region, split);
    }

    #[test]
    fn joiner_installs_state_from_join_split() {
        let mut j = engine(node(2, 50.0, 50.0, 10.0), EngineMode::Basic);
        j.handle(
            0,
            Input::Join {
                entry: NodeId::new(1),
            },
        );
        let region = Region::new(0.0, 32.0, 64.0, 32.0);
        let fx = j.handle(
            1,
            Input::Message {
                from: NodeId::new(1),
                message: Message::JoinSplit {
                    region,
                    neighbors: vec![NeighborInfo::new(
                        node(1, 10.0, 10.0, 10.0),
                        Region::new(0.0, 0.0, 64.0, 32.0),
                    )],
                    store: Box::new(RegionStore::new()),
                },
            },
        );
        assert!(j.is_owner());
        assert_eq!(j.owner_view().unwrap().region, region);
        assert!(matches!(fx[0], Effect::Client(ClientEvent::Joined { .. })));
    }

    #[test]
    fn dual_join_fills_half_full_region() {
        let mut first = engine(node(1, 10.0, 10.0, 10.0), EngineMode::DualPeer);
        first.handle(0, Input::BootstrapAsFirst);
        let joiner = node(2, 50.0, 50.0, 5.0);
        let fx = first.handle(
            1,
            Input::Message {
                from: joiner.id(),
                message: Message::JoinRequest { joiner, hops: 0 },
            },
        );
        let sent = sends(&fx);
        assert!(sent.iter().any(|(to, m)| {
            *to == joiner.id()
                && matches!(m, Message::JoinAsSecondary { primary, .. } if primary.id() == NodeId::new(1))
        }));
        let view = first.owner_view().unwrap();
        assert_eq!(view.role, Role::Primary);
        assert_eq!(view.peer.unwrap().id(), joiner.id());
    }

    #[test]
    fn stronger_dual_joiner_takes_primary() {
        let mut first = engine(node(1, 10.0, 10.0, 10.0), EngineMode::DualPeer);
        first.handle(0, Input::BootstrapAsFirst);
        let joiner = node(2, 50.0, 50.0, 1000.0);
        let fx = first.handle(
            1,
            Input::Message {
                from: joiner.id(),
                message: Message::JoinRequest { joiner, hops: 0 },
            },
        );
        assert_eq!(first.owner_view().unwrap().role, Role::Secondary);
        let sent = sends(&fx);
        assert!(sent.iter().any(|(to, m)| {
            *to == joiner.id()
                && matches!(m, Message::JoinAsSecondary { primary, .. } if primary.id() == joiner.id())
        }));
    }

    #[test]
    fn full_region_splits_on_third_join() {
        let mut first = engine(node(1, 10.0, 10.0, 10.0), EngineMode::DualPeer);
        first.handle(0, Input::BootstrapAsFirst);
        let second = node(2, 50.0, 50.0, 5.0);
        first.handle(
            1,
            Input::Message {
                from: second.id(),
                message: Message::JoinRequest {
                    joiner: second,
                    hops: 0,
                },
            },
        );
        let third = node(3, 40.0, 40.0, 5.0);
        let fx = first.handle(
            2,
            Input::Message {
                from: third.id(),
                message: Message::JoinRequest {
                    joiner: third,
                    hops: 0,
                },
            },
        );
        let sent = sends(&fx);
        // The peer receives the other half.
        assert!(sent
            .iter()
            .any(|(to, m)| *to == second.id() && matches!(m, Message::SplitTakeover { .. })));
        // The region shrank.
        let view = first.owner_view().unwrap();
        assert!(view.region.area() < Space::paper_evaluation().bounds().area());
    }

    #[test]
    fn join_request_forwards_toward_coordinate() {
        let mut e = engine(node(1, 10.0, 10.0, 10.0), EngineMode::Basic);
        // Install as owner of the south half with a northern neighbor
        // (placement accepted because the engine is still joining).
        e.handle(
            0,
            Input::Join {
                entry: NodeId::new(99),
            },
        );
        let north = Region::new(0.0, 32.0, 64.0, 32.0);
        let neighbor = node(9, 50.0, 50.0, 10.0);
        e.handle(
            1,
            Input::Message {
                from: neighbor.id(),
                message: Message::JoinSplit {
                    region: Region::new(0.0, 0.0, 64.0, 32.0),
                    neighbors: vec![NeighborInfo::new(neighbor, north)],
                    store: Box::new(RegionStore::new()),
                },
            },
        );
        let joiner = node(3, 40.0, 60.0, 10.0); // in the north half
        let fx = e.handle(
            2,
            Input::Message {
                from: joiner.id(),
                message: Message::JoinRequest { joiner, hops: 0 },
            },
        );
        let sent = sends(&fx);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, neighbor.id());
        assert!(matches!(sent[0].1, Message::JoinRequest { hops: 1, .. }));
    }

    #[test]
    fn publish_stores_and_notifies_subscriber() {
        let mut e = engine(node(1, 10.0, 10.0, 10.0), EngineMode::Basic);
        e.handle(0, Input::BootstrapAsFirst);
        let sub = Subscription::new(1, Region::new(0.0, 0.0, 20.0, 20.0), NodeId::new(42), 1_000);
        e.handle(1, Input::UserSubscribe { sub });
        let record = LocationRecord::new(1, "traffic", Point::new(5.0, 5.0), b"jam".to_vec());
        let fx = e.handle(2, Input::UserPublish { record });
        let sent = sends(&fx);
        assert!(sent
            .iter()
            .any(|(to, m)| *to == NodeId::new(42) && matches!(m, Message::Notify { .. })));
        assert_eq!(e.owner_view().unwrap().records, 1);
    }

    #[test]
    fn local_query_returns_results_to_client() {
        let mut e = engine(node(1, 10.0, 10.0, 10.0), EngineMode::Basic);
        e.handle(0, Input::BootstrapAsFirst);
        let record = LocationRecord::new(1, "traffic", Point::new(5.0, 5.0), vec![]);
        e.handle(1, Input::UserPublish { record });
        let q = LocationQuery::new(Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(1));
        let fx = e.handle(2, Input::UserQuery { query: q });
        let results = fx.iter().find_map(|f| match f {
            Effect::Client(ClientEvent::QueryResults { records, .. }) => Some(records.len()),
            _ => None,
        });
        assert_eq!(results, Some(1));
    }

    #[test]
    fn secondary_promotes_after_peer_timeout() {
        let mut e = engine(node(2, 50.0, 50.0, 5.0), EngineMode::DualPeer);
        // Install as secondary directly.
        e.handle(
            0,
            Input::Message {
                from: NodeId::new(1),
                message: Message::JoinAsSecondary {
                    region: Space::paper_evaluation().bounds(),
                    primary: node(1, 10.0, 10.0, 10.0),
                    store: Box::new(RegionStore::new()),
                    neighbors: Vec::new(),
                },
            },
        );
        assert_eq!(e.owner_view().unwrap().role, Role::Secondary);
        // Heartbeats keep it secondary.
        let fx = e.handle(100, Input::Tick);
        assert!(sends(&fx)
            .iter()
            .any(|(to, m)| *to == NodeId::new(1) && matches!(m, Message::Heartbeat { .. })));
        // Silence beyond the timeout promotes it.
        let fx = e.handle(10_000, Input::Tick);
        assert_eq!(e.owner_view().unwrap().role, Role::Primary);
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::Client(ClientEvent::PromotedToPrimary { .. }))));
    }

    #[test]
    fn primary_drops_silent_secondary() {
        let mut e = engine(node(1, 10.0, 10.0, 10.0), EngineMode::DualPeer);
        e.handle(0, Input::BootstrapAsFirst);
        let joiner = node(2, 50.0, 50.0, 5.0);
        e.handle(
            1,
            Input::Message {
                from: joiner.id(),
                message: Message::JoinRequest { joiner, hops: 0 },
            },
        );
        assert!(e.owner_view().unwrap().peer.is_some());
        let fx = e.handle(10_000, Input::Tick);
        assert!(e.owner_view().unwrap().peer.is_none());
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::Client(ClientEvent::PeerLost { .. }))));
    }

    #[test]
    fn neighbor_updates_upsert_and_drop_by_touch() {
        let mut e = engine(node(1, 10.0, 10.0, 10.0), EngineMode::Basic);
        // Install as owner of the south half via JoinSplit while joining.
        e.handle(
            0,
            Input::Join {
                entry: NodeId::new(99),
            },
        );
        e.handle(
            1,
            Input::Message {
                from: NodeId::new(99),
                message: Message::JoinSplit {
                    region: Region::new(0.0, 0.0, 64.0, 32.0),
                    neighbors: Vec::new(),
                    store: Box::new(RegionStore::new()),
                },
            },
        );
        // Touching entry is added.
        let touching =
            NeighborInfo::new(node(5, 1.0, 40.0, 10.0), Region::new(0.0, 32.0, 32.0, 32.0));
        e.handle(
            2,
            Input::Message {
                from: NodeId::new(5),
                message: Message::NeighborUpdate { info: touching },
            },
        );
        assert_eq!(e.owner_view().unwrap().neighbors.len(), 1);
        // Non-touching replacement for the same node is dropped entirely.
        let far = NeighborInfo::new(
            node(5, 1.0, 60.0, 10.0),
            Region::new(32.0, 48.0, 32.0, 16.0),
        );
        e.handle(
            3,
            Input::Message {
                from: NodeId::new(5),
                message: Message::NeighborUpdate { info: far },
            },
        );
        assert_eq!(e.owner_view().unwrap().neighbors.len(), 0);
    }

    /// Builds a primary owning the south half with one neighbor entry.
    fn south_owner(cap: f64, neighbor: NeighborInfo) -> NodeEngine {
        let mut e = engine(node(1, 10.0, 10.0, cap), EngineMode::DualPeer);
        e.handle(
            0,
            Input::Message {
                from: NodeId::new(99),
                message: Message::JoinSplit {
                    region: Region::new(0.0, 0.0, 64.0, 32.0),
                    neighbors: vec![neighbor],
                    store: Box::new(RegionStore::new()),
                },
            },
        );
        e
    }

    fn north_entry(primary_cap: f64, secondary_cap: Option<f64>) -> NeighborInfo {
        NeighborInfo {
            primary: node(7, 10.0, 50.0, primary_cap),
            secondary: secondary_cap.map(|c| node(8, 12.0, 52.0, c)),
            region: Region::new(0.0, 32.0, 64.0, 32.0),
        }
    }

    fn drive_load(e: &mut NodeEngine, queries: usize, from_tick: u64) -> Vec<Effect> {
        // Serve queries inside the south half, then tick through a stats
        // window so the index updates and the trigger runs. Neighbor
        // heartbeats are replayed between ticks so the entry is not
        // dropped as silent.
        for i in 0..queries {
            e.handle(
                from_tick + i as u64,
                Input::Message {
                    from: NodeId::new(50),
                    message: Message::Query {
                        query: LocationQuery::new(Region::new(5.0, 5.0, 1.0, 1.0), NodeId::new(50)),
                        query_id: 1,
                        reply_to: NodeId::new(50),
                        hops: 1,
                        fanout: false,
                    },
                },
            );
        }
        let interval = e.config().heartbeat_interval;
        let view = e.owner_view().expect("drive_load on an owner");
        let neighbors = view.neighbors.clone();
        let peer = view.peer;
        let region = view.region;
        let mut out = Vec::new();
        for k in 1..=e.config().stats_window_ticks {
            let now = from_tick + k * interval;
            for n in &neighbors {
                e.handle(
                    now - 1,
                    Input::Message {
                        from: n.primary.id(),
                        message: Message::Heartbeat {
                            info: n.clone(),
                            index: 0.0,
                        },
                    },
                );
            }
            // Keep the dual peer alive across the synthetic time jump.
            if let Some(peer) = peer {
                e.handle(
                    now - 1,
                    Input::Message {
                        from: peer.id(),
                        message: Message::Heartbeat {
                            info: NeighborInfo {
                                primary: e.info(),
                                secondary: Some(peer),
                                region,
                            },
                            index: 0.0,
                        },
                    },
                );
            }
            out = e.handle(now, Input::Tick);
        }
        out
    }

    #[test]
    fn overloaded_primary_requests_steal() {
        let mut e = south_owner(1.0, north_entry(10.0, Some(100.0)));
        // Report the neighbor as idle.
        e.handle(
            1,
            Input::Message {
                from: NodeId::new(7),
                message: Message::Heartbeat {
                    info: north_entry(10.0, Some(100.0)),
                    index: 0.0,
                },
            },
        );
        let fx = drive_load(&mut e, 20, 2);
        let steal = sends(&fx).iter().any(|(to, m)| {
            *to == NodeId::new(7) && matches!(m, Message::StealSecondaryRequest { swap: false, .. })
        });
        assert!(steal, "no steal request in {fx:?}");
    }

    #[test]
    fn no_steal_without_useful_secondary() {
        // Neighbor's secondary is weaker than us: nothing to gain.
        let mut e = south_owner(50.0, north_entry(10.0, Some(5.0)));
        e.handle(
            1,
            Input::Message {
                from: NodeId::new(7),
                message: Message::Heartbeat {
                    info: north_entry(10.0, Some(5.0)),
                    index: 0.0,
                },
            },
        );
        let fx = drive_load(&mut e, 20, 2);
        assert!(
            !sends(&fx)
                .iter()
                .any(|(_, m)| matches!(m, Message::StealSecondaryRequest { .. })),
            "stole a useless secondary"
        );
    }

    #[test]
    fn donor_grants_and_denies_correctly() {
        // Donor: primary (cap 10) with a secondary (cap 5) that is still
        // stronger than the cap-1 requester.
        let mut donor = engine(node(7, 10.0, 50.0, 10.0), EngineMode::DualPeer);
        donor.handle(0, Input::BootstrapAsFirst);
        let strong = node(8, 12.0, 52.0, 5.0);
        donor.handle(
            1,
            Input::Message {
                from: strong.id(),
                message: Message::JoinRequest {
                    joiner: strong,
                    hops: 0,
                },
            },
        );
        assert!(donor.owner_view().unwrap().peer.is_some());
        // The secondary confirms itself with a heartbeat (an unconfirmed
        // peer is never granted away).
        donor.handle(
            2,
            Input::Message {
                from: strong.id(),
                message: Message::Heartbeat {
                    info: NeighborInfo {
                        primary: node(7, 10.0, 50.0, 10.0),
                        secondary: Some(strong),
                        region: Space::paper_evaluation().bounds(),
                    },
                    index: 0.0,
                },
            },
        );
        // A hot, weaker requester is granted.
        let fx = donor.handle(
            3,
            Input::Message {
                from: NodeId::new(1),
                message: Message::StealSecondaryRequest {
                    requester: node(1, 10.0, 10.0, 1.0),
                    index: 5.0,
                    swap: false,
                },
            },
        );
        assert!(sends(&fx).iter().any(|(to, m)| *to == NodeId::new(1)
            && matches!(m, Message::StealSecondaryGrant { secondary, .. } if secondary.id() == strong.id())));
        assert!(
            donor.owner_view().unwrap().peer.is_none(),
            "secondary detached"
        );
        // A second request must be denied (no secondary left).
        let fx = donor.handle(
            3,
            Input::Message {
                from: NodeId::new(2),
                message: Message::StealSecondaryRequest {
                    requester: node(2, 11.0, 11.0, 1.0),
                    index: 5.0,
                    swap: false,
                },
            },
        );
        assert!(sends(&fx)
            .iter()
            .any(|(to, m)| *to == NodeId::new(2) && matches!(m, Message::StealSecondaryDeny)));
    }

    #[test]
    fn donor_refuses_when_hotter_than_requester() {
        let mut donor = engine(node(7, 10.0, 50.0, 10.0), EngineMode::DualPeer);
        donor.handle(0, Input::BootstrapAsFirst);
        let strong = node(8, 12.0, 52.0, 5.0);
        donor.handle(
            1,
            Input::Message {
                from: strong.id(),
                message: Message::JoinRequest {
                    joiner: strong,
                    hops: 0,
                },
            },
        );
        // Make the donor hot.
        drive_load(&mut donor, 50, 2);
        let fx = donor.handle(
            100_000,
            Input::Message {
                from: NodeId::new(1),
                message: Message::StealSecondaryRequest {
                    requester: node(1, 10.0, 10.0, 1.0),
                    index: 0.001, // cooler than the donor
                    swap: false,
                },
            },
        );
        assert!(sends(&fx)
            .iter()
            .any(|(_, m)| matches!(m, Message::StealSecondaryDeny)));
        assert!(
            donor.owner_view().unwrap().peer.is_some(),
            "kept its secondary"
        );
    }

    #[test]
    fn grant_hands_region_over_and_demotes_requester() {
        let mut e = south_owner(1.0, north_entry(10.0, Some(100.0)));
        // Pretend we asked already (set in-flight through the real path).
        e.handle(
            1,
            Input::Message {
                from: NodeId::new(7),
                message: Message::Heartbeat {
                    info: north_entry(10.0, Some(100.0)),
                    index: 0.0,
                },
            },
        );
        drive_load(&mut e, 20, 2);
        let stolen = node(8, 12.0, 52.0, 100.0);
        let fx = e.handle(
            50_000,
            Input::Message {
                from: NodeId::new(7),
                message: Message::StealSecondaryGrant {
                    secondary: stolen,
                    donor_region: Region::new(0.0, 32.0, 64.0, 32.0),
                    swap: false,
                },
            },
        );
        // The stolen node receives the region with us as its secondary.
        let handed = sends(&fx).iter().any(|(to, m)| {
            *to == stolen.id()
                && matches!(m, Message::TakeOverRegion { new_secondary: Some(s), .. } if s.id() == NodeId::new(1))
        });
        assert!(handed, "no hand-off in {fx:?}");
        let view = e.owner_view().unwrap();
        assert_eq!(view.role, Role::Secondary);
        assert_eq!(view.peer.unwrap().id(), stolen.id());
        assert!(fx.iter().any(|f| matches!(
            f,
            Effect::Client(ClientEvent::AdaptationExecuted { mechanism: 'a' })
        )));
    }

    #[test]
    fn take_over_region_installs_primary_and_notifies() {
        let mut e = engine(node(8, 12.0, 52.0, 100.0), EngineMode::DualPeer);
        let region = Region::new(0.0, 0.0, 64.0, 32.0);
        let neighbors = vec![north_entry(10.0, None)];
        let fx = e.handle(
            5,
            Input::Message {
                from: NodeId::new(1),
                message: Message::TakeOverRegion {
                    region,
                    store: Box::new(RegionStore::new()),
                    neighbors,
                    new_secondary: Some(node(1, 10.0, 10.0, 1.0)),
                },
            },
        );
        let view = e.owner_view().unwrap();
        assert_eq!(view.role, Role::Primary);
        assert_eq!(view.region, region);
        assert_eq!(view.peer.unwrap().id(), NodeId::new(1));
        // Neighbors get the routing update.
        assert!(sends(&fx)
            .iter()
            .any(|(to, m)| *to == NodeId::new(7) && matches!(m, Message::NeighborUpdate { .. })));
    }

    #[test]
    fn deny_clears_in_flight_so_retries_happen() {
        let mut e = south_owner(1.0, north_entry(10.0, Some(100.0)));
        e.handle(
            1,
            Input::Message {
                from: NodeId::new(7),
                message: Message::Heartbeat {
                    info: north_entry(10.0, Some(100.0)),
                    index: 0.0,
                },
            },
        );
        let fx = drive_load(&mut e, 20, 2);
        assert!(sends(&fx)
            .iter()
            .any(|(_, m)| matches!(m, Message::StealSecondaryRequest { .. })));
        // Deny, keep the node hot: the next window must retry.
        e.handle(
            60_000,
            Input::Message {
                from: NodeId::new(7),
                message: Message::StealSecondaryDeny,
            },
        );
        let fx = drive_load(&mut e, 20, 70_000);
        assert!(
            sends(&fx)
                .iter()
                .any(|(_, m)| matches!(m, Message::StealSecondaryRequest { .. })),
            "no retry after deny"
        );
    }
}
