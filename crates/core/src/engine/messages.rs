//! Protocol messages exchanged between GeoGrid nodes.
//!
//! §2.2 distinguishes management messages (join, split, heartbeat,
//! routing-table maintenance) from application messages (queries,
//! publications, notifications) — both appear here; the application ones
//! carry the geographic coordinates GeoGrid routing requires.

use geogrid_geometry::Region;

use crate::service::{LocationQuery, LocationRecord, RegionStore, Subscription};
use crate::{NodeId, NodeInfo};

/// What one node knows about a neighbor region: its rectangle and owners.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborInfo {
    /// The neighbor's primary owner.
    pub primary: NodeInfo,
    /// The neighbor's secondary owner, if full.
    pub secondary: Option<NodeInfo>,
    /// The neighbor's region.
    pub region: Region,
}

impl NeighborInfo {
    /// Creates an entry for a half-full region.
    pub fn new(primary: NodeInfo, region: Region) -> Self {
        Self {
            primary,
            secondary: None,
            region,
        }
    }
}

/// A GeoGrid protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A joining node's request, routed geographically toward the
    /// joiner's own coordinate.
    JoinRequest {
        /// The joining node.
        joiner: NodeInfo,
        /// Hops taken so far (loop guard).
        hops: u32,
    },
    /// Direct hand-off of a join to a specific owner chosen by the
    /// covering region's dual-peer placement probe.
    JoinDirected {
        /// The joining node.
        joiner: NodeInfo,
    },
    /// "You now own this region" — sent to a joiner after a split, with
    /// the neighbor list and the partition of the store.
    JoinSplit {
        /// The joiner's new region.
        region: Region,
        /// Neighbor entries relevant to that region.
        neighbors: Vec<NeighborInfo>,
        /// Records/subscriptions belonging to the region.
        store: Box<RegionStore>,
    },
    /// "You are now the secondary owner of my region."
    JoinAsSecondary {
        /// The shared region.
        region: Region,
        /// The primary owner (the sender).
        primary: NodeInfo,
        /// Replica of the primary's store.
        store: Box<RegionStore>,
        /// The primary's neighbor table, replicated so a promoted
        /// secondary can take over routing immediately.
        neighbors: Vec<NeighborInfo>,
    },
    /// Split hand-off to the region's own secondary: it becomes the
    /// primary of the other half.
    SplitTakeover {
        /// The half the secondary now owns.
        region: Region,
        /// Neighbor entries relevant to that half.
        neighbors: Vec<NeighborInfo>,
        /// The store partition for that half.
        store: Box<RegionStore>,
    },
    /// Routing-table maintenance: upsert this region entry (keyed by
    /// rectangle) in your neighbor list — or drop it if no longer
    /// adjacent to you.
    NeighborUpdate {
        /// The updated entry.
        info: NeighborInfo,
    },
    /// A location query being routed/fanned out.
    Query {
        /// The query.
        query: LocationQuery,
        /// Correlation id assigned by the issuing engine; echoed in every
        /// [`Message::QueryReply`] so clients can gather the fan-out's
        /// partial results.
        query_id: u64,
        /// Node to send results to.
        reply_to: NodeId,
        /// Hops taken so far (loop guard).
        hops: u32,
        /// True once the executor region was reached and the message is
        /// fanning out to overlapping neighbors (no more greedy routing).
        fanout: bool,
    },
    /// Records answering a query.
    QueryReply {
        /// Correlation id from the query.
        query_id: u64,
        /// Matching records.
        records: Vec<LocationRecord>,
    },
    /// A publication being routed to the region covering its position.
    Publish {
        /// The record.
        record: LocationRecord,
        /// Hops taken so far (loop guard).
        hops: u32,
    },
    /// A subscription being routed to the region covering its area center.
    Subscribe {
        /// The subscription.
        sub: Subscription,
        /// Hops taken so far (loop guard).
        hops: u32,
        /// True once the covering region was reached and the message is
        /// fanning out to neighbors overlapping the subscribed area.
        fanout: bool,
    },
    /// Notification of a publication matching a subscription.
    Notify {
        /// The matching record.
        record: LocationRecord,
    },
    /// Liveness probe. Primaries heartbeat their secondary at high
    /// frequency and their neighbor primaries at lower frequency (§2.3).
    /// Doubles as the periodic workload-statistics exchange of §2.4:
    /// "each node periodically exchanges workload statistic information
    /// with its neighbors".
    Heartbeat {
        /// The sender's current view of itself (region + role), letting
        /// receivers refresh routing entries cheaply.
        info: NeighborInfo,
        /// The sender's measured workload index (served load over
        /// capacity) for the last statistics window.
        index: f64,
    },
    /// Load-balance adaptation request (mechanisms (a) and (e) of §2.4):
    /// the overloaded sender asks the receiver — a neighbor primary
    /// holding a secondary stronger than the sender — to give that
    /// secondary up.
    StealSecondaryRequest {
        /// The overloaded requester.
        requester: NodeInfo,
        /// The requester's workload index (the receiver may deny if it is
        /// itself hotter).
        index: f64,
        /// True for mechanism (e): the requester will take the donated
        /// secondary's place as the receiver's new secondary (a swap);
        /// false for mechanism (a): the requester retires to secondary of
        /// its own region.
        swap: bool,
    },
    /// The donor grants the steal: it has detached its secondary.
    StealSecondaryGrant {
        /// The detached node (the requester must now hand its region's
        /// primaryship to it).
        secondary: NodeInfo,
        /// The donor's region (for `swap = true`, the requester becomes
        /// this region's secondary).
        donor_region: Region,
        /// Echo of the request's `swap` flag.
        swap: bool,
    },
    /// The donor refuses (no secondary anymore, or it is hotter itself).
    StealSecondaryDeny,
    /// Graceful departure notice from a secondary to its primary (§2.3
    /// "Node Departure": the region is simply marked half-full).
    LeaveNotice,
    /// A departing sole owner hands its region to the neighbor whose
    /// rectangle re-forms a rectangle with it; the receiver absorbs
    /// region and store.
    MergeRegions {
        /// The departing owner's region.
        region: Region,
        /// Its store contents.
        store: Box<RegionStore>,
        /// Its neighbor table (the absorber unions it with its own).
        neighbors: Vec<NeighborInfo>,
    },
    /// From a primary to its secondary: "you have been granted away to an
    /// overloaded region; stop considering yourself my secondary and wait
    /// for the hand-off." Without this, the detached secondary would time
    /// out its silent ex-primary and promote itself — forking ownership.
    Detached,
    /// Coverage ring-check: "does anyone know a live owner of this
    /// region?" Sent to all neighbors before a silent region is absorbed,
    /// so a promoted secondary the asker never learned about (its
    /// promotion announcement went to a stale table) can be discovered
    /// through third parties.
    WhoOwns {
        /// The region whose ownership is in question.
        region: Region,
    },
    /// Answer to [`Message::WhoOwns`]: a live entry for (part of) the
    /// asked region.
    OwnerIs {
        /// The known owner entry.
        info: NeighborInfo,
    },
    /// Hand-off of a region's primaryship to a (just stolen) node: the
    /// receiver becomes the primary of `region`.
    TakeOverRegion {
        /// The region to own.
        region: Region,
        /// The region's store.
        store: Box<RegionStore>,
        /// The region's neighbor table.
        neighbors: Vec<NeighborInfo>,
        /// The new secondary serving under the receiver, if any (for
        /// mechanism (a), the retiring requester).
        new_secondary: Option<NodeInfo>,
    },
    /// Primary → secondary state replication.
    SyncState {
        /// Full store snapshot.
        store: Box<RegionStore>,
        /// Current neighbor table.
        neighbors: Vec<NeighborInfo>,
    },
}

impl Message {
    /// A short label for tracing and per-kind statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::JoinRequest { .. } => "join_request",
            Message::JoinDirected { .. } => "join_directed",
            Message::JoinSplit { .. } => "join_split",
            Message::JoinAsSecondary { .. } => "join_as_secondary",
            Message::SplitTakeover { .. } => "split_takeover",
            Message::NeighborUpdate { .. } => "neighbor_update",
            Message::Query { .. } => "query",
            Message::QueryReply { .. } => "query_reply",
            Message::Publish { .. } => "publish",
            Message::Subscribe { .. } => "subscribe",
            Message::Notify { .. } => "notify",
            Message::Heartbeat { .. } => "heartbeat",
            Message::SyncState { .. } => "sync_state",
            Message::StealSecondaryRequest { .. } => "steal_secondary_request",
            Message::StealSecondaryGrant { .. } => "steal_secondary_grant",
            Message::StealSecondaryDeny => "steal_secondary_deny",
            Message::TakeOverRegion { .. } => "take_over_region",
            Message::LeaveNotice => "leave_notice",
            Message::MergeRegions { .. } => "merge_regions",
            Message::Detached => "detached",
            Message::WhoOwns { .. } => "who_owns",
            Message::OwnerIs { .. } => "owner_is",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogrid_geometry::Point;

    #[test]
    fn kinds_are_distinct_for_core_messages() {
        let info = NodeInfo::new(NodeId::new(1), Point::new(1.0, 1.0), 10.0);
        let m1 = Message::JoinRequest {
            joiner: info,
            hops: 0,
        };
        let m2 = Message::Heartbeat {
            info: NeighborInfo::new(info, Region::new(0.0, 0.0, 1.0, 1.0)),
            index: 0.5,
        };
        assert_ne!(m1.kind(), m2.kind());
        assert_eq!(m1.kind(), "join_request");
    }
}
