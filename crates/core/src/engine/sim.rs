//! Running [`NodeEngine`]s on the deterministic simulator.
//!
//! [`SimNode`] adapts the sans-io engine to `geogrid-simnet`'s
//! [`Process`] interface; [`SimHarness`] builds whole simulated GeoGrid
//! deployments — the message-level counterpart of
//! [`builder::NetworkBuilder`](crate::builder::NetworkBuilder), used to
//! check that the distributed protocol reaches the same structural
//! invariants as the centrally modelled topology.

use geogrid_geometry::{Point, Space};
use geogrid_simnet::{Addr, Context, Process, SimConfig, SimTime, Simulation};

use crate::engine::{ClientEvent, Effect, EngineConfig, Input, Message, NodeEngine};
use crate::{NodeId, NodeInfo};

/// Timer id used for the engine's periodic tick.
const TICK_TIMER: u64 = 1;

/// A simulated GeoGrid node: one engine plus its collected client events.
///
/// The simulator address and the GeoGrid [`NodeId`] are kept numerically
/// equal, so effects translate 1:1 into simulator sends.
#[derive(Debug)]
pub struct SimNode {
    engine: NodeEngine,
    /// Client events observed so far (tests inspect these).
    pub events: Vec<ClientEvent>,
    /// Pending local inputs injected before the process started.
    startup: Vec<Input>,
    ticking: bool,
}

impl SimNode {
    /// Creates a simulated node around `engine`, queueing `startup`
    /// inputs (e.g. [`Input::BootstrapAsFirst`] or [`Input::Join`]) to run
    /// at process start.
    pub fn new(engine: NodeEngine, startup: Vec<Input>) -> Self {
        Self {
            engine,
            events: Vec::new(),
            startup,
            ticking: true,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &NodeEngine {
        &self.engine
    }

    /// Queues a local input to be handled at the next delivery to this
    /// node (used by tests to inject user requests mid-run: the input is
    /// processed immediately when the harness calls
    /// [`SimHarness::inject`]).
    fn apply_effects(&mut self, ctx: &mut Context<'_, Message>, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, message } => {
                    ctx.send(Addr::from_node(to), message);
                }
                Effect::Client(event) => self.events.push(event),
            }
        }
    }
}

/// Extension trait gluing [`Addr`] and [`NodeId`] together (they are kept
/// numerically identical in simulated deployments).
pub trait AddrExt {
    /// The simulator address for a GeoGrid node id.
    fn from_node(id: NodeId) -> Addr;
    /// The GeoGrid node id for a simulator address.
    fn to_node(self) -> NodeId;
}

impl AddrExt for Addr {
    fn from_node(id: NodeId) -> Addr {
        // Simulation::add_process allocates sequentially from 0; the
        // harness registers nodes in the same order it allocates ids.
        Addr::from_raw(id.as_u64())
    }

    fn to_node(self) -> NodeId {
        NodeId::new(self.as_u64())
    }
}

impl Process for SimNode {
    type Msg = Message;

    fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
        let now = ctx.now().as_micros() / 1_000;
        let startup = std::mem::take(&mut self.startup);
        for input in startup {
            let effects = self.engine.handle(now, input);
            self.apply_effects(ctx, effects);
        }
        if self.ticking {
            ctx.set_timer(
                SimTime::from_millis(self.engine.config().heartbeat_interval),
                TICK_TIMER,
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Message>, from: Addr, msg: Message) {
        let now = ctx.now().as_micros() / 1_000;
        let effects = self.engine.handle(
            now,
            Input::Message {
                from: from.to_node(),
                message: msg,
            },
        );
        self.apply_effects(ctx, effects);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, timer: u64) {
        if timer != TICK_TIMER {
            return;
        }
        let now = ctx.now().as_micros() / 1_000;
        let effects = self.engine.handle(now, Input::Tick);
        self.apply_effects(ctx, effects);
        if self.ticking {
            ctx.set_timer(
                SimTime::from_millis(self.engine.config().heartbeat_interval),
                TICK_TIMER,
            );
        }
    }
}

/// Builds and drives whole simulated GeoGrid networks.
///
/// # Examples
///
/// ```
/// use geogrid_core::engine::sim::SimHarness;
/// use geogrid_core::engine::{EngineConfig, EngineMode};
/// use geogrid_geometry::{Point, Space};
///
/// let mut h = SimHarness::new(Space::paper_evaluation(), EngineConfig::default(), 7);
/// h.bootstrap(Point::new(10.0, 10.0), 10.0);
/// h.join(Point::new(50.0, 50.0), 100.0);
/// h.settle();
/// assert_eq!(h.owner_count(), 2);
/// ```
#[derive(Debug)]
pub struct SimHarness {
    space: Space,
    config: EngineConfig,
    sim: Simulation<SimNode>,
    addrs: Vec<Addr>,
}

impl SimHarness {
    /// Creates a harness over `space` with the given engine config and
    /// simulation seed.
    pub fn new(space: Space, config: EngineConfig, seed: u64) -> Self {
        Self {
            space,
            config,
            sim: Simulation::new(SimConfig::default(), seed),
            addrs: Vec::new(),
        }
    }

    /// Adds the first node, owning the whole space.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn bootstrap(&mut self, coord: Point, capacity: f64) -> NodeId {
        assert!(self.addrs.is_empty(), "bootstrap exactly once");
        self.spawn(coord, capacity, vec![Input::BootstrapAsFirst])
    }

    /// Adds a node that joins through the first node as entry.
    ///
    /// # Panics
    ///
    /// Panics if the network was never bootstrapped.
    pub fn join(&mut self, coord: Point, capacity: f64) -> NodeId {
        assert!(!self.addrs.is_empty(), "bootstrap first");
        let entry = self.addrs[0].to_node();
        self.spawn(coord, capacity, vec![Input::Join { entry }])
    }

    fn spawn(&mut self, coord: Point, capacity: f64, startup: Vec<Input>) -> NodeId {
        let id = NodeId::new(self.addrs.len() as u64);
        let info = NodeInfo::new(id, coord, capacity);
        let engine = NodeEngine::new(info, self.space, self.config);
        let addr = self.sim.add_process(SimNode::new(engine, startup));
        assert_eq!(
            addr.as_u64(),
            id.as_u64(),
            "process address must equal node id"
        );
        self.addrs.push(addr);
        id
    }

    /// Runs the simulation until quiescent (bounded), letting joins,
    /// updates, and heartbeats settle. Heartbeat timers re-arm forever, so
    /// this advances a fixed horizon instead: one simulated second.
    pub fn settle(&mut self) {
        let deadline = self.sim.now() + SimTime::from_secs(1);
        self.sim.run_until(deadline, 5_000_000);
    }

    /// Runs the simulation for `ms` simulated milliseconds.
    pub fn run_for(&mut self, ms: u64) {
        let deadline = self.sim.now() + SimTime::from_millis(ms);
        self.sim.run_until(deadline, 5_000_000);
    }

    /// Injects a local input into node `id` and processes it immediately
    /// (outside the message flow — models the co-located client).
    pub fn inject(&mut self, id: NodeId, input: Input) {
        // Deliver through a self-addressed message-free path: run the
        // engine directly and replay effects through the simulator.
        let addr = self.addrs[id.as_u64() as usize];
        let now = self.sim.now().as_micros() / 1_000;
        let Some(node) = self.sim.process_mut(addr) else {
            return;
        };
        let effects = node.engine.handle(now, input);
        let mut outgoing = Vec::new();
        for effect in effects {
            match effect {
                Effect::Send { to, message } => outgoing.push((to, message)),
                Effect::Client(event) => node.events.push(event),
            }
        }
        for (to, message) in outgoing {
            self.sim.post(addr, Addr::from_node(to), message);
        }
    }

    /// Crashes a node without warning.
    pub fn crash(&mut self, id: NodeId) {
        self.sim.crash(self.addrs[id.as_u64() as usize]);
    }

    /// Number of live nodes currently owning (or co-owning) a region.
    pub fn owner_count(&self) -> usize {
        self.addrs
            .iter()
            .filter_map(|&a| self.sim.process(a))
            .filter(|n| n.engine.is_owner())
            .count()
    }

    /// Snapshot of every live owner's view, ordered by node id.
    pub fn owner_views(&self) -> Vec<(NodeId, crate::engine::OwnerView)> {
        self.addrs
            .iter()
            .filter_map(|&a| {
                let node = self.sim.process(a)?;
                let view = node.engine.owner_view()?;
                Some((a.to_node(), view))
            })
            .collect()
    }

    /// Client events observed by node `id` so far.
    pub fn events_of(&self, id: NodeId) -> &[ClientEvent] {
        self.sim
            .process(self.addrs[id.as_u64() as usize])
            .map(|n| n.events.as_slice())
            .unwrap_or(&[])
    }

    /// Message statistics from the underlying simulator.
    pub fn stats(&self) -> geogrid_simnet::SimStats {
        self.sim.stats()
    }

    /// The simulated space.
    pub fn space(&self) -> Space {
        self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineMode;
    use crate::topology::Role;
    use geogrid_geometry::Region;

    fn harness(mode: EngineMode, seed: u64) -> SimHarness {
        SimHarness::new(
            Space::paper_evaluation(),
            EngineConfig {
                mode,
                ..EngineConfig::default()
            },
            seed,
        )
    }

    /// Deterministic pseudo-random coordinate sequence.
    fn coords(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let x = ((i as f64 + 1.0) * 0.754877666).fract() * 63.0 + 0.5;
                let y = ((i as f64 + 1.0) * 0.569840296).fract() * 63.0 + 0.5;
                Point::new(x, y)
            })
            .collect()
    }

    /// The primary regions of a settled network must tile the space.
    fn assert_tiles(views: &[(NodeId, crate::engine::OwnerView)], space: Space) {
        let primaries: Vec<Region> = views
            .iter()
            .filter(|(_, v)| v.role == Role::Primary)
            .map(|(_, v)| v.region)
            .collect();
        let area: f64 = primaries.iter().map(Region::area).sum();
        assert!(
            (area - space.bounds().area()).abs() < 1e-6,
            "primary regions cover {area}, space is {}",
            space.bounds().area()
        );
        for (i, a) in primaries.iter().enumerate() {
            for b in primaries.iter().skip(i + 1) {
                assert!(!a.intersects(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn basic_network_converges_to_tiling() {
        let mut h = harness(EngineMode::Basic, 1);
        let pts = coords(16);
        h.bootstrap(pts[0], 10.0);
        for p in &pts[1..] {
            h.join(*p, 10.0);
            h.run_for(200); // let each join finish before the next
        }
        h.settle();
        assert_eq!(h.owner_count(), 16);
        let views = h.owner_views();
        assert_tiles(&views, h.space());
    }

    #[test]
    fn dual_network_pairs_owners() {
        let mut h = harness(EngineMode::DualPeer, 2);
        let pts = coords(12);
        h.bootstrap(pts[0], 10.0);
        for (i, p) in pts[1..].iter().enumerate() {
            h.join(*p, if i % 2 == 0 { 100.0 } else { 1.0 });
            h.run_for(200);
        }
        h.settle();
        assert_eq!(h.owner_count(), 12);
        let views = h.owner_views();
        assert_tiles(&views, h.space());
        // Every secondary's peer is a primary of the same region.
        for (_, v) in &views {
            if v.role == Role::Secondary {
                let peer = v.peer.expect("secondary has a peer");
                let partner = views.iter().find(|(id, _)| *id == peer.id());
                if let Some((_, pv)) = partner {
                    assert_eq!(pv.region, v.region);
                    assert_eq!(pv.role, Role::Primary);
                }
            }
        }
        // Fewer primary regions than nodes (pairs formed).
        let primaries = views
            .iter()
            .filter(|(_, v)| v.role == Role::Primary)
            .count();
        assert!(primaries < 12, "no pairing happened");
    }

    #[test]
    fn failover_promotes_secondary_and_keeps_tiling() {
        let mut h = harness(EngineMode::DualPeer, 3);
        let pts = coords(6);
        h.bootstrap(pts[0], 10.0);
        for p in &pts[1..] {
            h.join(*p, 10.0);
            h.run_for(200);
        }
        h.settle();
        // Find a primary with a peer and crash it.
        let victim = h
            .owner_views()
            .into_iter()
            .find(|(_, v)| v.role == Role::Primary && v.peer.is_some())
            .map(|(id, _)| id)
            .expect("a full region exists");
        h.crash(victim);
        h.run_for(3_000); // several heartbeat timeouts
        let views = h.owner_views();
        assert_tiles(&views, h.space());
        // Someone reported a promotion.
        let promoted = views.iter().any(|(id, _)| {
            h.events_of(*id)
                .iter()
                .any(|e| matches!(e, ClientEvent::PromotedToPrimary { .. }))
        });
        assert!(promoted, "no promotion observed");
    }

    #[test]
    fn publish_query_and_notify_flow_end_to_end() {
        use crate::service::{LocationQuery, LocationRecord, Subscription};
        let mut h = harness(EngineMode::Basic, 4);
        let pts = coords(8);
        h.bootstrap(pts[0], 10.0);
        for p in &pts[1..] {
            h.join(*p, 10.0);
            h.run_for(200);
        }
        h.settle();
        let subscriber = NodeId::new(3);
        let publisher = NodeId::new(5);
        let asker = NodeId::new(7);
        let spot = Point::new(20.0, 20.0);
        // Subscribe around the spot, publish at it, query it.
        h.inject(
            subscriber,
            Input::UserSubscribe {
                sub: Subscription::new(
                    1,
                    Region::new(spot.x - 2.0, spot.y - 2.0, 4.0, 4.0),
                    subscriber,
                    1_000_000,
                ),
            },
        );
        h.run_for(500);
        h.inject(
            publisher,
            Input::UserPublish {
                record: LocationRecord::new(1, "traffic", spot, b"jam".to_vec()),
            },
        );
        h.run_for(500);
        let notified = h
            .events_of(subscriber)
            .iter()
            .any(|e| matches!(e, ClientEvent::Notified { .. }));
        assert!(notified, "subscriber never notified");
        h.inject(
            asker,
            Input::UserQuery {
                query: LocationQuery::new(Region::new(spot.x - 1.0, spot.y - 1.0, 2.0, 2.0), asker),
            },
        );
        h.run_for(500);
        let got = h
            .events_of(asker)
            .iter()
            .any(|e| matches!(e, ClientEvent::QueryResults { records, .. } if !records.is_empty()));
        assert!(got, "query returned nothing");
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed: u64| {
            let mut h = harness(EngineMode::DualPeer, seed);
            let pts = coords(10);
            h.bootstrap(pts[0], 10.0);
            for p in &pts[1..] {
                h.join(*p, 10.0);
                h.run_for(200);
            }
            h.settle();
            let mut views: Vec<(u64, Region)> = h
                .owner_views()
                .into_iter()
                .map(|(id, v)| (id.as_u64(), v.region))
                .collect();
            views.sort_by_key(|(id, _)| *id);
            views
        };
        assert_eq!(build(7), build(7));
    }
}
