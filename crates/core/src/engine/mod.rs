//! The sans-io per-node protocol engine.
//!
//! [`NodeEngine`] is the GeoGrid middleware one proxy node runs: a pure
//! state machine that consumes [`Input`]s (protocol messages, timer ticks,
//! local user requests) and emits [`Effect`]s (messages to send, events for
//! the local user). It owns no sockets and no clock, so the identical code
//! runs under the deterministic simulator
//! ([`crate::engine::sim`]) and under the tokio transport
//! (`geogrid-transport`).
//!
//! The engine implements the distributed version of what
//! [`Topology`](crate::Topology) models centrally: geographic join with
//! region split, dual-peer placement, greedy query routing with fan-out,
//! publish/subscribe delivery, primary→secondary replication, heartbeats,
//! and fail-over promotion.

pub mod messages;
mod node;
pub mod sim;

pub use messages::{Message, NeighborInfo};
pub use node::{ClientEvent, Effect, EngineConfig, EngineMode, Input, NodeEngine, OwnerView};
