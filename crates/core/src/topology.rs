//! The authoritative model of a GeoGrid network.
//!
//! A [`Topology`] holds the complete partition of the space into regions,
//! the owner assignment of every region (primary plus optional secondary —
//! the paper's *dual peer*), and the neighbor graph derived from edge
//! contact. All structural operations of the paper are methods here:
//! region split on join, merge, secondary placement/removal, primary
//! promotion, and the ownership swaps the adaptation mechanisms perform.
//!
//! The topology is the single source of truth for experiments and for the
//! adaptation engine; the per-node protocol [`engine`](crate::engine)
//! maintains a distributed version of the same state and is tested against
//! this model.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, PoisonError, RwLock};

use geogrid_geometry::{Point, Region, Space};
use geogrid_marks::hot_path;

use crate::audit::{Violation, ViolationKind};
use crate::snapshot::{SnapshotCell, TopologySnapshot, TopologyView};
use crate::{CoreError, NodeId, NodeInfo, RegionId};

/// The role a node holds in the region it co-owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Handles all requests mapped to the region.
    Primary,
    /// Holds replicas and takes over when the primary departs or fails.
    Secondary,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Primary => write!(f, "primary"),
            Role::Secondary => write!(f, "secondary"),
        }
    }
}

/// One region slot: geometry, owners, and adjacency.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEntry {
    region: Region,
    primary: NodeId,
    secondary: Option<NodeId>,
    neighbors: Vec<RegionId>,
}

impl RegionEntry {
    /// The rectangle this slot owns.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The primary owner.
    pub fn primary(&self) -> NodeId {
        self.primary
    }

    /// The secondary owner, if the region is *full* (dual peer present).
    pub fn secondary(&self) -> Option<NodeId> {
        self.secondary
    }

    /// Whether the region has a dual peer.
    pub fn is_full(&self) -> bool {
        self.secondary.is_some()
    }

    /// Ids of edge-adjacent regions.
    pub fn neighbors(&self) -> &[RegionId] {
        &self.neighbors
    }

    /// Containment test honoring the space-boundary adjustment (see
    /// [`Space::region_covers`]).
    pub fn covers(&self, p: Point, space: Space) -> bool {
        space.region_covers(&self.region, p)
    }
}

/// Cells per axis of the [`GridIndex`]. 128×128 keeps the expected bucket
/// occupancy at one region even for the largest evaluated networks (2¹⁴
/// regions) while the whole index stays a few hundred kilobytes.
pub(crate) const GRID_DIM: usize = 128;

/// Incrementally-maintained uniform-grid spatial index over the live
/// regions.
///
/// The space is bucketed into [`GRID_DIM`]² equal cells; each cell lists
/// every region whose **closed** rectangle overlaps it. Insertion uses the
/// closed rectangle `[x, east] × [y, north]` so that any point a region can
/// cover — under the half-open rule, the `EDGE_EPS`-exact shared edges, or
/// the space-boundary closure of [`Space::region_covers`] — falls in a cell
/// that lists the region (floor is monotone, so `p.x ∈ [x, east]` implies
/// `col(p) ∈ [col(x), col(east)]`).
///
/// The index is kept exact through every mutation path: region geometry
/// only ever changes in [`Topology::bootstrap`], [`Topology::split_region`]
/// and [`Topology::merge_regions`] (ownership swaps move nodes, not
/// rectangles), and each of those updates the affected cells in place.
/// [`Topology::validate`] re-derives the expected cell span of every live
/// region and fails on any stale or missing entry.
#[derive(Debug, Clone, Default)]
struct GridIndex {
    origin_x: f64,
    origin_y: f64,
    cell_w: f64,
    cell_h: f64,
    /// Row-major `GRID_DIM × GRID_DIM` buckets; empty until the topology
    /// is given a space.
    cells: Vec<Vec<RegionId>>,
    /// Total entries across all buckets. Lets the audit verify "no stale
    /// or duplicate entry anywhere" in O(regions): if every live region is
    /// present throughout its span *and* the total matches the sum of span
    /// sizes, no cell can hold anything extra — the full 16k-cell reverse
    /// sweep only runs when one of those cheap checks fails.
    entries: usize,
}

impl GridIndex {
    fn new(space: Space) -> Self {
        let b = space.bounds();
        Self {
            origin_x: b.x(),
            origin_y: b.y(),
            cell_w: b.width() / GRID_DIM as f64,
            cell_h: b.height() / GRID_DIM as f64,
            cells: vec![Vec::new(); GRID_DIM * GRID_DIM],
            entries: 0,
        }
    }

    /// Column of `x`, clamped into range (`as usize` saturates below zero).
    fn col(&self, x: f64) -> usize {
        (((x - self.origin_x) / self.cell_w) as usize).min(GRID_DIM - 1)
    }

    fn row(&self, y: f64) -> usize {
        (((y - self.origin_y) / self.cell_h) as usize).min(GRID_DIM - 1)
    }

    /// Closed rectangle of cell `i` (row-major, as numbered by
    /// [`Self::cell_of`]). Every point mapping into the cell lies within
    /// this rectangle (boundary points map to an adjacent cell whose
    /// rectangle also touches them), which is what lets the routing
    /// cache bound neighbor distances over a whole destination cell.
    fn cell_rect(&self, i: usize) -> Region {
        let (row, col) = (i / GRID_DIM, i % GRID_DIM);
        Region::new(
            self.origin_x + col as f64 * self.cell_w,
            self.origin_y + row as f64 * self.cell_h,
            self.cell_w,
            self.cell_h,
        )
    }

    /// Inclusive `(col_lo, col_hi, row_lo, row_hi)` span of the closed
    /// rectangle of `r`.
    fn span(&self, r: &Region) -> (usize, usize, usize, usize) {
        (
            self.col(r.x()),
            self.col(r.east()),
            self.row(r.y()),
            self.row(r.north()),
        )
    }

    fn insert(&mut self, rid: RegionId, r: &Region) {
        let (c0, c1, r0, r1) = self.span(r);
        for row in r0..=r1 {
            for col in c0..=c1 {
                self.cells[row * GRID_DIM + col].push(rid);
                self.entries += 1;
            }
        }
    }

    fn remove(&mut self, rid: RegionId, r: &Region) {
        let (c0, c1, r0, r1) = self.span(r);
        for row in r0..=r1 {
            for col in c0..=c1 {
                let cell = &mut self.cells[row * GRID_DIM + col];
                if let Some(i) = cell.iter().position(|&x| x == rid) {
                    cell.swap_remove(i);
                    self.entries -= 1;
                }
            }
        }
    }

    /// Regions whose closed rectangle overlaps the cell containing `p`.
    fn candidates(&self, p: Point) -> &[RegionId] {
        if self.cells.is_empty() {
            return &[];
        }
        &self.cells[self.cell_of(p)]
    }

    /// Row-major index of the cell containing `p` (clamped into range).
    fn cell_of(&self, p: Point) -> usize {
        self.row(p.y) * GRID_DIM + self.col(p.x)
    }
}

/// Distance scales per finger direction: one finger per doubling of
/// distance, Kleinberg/Chord-style, from [`Topology::finger_base`] (a
/// 1024th of the space side — half a grid-index cell, fine enough that
/// the express phase can hand off within a couple of regions of the
/// target even at 2²⁰ regions) up to the full space side.
pub const FINGER_SCALES: usize = 11;

/// Compass directions fingers are laid along (east, north, west, south).
/// Axial-only coverage is enough for geometric progress: the worst-case
/// off-axis target still shrinks its distance by `sin 45° ≈ 0.71` per
/// hop, inside the express qualification window (see
/// [`crate::routing::EXPRESS_DECAY`]).
pub const FINGER_DIRS: usize = 4;

/// Live finger entries per region ([`FINGER_SCALES`] × [`FINGER_DIRS`]).
pub const FINGER_COUNT: usize = FINGER_SCALES * FINGER_DIRS;

/// Stored finger entries per region: [`FINGER_COUNT`] padded to the next
/// multiple of a 64-byte cache line (48 × 4 B = 192 B = 3 lines).
pub const FINGER_SLOTS: usize = 48;

/// Finger entry: no express link at this (scale, direction) — the target
/// point folds back into the region's own rectangle.
pub const FINGER_NONE: u32 = u32::MAX;

const FINGER_DIR_OFFSETS: [(f64, f64); FINGER_DIRS] =
    [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)];

/// One region's express-link fingers, padded to whole cache lines so the
/// flat mirror (`Vec<FingerBlock>`) never straddles a line mid-region:
/// the express hop scan reads all 48 entries of exactly one region.
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
pub struct FingerBlock {
    ids: [u32; FINGER_SLOTS],
}

impl FingerBlock {
    const EMPTY: FingerBlock = FingerBlock {
        ids: [FINGER_NONE; FINGER_SLOTS],
    };

    /// The raw finger entries (`FINGER_NONE`-padded past
    /// [`FINGER_COUNT`]). Index `scale * FINGER_DIRS + dir`.
    pub fn ids(&self) -> &[u32; FINGER_SLOTS] {
        &self.ids
    }
}

/// Reverse finger link: `(source slot << 8) | finger index`, packed so the
/// per-slot in-link lists stay one machine word per entry.
fn pack_finger_ref(rid: RegionId, k: usize) -> u64 {
    ((rid.as_u32() as u64) << 8) | k as u64
}

fn unpack_finger_ref(packed: u64) -> (u32, usize) {
    ((packed >> 8) as u32, (packed & 0xFF) as usize)
}

/// Source of unique [`Topology::instance_id`] values. Every constructed or
/// cloned topology gets a fresh id so route caches keyed by
/// `(instance_id, epoch)` can never confuse two instances whose epoch
/// counters happen to coincide.
static NEXT_TOPOLOGY_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn next_topology_id() -> u64 {
    NEXT_TOPOLOGY_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The authoritative GeoGrid network model.
///
/// See the [module docs](self) for an overview and the
/// [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Topology {
    space: Option<Space>,
    slots: Vec<Option<RegionEntry>>,
    free: Vec<u32>,
    nodes: HashMap<NodeId, NodeInfo>,
    assignments: HashMap<NodeId, (RegionId, Role)>,
    next_node: u64,
    region_count: usize,
    grid: GridIndex,
    /// Process-unique instance id (see [`Self::instance_id`]).
    id: u64,
    /// Geometry epoch (see [`Self::epoch`]).
    epoch: u64,
    /// Flat mirror of every live slot's rectangle and center, indexed by
    /// [`RegionId::index`]. Entries of dead slots are stale until the slot
    /// is recycled; only live ids may be used to index. One cache line per
    /// slot (see [`SlotGeo`]) so a greedy neighbor probe costs one load.
    slot_geo: Vec<SlotGeo>,
    /// Flat mirror of every live slot's express-link fingers, indexed like
    /// `slot_geo` (same staleness contract for dead slots). Kept exact at
    /// the three geometry-rewrite sites; see [`Self::slot_fingers`].
    slot_fingers: Vec<FingerBlock>,
    /// Reverse finger index: `finger_in[s]` lists every `(source, k)`
    /// finger currently pointing at slot `s` (packed, see
    /// [`pack_finger_ref`]). Exact — every finger write removes its old
    /// reverse entry before installing the new one — so a geometry rewrite
    /// retargets only the fingers that actually referenced the changed
    /// region, not the whole network.
    finger_in: Vec<Vec<u64>>,
    /// Mutation counter driving the [`Self::debug_audit`] throttle.
    /// Debug builds only; never part of equality or serialization.
    #[cfg(debug_assertions)]
    audit_tick: std::sync::atomic::AtomicU32,
    /// Epoch-keyed snapshot memo behind [`Self::snapshot`]: the last
    /// snapshot built, reused while `(instance_id, epoch)` still matches.
    /// Interior-mutable so the getter stays `&self`; never cloned (a
    /// clone's fresh instance id invalidates it by construction).
    snap_cache: RwLock<Option<Arc<TopologySnapshot>>>,
    /// The publication cell attached by [`Self::publish_handle`], if any.
    /// While attached, every geometry-rewrite site republishes into it
    /// (enforced by lint rules GG001/GG006). `None` costs publication
    /// nothing — unattached topologies skip snapshot construction
    /// entirely.
    publish: Option<Arc<SnapshotCell>>,
}

/// Rectangle + center of one slot, padded to a cache line: the greedy
/// scan reads both for every neighbor, so keeping them on one 64-byte
/// line halves its memory traffic versus separate rect/center arrays.
/// Shared with [`TopologySnapshot`], whose geometry mirror is a clone of
/// this array.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(64))]
pub(crate) struct SlotGeo {
    pub(crate) rect: Region,
    pub(crate) center: Point,
}

// Hand-written (not derived) so every clone gets a fresh `id`: a clone
// starts diverging from the original immediately, and route caches keyed
// by `(instance_id, epoch)` must not treat the two as interchangeable.
impl Clone for Topology {
    fn clone(&self) -> Self {
        Self {
            space: self.space,
            slots: self.slots.clone(),
            free: self.free.clone(),
            nodes: self.nodes.clone(),
            assignments: self.assignments.clone(),
            next_node: self.next_node,
            region_count: self.region_count,
            grid: self.grid.clone(),
            id: next_topology_id(),
            epoch: self.epoch,
            slot_geo: self.slot_geo.clone(),
            slot_fingers: self.slot_fingers.clone(),
            finger_in: self.finger_in.clone(),
            #[cfg(debug_assertions)]
            audit_tick: std::sync::atomic::AtomicU32::new(0),
            // A clone diverges immediately: it gets neither the memoized
            // snapshot (its fresh instance id would invalidate it anyway)
            // nor the publication cell — publishing a divergent clone's
            // geometry to the original's readers would corrupt them.
            snap_cache: RwLock::new(None),
            publish: None,
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self {
            space: None,
            slots: Vec::new(),
            free: Vec::new(),
            nodes: HashMap::new(),
            assignments: HashMap::new(),
            next_node: 0,
            region_count: 0,
            grid: GridIndex::default(),
            id: next_topology_id(),
            epoch: 0,
            slot_geo: Vec::new(),
            slot_fingers: Vec::new(),
            finger_in: Vec::new(),
            #[cfg(debug_assertions)]
            audit_tick: std::sync::atomic::AtomicU32::new(0),
            snap_cache: RwLock::new(None),
            publish: None,
        }
    }
}

impl Topology {
    /// Creates an empty topology over `space`.
    pub fn new(space: Space) -> Self {
        Self {
            space: Some(space),
            grid: GridIndex::new(space),
            ..Self::default()
        }
    }

    /// The space this topology partitions.
    ///
    /// # Panics
    ///
    /// Panics if the topology was built with `Default` and never given a
    /// space.
    pub fn space(&self) -> Space {
        self.space
            .expect("invariant: every topology outside Default::default() is built over a space")
    }

    /// Registers a node (not yet assigned to any region) and returns its
    /// id. Capacity and coordinate semantics follow [`NodeInfo::new`].
    pub fn register_node(&mut self, coord: Point, capacity: f64) -> NodeId {
        let id = NodeId::new(self.next_node);
        self.next_node += 1;
        self.nodes.insert(id, NodeInfo::new(id, coord, capacity));
        id
    }

    /// Bootstraps the network: the first node owns the entire space.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if `node` is not registered, or
    /// [`CoreError::WrongRole`] if it is already assigned, or
    /// [`CoreError::RegionFull`]-style misuse if the network already has
    /// regions (reported as `WrongRole` on the existing assignment).
    ///
    /// # Panics
    ///
    /// Panics if called when the network already has regions.
    // audit: geometry-rewrite requires = bump_epoch, publish_snapshot, rewrite_geometry|alloc_slot|free_slot, rebuild_fingers_of|fingers_after_split|fingers_after_merge
    pub fn bootstrap(&mut self, node: NodeId) -> Result<RegionId, CoreError> {
        assert!(self.region_count == 0, "bootstrap on a non-empty network");
        self.ensure_unassigned(node)?;
        self.bump_epoch();
        let rid = self.alloc_slot(RegionEntry {
            region: self.space().bounds(),
            primary: node,
            secondary: None,
            neighbors: Vec::new(),
        });
        self.assignments.insert(node, (rid, Role::Primary));
        self.rebuild_fingers_of(rid);
        self.publish_snapshot();
        self.debug_audit();
        Ok(rid)
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// Process-unique identity of this topology instance. Fresh on every
    /// construction *and* on every clone, so `(instance_id, epoch)` is a
    /// globally unambiguous geometry version — two topologies never share
    /// one even if their epoch counters coincide.
    pub fn instance_id(&self) -> u64 {
        self.id
    }

    /// Geometry epoch: bumped every time region rectangles or adjacency
    /// change, which happens at exactly the three sites that also rewrite
    /// the grid index — [`Self::bootstrap`], [`Self::split_region`] and
    /// [`Self::merge_regions`]. Ownership operations (secondary placement,
    /// primary swaps, fail-over promotion, node removal) move nodes, not
    /// rectangles, and leave the epoch alone — so routing caches keyed by
    /// `(instance_id, epoch)` stay warm across them.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Upper bound (exclusive) on [`RegionId::index`] over all live
    /// regions: the current slot-table length. Slots are recycled, so this
    /// stays dense — suitable for sizing flat per-slot side tables.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The rectangle of the live region in `slot`, from the flat geometry
    /// mirror (no `Option` chasing). `slot` must index a live region.
    #[inline]
    #[hot_path]
    pub fn slot_rect(&self, slot: usize) -> Region {
        self.slot_geo[slot].rect
    }

    /// The center of the live region in `slot`, same contract as
    /// [`Self::slot_rect`].
    #[inline]
    #[hot_path]
    pub fn slot_center(&self, slot: usize) -> Point {
        self.slot_geo[slot].center
    }

    /// The express-link fingers of the live region in `slot`, from the
    /// flat finger mirror — same contract as [`Self::slot_rect`]: `slot`
    /// must index a live region.
    ///
    /// Entry `scale * FINGER_DIRS + dir` is the raw id of the region
    /// covering the point `finger_base() · 2^scale` miles from this
    /// region's center along compass direction `dir`, or [`FINGER_NONE`]
    /// when that point folds back into the region itself. The mirror is
    /// maintained exactly at the three geometry-rewrite sites, so a
    /// non-`FINGER_NONE` entry always names a live region.
    #[inline]
    #[hot_path]
    pub fn slot_fingers(&self, slot: usize) -> &FingerBlock {
        &self.slot_fingers[slot]
    }

    /// The smallest finger distance scale: a 1024th of the space side.
    /// Express routing hands off to the plain greedy walk once the
    /// remaining distance drops below this floor.
    #[inline]
    #[hot_path]
    pub fn finger_base(&self) -> f64 {
        let b = self.space().bounds();
        b.width().max(b.height()) / 1024.0
    }

    /// Row-major index (in `[0, 128²)`) of the spatial-index cell
    /// containing `p` — the destination key of the per-source route cache.
    /// Returns 0 when the topology has no space yet.
    #[inline]
    #[hot_path]
    pub fn grid_cell_of(&self, p: Point) -> u32 {
        if self.grid.cells.is_empty() {
            return 0;
        }
        self.grid.cell_of(p) as u32
    }

    /// Number of grid-index cells (0 until the grid is initialised).
    pub fn grid_cell_count(&self) -> usize {
        self.grid.cells.len()
    }

    /// Closed rectangle of grid cell `cell` (as numbered by
    /// [`Self::grid_cell_of`]); `None` until the grid is initialised.
    pub fn grid_cell_rect(&self, cell: u32) -> Option<Region> {
        if self.grid.cells.is_empty() {
            return None;
        }
        Some(self.grid.cell_rect(cell as usize))
    }

    /// Number of registered nodes (assigned or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The region slot, if alive.
    pub fn region(&self, rid: RegionId) -> Option<&RegionEntry> {
        self.slots.get(rid.index()).and_then(|s| s.as_ref())
    }

    /// The node descriptor, if registered.
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        self.nodes.get(&id)
    }

    /// The region and role a node currently owns, if any.
    pub fn assignment(&self, id: NodeId) -> Option<(RegionId, Role)> {
        self.assignments.get(&id).copied()
    }

    /// Iterator over live region ids, ascending.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| RegionId::new(i as u32))
    }

    /// Iterator over `(RegionId, &RegionEntry)` pairs, ascending by id.
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, &RegionEntry)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (RegionId::new(i as u32), e)))
    }

    /// Iterator over all registered node descriptors (unordered).
    pub fn nodes(&self) -> impl Iterator<Item = &NodeInfo> + '_ {
        self.nodes.values()
    }

    /// Any live region id (the lowest), or an error on an empty network.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyNetwork`] when no region exists.
    pub fn first_region(&self) -> Result<RegionId, CoreError> {
        self.region_ids().next().ok_or(CoreError::EmptyNetwork)
    }

    /// The region covering `p`, by linear scan. Correct but O(regions) —
    /// prefer [`crate::routing::Router`] in protocol paths; this is the
    /// ground truth used in tests and as a routing fallback.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfSpace`] if `p` is outside the space, or
    /// [`CoreError::EmptyNetwork`] if there are no regions.
    pub fn locate_scan(&self, p: Point) -> Result<RegionId, CoreError> {
        if !self.space().covers(p) {
            return Err(CoreError::OutOfSpace { x: p.x, y: p.y });
        }
        self.regions()
            .find(|(_, e)| e.covers(p, self.space()))
            .map(|(rid, _)| rid)
            .ok_or(CoreError::EmptyNetwork)
    }

    /// The region covering `p`, via the grid spatial index: O(1) amortized
    /// (one cell lookup; the expected bucket holds a constant number of
    /// regions in a balanced tiling). Agrees with [`Self::locate_scan`] on
    /// every point of the space — the index is maintained exactly through
    /// all mutations.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfSpace`] if `p` is outside the space, or
    /// [`CoreError::EmptyNetwork`] if there are no regions.
    #[hot_path]
    pub fn locate(&self, p: Point) -> Result<RegionId, CoreError> {
        let space = self.space();
        if !space.covers(p) {
            return Err(CoreError::OutOfSpace { x: p.x, y: p.y });
        }
        for &rid in self.grid.candidates(p) {
            let entry = self.slots[rid.index()]
                .as_ref()
                .expect("invariant: the grid index lists only live regions");
            if entry.covers(p, space) {
                return Ok(rid);
            }
        }
        Err(CoreError::EmptyNetwork)
    }

    /// All live regions whose rectangle overlaps `rect` with positive area
    /// (the [`Region::intersects`] predicate), ascending by id. Uses the
    /// grid index: only the cells the query rectangle touches are examined.
    pub fn regions_overlapping(&self, rect: &Region) -> Vec<RegionId> {
        if self.grid.cells.is_empty() {
            return Vec::new();
        }
        let (c0, c1, r0, r1) = self.grid.span(rect);
        let mut out: Vec<RegionId> = Vec::new();
        for row in r0..=r1 {
            for col in c0..=c1 {
                out.extend_from_slice(&self.grid.cells[row * GRID_DIM + col]);
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&rid| {
            self.slots[rid.index()]
                .as_ref()
                .expect("invariant: the grid index lists only live regions")
                .region
                .intersects(rect)
        });
        out
    }

    /// Splits `rid` in half along its preferred axis.
    ///
    /// `keep` must be the current primary of `rid`; it retains the half
    /// containing its own coordinate (or the low half if its coordinate is
    /// not inside the region — ownership/geography association can already
    /// be broken by earlier adaptations). `give` becomes the primary of the
    /// other half; it must be either the current secondary of `rid` (a
    /// dual-peer split) or an unassigned registered node (a join split).
    ///
    /// Returns the id of the new region (the half given away).
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownRegion`] / [`CoreError::UnknownNode`] for dead
    ///   ids.
    /// * [`CoreError::WrongRole`] if `keep` is not the primary of `rid`, or
    ///   `give` is neither its secondary nor unassigned.
    // audit: geometry-rewrite requires = bump_epoch, publish_snapshot, rewrite_geometry|alloc_slot|free_slot, rebuild_fingers_of|fingers_after_split|fingers_after_merge
    pub fn split_region(
        &mut self,
        rid: RegionId,
        keep: NodeId,
        give: NodeId,
    ) -> Result<RegionId, CoreError> {
        let entry = self.entry(rid)?;
        if entry.primary != keep {
            return Err(CoreError::WrongRole {
                node: keep,
                expected: "the primary owner of the split region",
            });
        }
        let give_is_secondary = entry.secondary == Some(give);
        if !give_is_secondary && self.assignments.contains_key(&give) {
            return Err(CoreError::WrongRole {
                node: give,
                expected: "the region's secondary or an unassigned node",
            });
        }
        if !self.nodes.contains_key(&give) {
            return Err(CoreError::UnknownNode(give));
        }
        let keep_coord = self
            .nodes
            .get(&keep)
            .ok_or(CoreError::UnknownNode(keep))?
            .coord();

        let old_region = self.entry(rid)?.region;
        let (low, high) = old_region.split_preferred();
        // `keep` retains the half covering its coordinate; `contains` on
        // the low half decides (space-edge subtleties only matter for
        // points on the global boundary, where the low half wins anyway).
        let (kept_half, given_half) =
            if low.contains(keep_coord) || self.space().region_covers(&low, keep_coord) {
                (low, high)
            } else {
                (high, low)
            };

        let old_neighbors = self.entry(rid)?.neighbors.clone();
        // Geometry changes from here on: invalidate epoch-keyed caches.
        self.bump_epoch();
        // Rewrite the kept slot (and its grid cells: the kept half covers a
        // subset of the old rectangle's cells).
        self.rewrite_geometry(rid, &old_region, kept_half);
        {
            let entry = self.entry_mut(rid)?;
            entry.region = kept_half;
            if give_is_secondary {
                entry.secondary = None;
            }
        }
        let new_rid = self.alloc_slot(RegionEntry {
            region: given_half,
            primary: give,
            secondary: None,
            neighbors: Vec::new(),
        });
        self.assignments.insert(give, (new_rid, Role::Primary));

        // Recompute adjacency among the two halves and the old neighbors.
        let mut kept_list = vec![new_rid];
        let mut new_list = vec![rid];
        for n in old_neighbors {
            let n_region = self.entry(n)?.region;
            let touches_kept = n_region.touches_edge(&kept_half);
            let touches_new = n_region.touches_edge(&given_half);
            if touches_kept {
                kept_list.push(n);
            }
            if touches_new {
                new_list.push(n);
            }
            let n_entry = self.entry_mut(n)?;
            if !touches_kept {
                n_entry.neighbors.retain(|&x| x != rid);
            }
            if touches_new {
                n_entry.neighbors.push(new_rid);
            }
        }
        self.entry_mut(rid)?.neighbors = kept_list;
        self.entry_mut(new_rid)?.neighbors = new_list;
        self.fingers_after_split(rid, new_rid);
        self.publish_snapshot();
        self.debug_audit();
        Ok(new_rid)
    }

    /// Merges region `b` into region `a` (their rectangles must re-form a
    /// rectangle). The caller names the owners of the merged region; every
    /// current owner of `a` or `b` that is not named becomes unassigned and
    /// is returned.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotMergeable`] if the rectangles don't merge.
    /// * [`CoreError::WrongRole`] if `primary`/`secondary` are not among
    ///   the current owners of `a` and `b`.
    // audit: geometry-rewrite requires = bump_epoch, publish_snapshot, rewrite_geometry|alloc_slot|free_slot, rebuild_fingers_of|fingers_after_split|fingers_after_merge
    pub fn merge_regions(
        &mut self,
        a: RegionId,
        b: RegionId,
        primary: NodeId,
        secondary: Option<NodeId>,
    ) -> Result<Vec<NodeId>, CoreError> {
        let ra = self.entry(a)?.region;
        let rb = self.entry(b)?.region;
        let merged = ra.merge(&rb).ok_or(CoreError::NotMergeable(a, b))?;

        let mut owners = Vec::new();
        for rid in [a, b] {
            let e = self.entry(rid)?;
            owners.push(e.primary);
            owners.extend(e.secondary);
        }
        if !owners.contains(&primary) {
            return Err(CoreError::WrongRole {
                node: primary,
                expected: "an owner of one of the merged regions",
            });
        }
        if let Some(s) = secondary {
            if !owners.contains(&s) || s == primary {
                return Err(CoreError::WrongRole {
                    node: s,
                    expected: "a distinct owner of one of the merged regions",
                });
            }
        }

        // Union of both neighbor lists, minus the merged pair.
        let mut neighbor_union: Vec<RegionId> = Vec::new();
        for rid in [a, b] {
            for n in self.entry(rid)?.neighbors.clone() {
                if n != a && n != b && !neighbor_union.contains(&n) {
                    neighbor_union.push(n);
                }
            }
        }

        // Geometry changes from here on: invalidate epoch-keyed caches.
        self.bump_epoch();
        // Displace all owners, then install the named ones.
        let mut displaced = Vec::new();
        for owner in &owners {
            self.assignments.remove(owner);
            if *owner != primary && secondary != Some(*owner) {
                displaced.push(*owner);
            }
        }
        // `a` grows to the merged rectangle; `b`'s cells are cleared by
        // `free_slot` below.
        self.rewrite_geometry(a, &ra, merged);
        {
            let entry = self.entry_mut(a)?;
            entry.region = merged;
            entry.primary = primary;
            entry.secondary = secondary;
        }
        self.assignments.insert(primary, (a, Role::Primary));
        if let Some(s) = secondary {
            self.assignments.insert(s, (a, Role::Secondary));
        }
        self.free_slot(b);

        // Fix adjacency: every union member neighbors the merged rect.
        for &n in &neighbor_union {
            let entry = self.entry_mut(n)?;
            entry.neighbors.retain(|&x| x != a && x != b);
            entry.neighbors.push(a);
        }
        self.entry_mut(a)?.neighbors = neighbor_union;
        self.fingers_after_merge(a, b);
        self.publish_snapshot();
        self.debug_audit();
        Ok(displaced)
    }

    /// Installs `node` as the secondary owner of `rid`.
    ///
    /// # Errors
    ///
    /// [`CoreError::RegionFull`] if a secondary exists;
    /// [`CoreError::WrongRole`] if `node` is already assigned elsewhere;
    /// [`CoreError::UnknownNode`] if it is not registered.
    pub fn set_secondary(&mut self, rid: RegionId, node: NodeId) -> Result<(), CoreError> {
        if !self.nodes.contains_key(&node) {
            return Err(CoreError::UnknownNode(node));
        }
        self.ensure_unassigned(node)?;
        let entry = self.entry_mut(rid)?;
        if entry.secondary.is_some() {
            return Err(CoreError::RegionFull(rid));
        }
        entry.secondary = Some(node);
        self.assignments.insert(node, (rid, Role::Secondary));
        self.debug_audit();
        Ok(())
    }

    /// Removes and returns the secondary owner of `rid` (the *steal*
    /// primitive of adaptation mechanisms (a) and (f)).
    ///
    /// # Errors
    ///
    /// [`CoreError::NoSecondary`] if the region is half-full.
    pub fn take_secondary(&mut self, rid: RegionId) -> Result<NodeId, CoreError> {
        let entry = self.entry_mut(rid)?;
        let node = entry.secondary.take().ok_or(CoreError::NoSecondary(rid))?;
        self.assignments.remove(&node);
        self.debug_audit();
        Ok(node)
    }

    /// Swaps the primary owners of two regions (mechanisms (b) and (h)).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::UnknownRegion`] for dead ids.
    pub fn swap_primaries(&mut self, a: RegionId, b: RegionId) -> Result<(), CoreError> {
        let pa = self.entry(a)?.primary;
        let pb = self.entry(b)?.primary;
        self.entry_mut(a)?.primary = pb;
        self.entry_mut(b)?.primary = pa;
        self.assignments.insert(pa, (b, Role::Primary));
        self.assignments.insert(pb, (a, Role::Primary));
        self.debug_audit();
        Ok(())
    }

    /// Swaps the primary of `a` with the secondary of `b` (mechanisms (e)
    /// and (g)): the stronger secondary becomes primary of the overloaded
    /// region `a`, the former primary retires to secondary of `b`.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoSecondary`] if `b` has no secondary.
    pub fn switch_primary_with_secondary(
        &mut self,
        a: RegionId,
        b: RegionId,
    ) -> Result<(), CoreError> {
        let pa = self.entry(a)?.primary;
        let sb = self.entry(b)?.secondary.ok_or(CoreError::NoSecondary(b))?;
        self.entry_mut(a)?.primary = sb;
        self.entry_mut(b)?.secondary = Some(pa);
        self.assignments.insert(sb, (a, Role::Primary));
        self.assignments.insert(pa, (b, Role::Secondary));
        self.debug_audit();
        Ok(())
    }

    /// Swaps the roles of the primary and secondary within one region
    /// (used when a stronger node arrives as dual peer, §2.3 "Node Join").
    ///
    /// # Errors
    ///
    /// [`CoreError::NoSecondary`] if the region is half-full.
    pub fn swap_roles(&mut self, rid: RegionId) -> Result<(), CoreError> {
        let entry = self.entry(rid)?;
        let p = entry.primary;
        let s = entry.secondary.ok_or(CoreError::NoSecondary(rid))?;
        let entry = self.entry_mut(rid)?;
        entry.primary = s;
        entry.secondary = Some(p);
        self.assignments.insert(s, (rid, Role::Primary));
        self.assignments.insert(p, (rid, Role::Secondary));
        self.debug_audit();
        Ok(())
    }

    /// Removes `node` from the network entirely, fixing up its region's
    /// ownership per §2.3 "Node Departure"/"Failure Recover":
    ///
    /// * secondary departs → region marked half-full;
    /// * primary departs with a secondary present → secondary activates;
    /// * sole owner departs → the region is left **orphaned**: its entry
    ///   remains with the departed primary until the caller repairs it
    ///   (see [`crate::join::repair_orphan`]); the orphaned region id is
    ///   returned so the caller can do so.
    ///
    /// Returns the orphaned region id if repair is needed.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownNode`] if the node is not registered.
    pub fn remove_node(&mut self, node: NodeId) -> Result<Option<RegionId>, CoreError> {
        if self.nodes.remove(&node).is_none() {
            return Err(CoreError::UnknownNode(node));
        }
        let Some((rid, role)) = self.assignments.remove(&node) else {
            return Ok(None); // unassigned node
        };
        let orphan = match role {
            Role::Secondary => {
                self.entry_mut(rid)?.secondary = None;
                None
            }
            Role::Primary => {
                let secondary = self.entry(rid)?.secondary;
                match secondary {
                    Some(s) => {
                        let entry = self.entry_mut(rid)?;
                        entry.primary = s;
                        entry.secondary = None;
                        self.assignments.insert(s, (rid, Role::Primary));
                        None
                    }
                    None => Some(rid),
                }
            }
        };
        self.debug_audit();
        Ok(orphan)
    }

    /// Reassigns an orphaned region (whose primary was removed) to `node`,
    /// which must be unassigned. Part of the repair path.
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongRole`] if `node` is assigned elsewhere;
    /// [`CoreError::UnknownNode`] if it is not registered.
    pub fn adopt_region(&mut self, rid: RegionId, node: NodeId) -> Result<(), CoreError> {
        if !self.nodes.contains_key(&node) {
            return Err(CoreError::UnknownNode(node));
        }
        self.ensure_unassigned(node)?;
        self.entry_mut(rid)?.primary = node;
        self.assignments.insert(node, (rid, Role::Primary));
        self.debug_audit();
        Ok(())
    }

    /// Audits every structural invariant and returns **all** violations
    /// found, as typed [`Violation`]s (empty = healthy). Assert on
    /// [`ViolationKind`]s, not message text, in tests.
    ///
    /// Invariants: regions tile the space exactly (areas sum, pairwise
    /// non-overlap); neighbor lists match edge contact exactly and are
    /// symmetric; owner assignments are mutually consistent; no node owns
    /// two slots; the grid spatial index lists every live region in exactly
    /// the cells its closed rectangle spans; the flat geometry mirror
    /// matches every live rectangle.
    ///
    /// Pairwise checks run per grid bucket rather than over all region
    /// pairs: two regions that overlap or share an edge necessarily share a
    /// grid cell (their closed rectangles intersect), so bucket-local
    /// checking loses nothing while cutting the cost from O(regions²) to
    /// O(cells · occupancy²). Spurious neighbor-list entries (listed but
    /// not touching) are caught by walking each region's list directly.
    /// The expensive reverse grid sweep (every entry of every cell) runs
    /// only when the cheap checks — forward span membership and the
    /// entry-count totals — disagree; see [`ViolationKind::StaleGridBucket`].
    ///
    /// The audit never panics on a corrupted structure: it reports what it
    /// can prove and skips what it cannot reach, so debug hooks and
    /// property tests get the full damage picture from one call.
    pub fn audit(&self) -> Vec<Violation> {
        let mut v: Vec<Violation> = Vec::new();
        let space = self.space();
        let mut area = 0.0;
        let all: Vec<(RegionId, &RegionEntry)> = self.regions().collect();
        for (rid, e) in &all {
            area += e.region.area();
            // Owners exist and agree with the assignment map. An owner
            // missing from the node table entirely is the orphan transient
            // (OrphanedOwner); a *registered* owner whose assignment
            // disagrees is always a bug (DualPeerMismatch).
            if !self.nodes.contains_key(&e.primary) {
                v.push(Violation::new(
                    ViolationKind::OrphanedOwner(e.primary, *rid),
                    format!("{rid}: primary {} not registered", e.primary),
                ));
            } else {
                match self.assignments.get(&e.primary) {
                    Some(&(r, Role::Primary)) if r == *rid => {}
                    other => v.push(Violation::new(
                        ViolationKind::DualPeerMismatch(e.primary, *rid),
                        format!("{rid}: primary {} has assignment {other:?}", e.primary),
                    )),
                }
            }
            if let Some(s) = e.secondary {
                if !self.nodes.contains_key(&s) {
                    v.push(Violation::new(
                        ViolationKind::OrphanedOwner(s, *rid),
                        format!("{rid}: secondary {s} not registered"),
                    ));
                } else {
                    match self.assignments.get(&s) {
                        Some(&(r, Role::Secondary)) if r == *rid => {}
                        other => v.push(Violation::new(
                            ViolationKind::DualPeerMismatch(s, *rid),
                            format!("{rid}: secondary {s} has assignment {other:?}"),
                        )),
                    }
                }
                if s == e.primary {
                    v.push(Violation::new(
                        ViolationKind::DualPeerMismatch(s, *rid),
                        format!("{rid}: primary and secondary are both {s}"),
                    ));
                }
            }
        }
        if (area - space.bounds().area()).abs() > 1e-6 {
            v.push(Violation::new(
                ViolationKind::TessellationGap,
                format!(
                    "regions cover area {area}, space has {}",
                    space.bounds().area()
                ),
            ));
        }
        // Grid-index exactness, forward direction: every live region sits
        // in every cell of its recomputed span. The same span walk doubles
        // as the pairwise overlap/adjacency check (any overlapping or
        // touching pair shares a cell, so checking each region against its
        // co-bucketed peers loses nothing versus all-pairs — and pairs
        // sharing several cells are checked once). While walking, total up
        // the span sizes: if the forward check passes and the bucket
        // totals match, no cell can hold a stale, dead, or duplicate
        // entry, and the O(cells · occupancy) reverse sweep is skipped.
        let mut expected_entries = 0usize;
        let mut forward_clean = true;
        let mut seen_pairs: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::new();
        for (rid, e) in &all {
            let (c0, c1, r0, r1) = self.grid.span(&e.region);
            expected_entries += (c1 - c0 + 1) * (r1 - r0 + 1);
            for row in r0..=r1 {
                for col in c0..=c1 {
                    let cell = &self.grid.cells[row * GRID_DIM + col];
                    if !cell.contains(rid) {
                        forward_clean = false;
                        v.push(Violation::new(
                            ViolationKind::StaleGridBucket(*rid),
                            format!("{rid} missing from grid cell ({col},{row})"),
                        ));
                    }
                    for &other in cell {
                        if other == *rid {
                            continue;
                        }
                        let key = (
                            rid.as_u32().min(other.as_u32()),
                            rid.as_u32().max(other.as_u32()),
                        );
                        if !seen_pairs.insert(key) {
                            continue;
                        }
                        // Dead co-bucketed entries are the sweep's problem.
                        let Some(o) = self.region(other) else {
                            continue;
                        };
                        if e.region.intersects(&o.region) {
                            v.push(Violation::new(
                                ViolationKind::TessellationOverlap(*rid, other),
                                format!("{rid} and {other} overlap"),
                            ));
                        }
                        let touching = e.region.touches_edge(&o.region);
                        let a_lists_b = e.neighbors.contains(&other);
                        let b_lists_a = o.neighbors.contains(rid);
                        if touching != a_lists_b || touching != b_lists_a {
                            v.push(Violation::new(
                                ViolationKind::AsymmetricNeighborLink(*rid, other),
                                format!(
                                    "{rid}/{other}: touching={touching} lists=({a_lists_b},{b_lists_a})"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        let actual_entries: usize = self.grid.cells.iter().map(Vec::len).sum();
        if self.grid.entries != actual_entries {
            v.push(Violation::new(
                ViolationKind::GridCounterDrift {
                    counted: self.grid.entries,
                    actual: actual_entries,
                },
                format!(
                    "grid entry counter says {} but cells hold {actual_entries}",
                    self.grid.entries
                ),
            ));
        }
        if !forward_clean || actual_entries != expected_entries {
            // Reverse sweep: name the stale/dead/duplicate entries.
            for (i, cell) in self.grid.cells.iter().enumerate() {
                let (col, row) = (i % GRID_DIM, i / GRID_DIM);
                for (j, rid) in cell.iter().enumerate() {
                    match self.region(*rid) {
                        None => v.push(Violation::new(
                            ViolationKind::StaleGridBucket(*rid),
                            format!("grid cell ({col},{row}) lists dead region {rid}"),
                        )),
                        Some(e) => {
                            let (c0, c1, r0, r1) = self.grid.span(&e.region);
                            if !(c0..=c1).contains(&col) || !(r0..=r1).contains(&row) {
                                v.push(Violation::new(
                                    ViolationKind::StaleGridBucket(*rid),
                                    format!("grid cell ({col},{row}) lists {rid} outside its span"),
                                ));
                            }
                        }
                    }
                    if cell[..j].contains(rid) {
                        v.push(Violation::new(
                            ViolationKind::StaleGridBucket(*rid),
                            format!("grid cell ({col},{row}) lists {rid} twice"),
                        ));
                    }
                }
            }
        }
        // Geometry mirrors agree with the slot table for every live region.
        for (rid, e) in &all {
            let stale = match self.slot_geo.get(rid.index()) {
                Some(g) => g.rect != e.region || g.center != e.region.center(),
                None => true,
            };
            if stale {
                v.push(Violation::new(
                    ViolationKind::SlotMirrorDrift(*rid),
                    format!("{rid}: rect/center geometry mirror is stale"),
                ));
            }
        }
        // Express-link fingers: every live region's stored finger block
        // must match a fresh recomputation against the current geometry
        // (the finger selection rule), point only at live regions, and be
        // mirrored exactly once in the reverse index.
        for (rid, _) in &all {
            let Some(block) = self.slot_fingers.get(rid.index()) else {
                v.push(Violation::new(
                    ViolationKind::MisScaledFinger(*rid, 0),
                    format!("{rid}: finger mirror missing entirely"),
                ));
                continue;
            };
            for (k, &stored) in block.ids.iter().enumerate() {
                if k >= FINGER_COUNT {
                    if stored != FINGER_NONE {
                        v.push(Violation::new(
                            ViolationKind::MisScaledFinger(*rid, k as u8),
                            format!("{rid}: padding finger slot {k} holds {stored}"),
                        ));
                    }
                    continue;
                }
                if stored != FINGER_NONE && self.region(RegionId::new(stored)).is_none() {
                    v.push(Violation::new(
                        ViolationKind::DanglingFinger(*rid, k as u8),
                        format!("{rid}: finger {k} points at dead slot {stored}"),
                    ));
                    continue;
                }
                match self.try_finger_target(*rid, k) {
                    Some(expected) if stored == expected => {}
                    expected => v.push(Violation::new(
                        ViolationKind::MisScaledFinger(*rid, k as u8),
                        format!("{rid}: finger {k} holds {stored}, geometry says {expected:?}"),
                    )),
                }
                if stored != FINGER_NONE {
                    let packed = ((rid.as_u32() as u64) << 8) | k as u64;
                    let seen = self
                        .finger_in
                        .get(stored as usize)
                        .map_or(0, |l| l.iter().filter(|&&x| x == packed).count());
                    if seen != 1 {
                        v.push(Violation::new(
                            ViolationKind::AsymmetricFingerLink(*rid, RegionId::new(stored)),
                            format!("{rid}: finger {k} -> r{stored} has {seen} reverse entries"),
                        ));
                    }
                }
            }
        }
        // Reverse direction: every in-link names a live source whose
        // forward finger really points here, and dead slots hold none.
        for (s, links) in self.finger_in.iter().enumerate() {
            let target_live = self.slots.get(s).is_some_and(|e| e.is_some());
            for &packed in links {
                let (src, k) = unpack_finger_ref(packed);
                let src_rid = RegionId::new(src);
                let forward = self
                    .region(src_rid)
                    .and_then(|_| self.slot_fingers.get(src as usize))
                    .map(|b| b.ids[k]);
                if !target_live || forward != Some(s as u32) {
                    v.push(Violation::new(
                        ViolationKind::AsymmetricFingerLink(src_rid, RegionId::new(s as u32)),
                        format!("stale reverse finger entry r{src}[{k}] on slot {s}"),
                    ));
                }
            }
        }
        // Neighbor lists can also be wrong about far-apart regions (which
        // never share a bucket): verify every listed neighbor directly.
        for (rid, e) in &all {
            for (j, n) in e.neighbors.iter().enumerate() {
                let Some(ne) = self.region(*n) else {
                    v.push(Violation::new(
                        ViolationKind::AsymmetricNeighborLink(*rid, *n),
                        format!("{rid} lists dead neighbor {n}"),
                    ));
                    continue;
                };
                if !e.region.touches_edge(&ne.region) {
                    v.push(Violation::new(
                        ViolationKind::AsymmetricNeighborLink(*rid, *n),
                        format!("{rid} lists non-touching neighbor {n}"),
                    ));
                }
                if e.neighbors[..j].contains(n) {
                    v.push(Violation::new(
                        ViolationKind::AsymmetricNeighborLink(*rid, *n),
                        format!("{rid} lists neighbor {n} twice"),
                    ));
                }
            }
        }
        for (node, (rid, role)) in &self.assignments {
            let Some(e) = self.region(*rid) else {
                v.push(Violation::new(
                    ViolationKind::DualPeerMismatch(*node, *rid),
                    format!("{node} assigned to dead region {rid}"),
                ));
                continue;
            };
            let holds = match role {
                Role::Primary => e.primary == *node,
                Role::Secondary => e.secondary == Some(*node),
            };
            if !holds {
                v.push(Violation::new(
                    ViolationKind::DualPeerMismatch(*node, *rid),
                    format!("{node} claims {role} of {rid} but slot disagrees"),
                ));
            }
        }
        // Published-snapshot coherence: whatever concurrent readers can
        // currently observe through the attached publication cell must be
        // exactly this geometry at this epoch.
        if let Some(cell) = &self.publish {
            self.audit_snapshot(&cell.load(), &mut v);
        }
        v
    }

    /// Convenience wrapper over [`Self::audit`]: `Ok` when the structure is
    /// healthy, otherwise an error message listing **every** violation
    /// (semicolon-separated). Prefer `audit()` + kind matching in tests.
    ///
    /// # Errors
    ///
    /// Returns all violations found, rendered as one string.
    pub fn validate(&self) -> Result<(), String> {
        let violations = self.audit();
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations
                .iter()
                .map(Violation::to_string)
                .collect::<Vec<_>>()
                .join("; "))
        }
    }

    /// An immutable snapshot of the current geometry epoch: the slot
    /// rectangle/center mirror, finger blocks, adjacency, and grid index,
    /// flattened for lock-free concurrent routing (see
    /// [`crate::snapshot`]). Memoized per `(instance_id, epoch)` — calling
    /// this repeatedly between mutations returns the same `Arc`.
    ///
    /// # Panics
    ///
    /// Panics if the topology was built with `Default` and never given a
    /// space.
    pub fn snapshot(&self) -> Arc<TopologySnapshot> {
        {
            let memo = self
                .snap_cache
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(s) = memo.as_ref() {
                if s.instance_id == self.id && s.epoch == self.epoch {
                    return Arc::clone(s);
                }
            }
        }
        let snap = Arc::new(self.build_snapshot());
        *self
            .snap_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&snap));
        snap
    }

    /// Attaches (or returns) this topology's publication cell. From this
    /// call on, every geometry rewrite ([`Self::bootstrap`],
    /// [`Self::split_region`], [`Self::merge_regions`]) atomically
    /// republishes a fresh [`TopologySnapshot`] into the cell, so reader
    /// threads created with [`SnapshotCell::reader`] observe a coherent
    /// epoch-by-epoch history of the geometry while this topology keeps
    /// mutating. Unattached topologies (the default) pay nothing.
    ///
    /// Clones do **not** inherit the cell: a clone diverges immediately,
    /// and its geometry must never reach the original's readers.
    ///
    /// # Panics
    ///
    /// Panics if the topology was built with `Default` and never given a
    /// space.
    pub fn publish_handle(&mut self) -> Arc<SnapshotCell> {
        if let Some(cell) = &self.publish {
            return Arc::clone(cell);
        }
        let cell = Arc::new(SnapshotCell::new(self.snapshot()));
        self.publish = Some(Arc::clone(&cell));
        cell
    }

    /// Republishes the current geometry into the attached publication
    /// cell; a no-op (no snapshot is even built) while no cell is
    /// attached. Publication happens only here and only beside the epoch
    /// bump: GG001 requires this call at each of the three
    /// geometry-rewrite sites, and GG006 forbids the publication
    /// primitives everywhere else.
    // audit: snapshot-publish
    fn publish_snapshot(&mut self) {
        if let Some(cell) = &self.publish {
            cell.install_snapshot(self.snapshot());
        }
    }

    /// Flattens the current geometry into a fresh [`TopologySnapshot`]
    /// (CSR adjacency and grid candidate lists, cloned slot mirrors).
    fn build_snapshot(&self) -> TopologySnapshot {
        let slots = self.slots.len();
        let mut live = Vec::with_capacity(slots);
        let mut neighbor_off = Vec::with_capacity(slots + 1);
        let mut neighbor_ids = Vec::new();
        neighbor_off.push(0u32);
        for s in &self.slots {
            match s {
                Some(e) => {
                    live.push(true);
                    neighbor_ids.extend_from_slice(&e.neighbors);
                }
                None => live.push(false),
            }
            neighbor_off.push(neighbor_ids.len() as u32);
        }
        let mut cell_off = Vec::new();
        let mut cell_ids = Vec::with_capacity(self.grid.entries);
        if !self.grid.cells.is_empty() {
            cell_off.reserve(self.grid.cells.len() + 1);
            cell_off.push(0u32);
            for cell in &self.grid.cells {
                cell_ids.extend_from_slice(cell);
                cell_off.push(cell_ids.len() as u32);
            }
        }
        TopologySnapshot {
            space: self.space(),
            instance_id: self.id,
            epoch: self.epoch,
            region_count: self.region_count,
            slot_geo: self.slot_geo.clone(),
            slot_fingers: self.slot_fingers.clone(),
            live,
            neighbor_off,
            neighbor_ids,
            grid_origin_x: self.grid.origin_x,
            grid_origin_y: self.grid.origin_y,
            grid_cell_w: self.grid.cell_w,
            grid_cell_h: self.grid.cell_h,
            cell_off,
            cell_ids,
            finger_base: self.finger_base(),
        }
    }

    /// Checks the published snapshot against this topology's live
    /// geometry: identity (instance + epoch) first — a mismatch there is
    /// [`ViolationKind::StaleSnapshot`] and content comparison proves
    /// nothing — then per-slot liveness, rectangles/centers (against the
    /// authoritative slot table, not the mirror), finger blocks,
    /// adjacency, and the grid candidate lists, all as
    /// [`ViolationKind::SnapshotDrift`].
    fn audit_snapshot(&self, snap: &TopologySnapshot, v: &mut Vec<Violation>) {
        if snap.instance_id != self.id || snap.epoch != self.epoch {
            v.push(Violation::new(
                ViolationKind::StaleSnapshot {
                    published: snap.epoch,
                    current: self.epoch,
                },
                format!(
                    "published snapshot is instance {} epoch {}, topology is instance {} epoch {}",
                    snap.instance_id, snap.epoch, self.id, self.epoch
                ),
            ));
            return;
        }
        if snap.slot_count() != self.slots.len() || snap.region_count != self.region_count {
            v.push(Violation::new(
                ViolationKind::SnapshotDrift(RegionId::new(0)),
                format!(
                    "snapshot has {} slots / {} regions, topology has {} / {}",
                    snap.slot_count(),
                    snap.region_count,
                    self.slots.len(),
                    self.region_count
                ),
            ));
            return;
        }
        for slot in 0..self.slots.len() {
            let rid = RegionId::new(slot as u32);
            let Some(e) = &self.slots[slot] else {
                if snap.live[slot] {
                    v.push(Violation::new(
                        ViolationKind::SnapshotDrift(rid),
                        format!("{rid}: snapshot lists a dead slot as live"),
                    ));
                }
                continue;
            };
            if !snap.live[slot] {
                v.push(Violation::new(
                    ViolationKind::SnapshotDrift(rid),
                    format!("{rid}: snapshot lists a live slot as dead"),
                ));
                continue;
            }
            let geo = snap.slot_geo[slot];
            if geo.rect != e.region || geo.center != e.region.center() {
                v.push(Violation::new(
                    ViolationKind::SnapshotDrift(rid),
                    format!("{rid}: snapshot rect/center diverges from the region table"),
                ));
            }
            if snap.slot_fingers[slot].ids() != self.slot_fingers[slot].ids() {
                v.push(Violation::new(
                    ViolationKind::SnapshotDrift(rid),
                    format!("{rid}: snapshot finger block diverges from the finger mirror"),
                ));
            }
            let lo = snap.neighbor_off[slot] as usize;
            let hi = snap.neighbor_off[slot + 1] as usize;
            if snap.neighbor_ids[lo..hi] != e.neighbors[..] {
                v.push(Violation::new(
                    ViolationKind::SnapshotDrift(rid),
                    format!("{rid}: snapshot adjacency diverges from the neighbor list"),
                ));
            }
        }
        let snap_cells = snap.cell_off.len().saturating_sub(1);
        if snap_cells != self.grid.cells.len() {
            v.push(Violation::new(
                ViolationKind::SnapshotDrift(RegionId::new(0)),
                format!(
                    "snapshot has {snap_cells} grid cells, topology has {}",
                    self.grid.cells.len()
                ),
            ));
            return;
        }
        for (i, cell) in self.grid.cells.iter().enumerate() {
            let lo = snap.cell_off[i] as usize;
            let hi = snap.cell_off[i + 1] as usize;
            if snap.cell_ids[lo..hi] != cell[..] {
                v.push(Violation::new(
                    ViolationKind::SnapshotDrift(RegionId::new(0)),
                    format!("grid cell {i}: snapshot candidate list diverges"),
                ));
            }
        }
    }

    /// Advances the geometry epoch. This is the **only** function allowed
    /// to write the epoch field (audit rule GG005), and it is called at
    /// exactly the three geometry-rewrite sites — [`Self::bootstrap`],
    /// [`Self::split_region`], [`Self::merge_regions`] — which rule GG001
    /// holds to the full three-site contract (epoch bump + grid index +
    /// slot mirror + snapshot publication).
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Debug-build hook run after every mutation: full structural audit,
    /// panicking on any violation *except* the legal orphan transient
    /// ([`ViolationKind::OrphanedOwner`] — `remove_node` hands orphaned
    /// regions back to the caller for repair, so the structure is allowed
    /// to carry them between mutations). Compiles to nothing in release
    /// builds, so protocol benchmarks and experiment binaries are
    /// unaffected. Set `GEOGRID_SKIP_DEBUG_AUDIT=1` to disable, e.g. for
    /// tests that deliberately drive corrupted states.
    #[inline]
    fn debug_audit(&self) {
        #[cfg(debug_assertions)]
        {
            use std::sync::OnceLock;
            static SKIP: OnceLock<bool> = OnceLock::new();
            if *SKIP.get_or_init(|| std::env::var_os("GEOGRID_SKIP_DEBUG_AUDIT").is_some()) {
                return;
            }
            // The full audit is Ω(grid entries ≈ 16k) per call however few
            // regions exist, and test loops drive thousands of mutations.
            // Audit each instance's first mutations exhaustively (unit-test
            // scenarios get full per-mutation coverage), then sample every
            // 17th. The model-explorer property test audits every step
            // explicitly through TopologyAuditor, unthrottled.
            let tick = self
                .audit_tick
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if tick >= 8 && !tick.is_multiple_of(17) {
                return;
            }
            let bad: Vec<Violation> = self
                .audit()
                .into_iter()
                .filter(|v| !matches!(v.kind, ViolationKind::OrphanedOwner(..)))
                .collect();
            assert!(
                bad.is_empty(),
                "post-mutation topology audit failed:\n{}",
                bad.iter()
                    .map(|v| format!("  {v}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    fn ensure_unassigned(&self, node: NodeId) -> Result<(), CoreError> {
        if self.assignments.contains_key(&node) {
            return Err(CoreError::WrongRole {
                node,
                expected: "an unassigned node",
            });
        }
        Ok(())
    }

    fn entry(&self, rid: RegionId) -> Result<&RegionEntry, CoreError> {
        self.region(rid).ok_or(CoreError::UnknownRegion(rid))
    }

    fn entry_mut(&mut self, rid: RegionId) -> Result<&mut RegionEntry, CoreError> {
        self.slots
            .get_mut(rid.index())
            .and_then(|s| s.as_mut())
            .ok_or(CoreError::UnknownRegion(rid))
    }

    fn alloc_slot(&mut self, entry: RegionEntry) -> RegionId {
        self.region_count += 1;
        let region = entry.region;
        let geo = SlotGeo {
            rect: region,
            center: region.center(),
        };
        let rid = if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(entry);
            self.slot_geo[i as usize] = geo;
            // A recycled slot's fingers were cleared (and its in-links
            // retargeted) when it died; start from a clean block.
            debug_assert!(
                self.finger_in[i as usize].is_empty(),
                "recycled slot {i} still has finger in-links"
            );
            self.slot_fingers[i as usize] = FingerBlock::EMPTY;
            RegionId::new(i)
        } else {
            self.slots.push(Some(entry));
            self.slot_geo.push(geo);
            self.slot_fingers.push(FingerBlock::EMPTY);
            self.finger_in.push(Vec::new());
            RegionId::new((self.slots.len() - 1) as u32)
        };
        self.grid.insert(rid, &region);
        rid
    }

    /// Rewrites the rectangle of live slot `rid` to `to`, keeping the grid
    /// index and the geometry mirror in sync. Callers bump [`Self::epoch`]
    /// at the surrounding mutation site.
    fn rewrite_geometry(&mut self, rid: RegionId, from: &Region, to: Region) {
        self.grid.remove(rid, from);
        self.grid.insert(rid, &to);
        self.slot_geo[rid.index()] = SlotGeo {
            rect: to,
            center: to.center(),
        };
    }

    fn free_slot(&mut self, rid: RegionId) {
        if let Some(entry) = self.slots[rid.index()].take() {
            self.grid.remove(rid, &entry.region);
            self.region_count -= 1;
            self.free.push(rid.as_u32());
        }
    }

    /// The correct value of finger `k` of live region `rid`, recomputed
    /// from the current geometry: the region covering the point one
    /// finger-scale away from `rid`'s center, or [`FINGER_NONE`] when that
    /// point folds back into `rid` itself (near the space boundary, or
    /// when the region is larger than the scale). This is the finger
    /// selection rule — the audit recomputes it to cross-check the mirror.
    fn finger_target(&self, rid: RegionId, k: usize) -> u32 {
        self.try_finger_target(rid, k)
            .expect("invariant: finger targets are clamped into a non-empty tessellation")
    }

    /// Fallible form of [`Self::finger_target`] for the audit, which must
    /// not panic even when the tessellation is corrupt and the target
    /// point resolves to no region.
    fn try_finger_target(&self, rid: RegionId, k: usize) -> Option<u32> {
        let (scale, dir) = (k / FINGER_DIRS, k % FINGER_DIRS);
        let dist = self.finger_base() * (1u64 << scale) as f64;
        let (dx, dy) = FINGER_DIR_OFFSETS[dir];
        // Authoritative center, not the slot mirror: the audit recomputes
        // through this path, and a drifted mirror must surface as exactly
        // SlotMirrorDrift — not as a cascade of mis-scaled fingers.
        let c = self.region(rid)?.region().center();
        let p = self.space().clamp(c.translated(dx * dist, dy * dist));
        let target = self.locate(p).ok()?;
        Some(if target == rid {
            FINGER_NONE
        } else {
            target.as_u32()
        })
    }

    /// Recomputes finger `k` of live region `rid` and installs it,
    /// maintaining the reverse index exactly: the old target (if any)
    /// forgets this finger before the new target learns it.
    fn recompute_one_finger(&mut self, rid: RegionId, k: usize) {
        let slot = rid.index();
        let old = self.slot_fingers[slot].ids[k];
        if old != FINGER_NONE {
            let packed = pack_finger_ref(rid, k);
            let list = &mut self.finger_in[old as usize];
            // The entry may already be gone if the caller drained the old
            // target's in-link list wholesale (split/merge retargeting).
            if let Some(i) = list.iter().position(|&x| x == packed) {
                list.swap_remove(i);
            }
        }
        let new = self.finger_target(rid, k);
        self.slot_fingers[slot].ids[k] = new;
        if new != FINGER_NONE {
            self.finger_in[new as usize].push(pack_finger_ref(rid, k));
        }
    }

    /// Recomputes every finger of live region `rid` (used when `rid`'s own
    /// center moved: bootstrap, either half of a split, a merge survivor).
    fn rebuild_fingers_of(&mut self, rid: RegionId) {
        for k in 0..FINGER_COUNT {
            self.recompute_one_finger(rid, k);
        }
    }

    /// Clears every finger of `rid` and their reverse entries (the slot is
    /// dying: a merge victim about to be freed).
    fn clear_fingers_of(&mut self, rid: RegionId) {
        for k in 0..FINGER_COUNT {
            let old = self.slot_fingers[rid.index()].ids[k];
            if old != FINGER_NONE {
                let packed = pack_finger_ref(rid, k);
                let list = &mut self.finger_in[old as usize];
                if let Some(i) = list.iter().position(|&x| x == packed) {
                    list.swap_remove(i);
                }
            }
            self.slot_fingers[rid.index()].ids[k] = FINGER_NONE;
        }
    }

    /// Retargets every finger currently pointing at slot `dead_or_changed`
    /// (its rectangle changed or it died): drains the reverse list and
    /// recomputes each referencing finger against the new geometry. Cost
    /// is proportional to the slot's finger in-degree (average
    /// [`FINGER_COUNT`]), not the network size.
    fn retarget_in_links(&mut self, dead_or_changed: RegionId) {
        let links = std::mem::take(&mut self.finger_in[dead_or_changed.index()]);
        for packed in links {
            let (src, k) = unpack_finger_ref(packed);
            // Defensive: skip entries whose source died or no longer
            // forward-points here (cannot happen while the index is exact,
            // but a stale entry must not be resurrected).
            if self.slots[src as usize].is_none()
                || self.slot_fingers[src as usize].ids[k] != dead_or_changed.as_u32()
            {
                continue;
            }
            self.recompute_one_finger(RegionId::new(src), k);
        }
    }

    /// Finger maintenance for [`Self::split_region`]: the kept half's
    /// center moved and the given half is new, so both rebuild their own
    /// fingers; every finger that pointed at the old rectangle may now
    /// belong to either half, so the kept slot's in-links retarget.
    fn fingers_after_split(&mut self, rid: RegionId, new_rid: RegionId) {
        self.retarget_in_links(rid);
        self.rebuild_fingers_of(rid);
        self.rebuild_fingers_of(new_rid);
    }

    /// Finger maintenance for [`Self::merge_regions`]: the victim `b` is
    /// already freed, so its fingers are cleared and its in-links retarget
    /// (they now resolve inside the grown `a`); `a`'s in-links stay valid
    /// — its rectangle only grew, so every referencing target point it
    /// covered it still covers — but its own center moved, so its forward
    /// fingers rebuild.
    fn fingers_after_merge(&mut self, a: RegionId, b: RegionId) {
        self.clear_fingers_of(b);
        self.retarget_in_links(b);
        self.rebuild_fingers_of(a);
    }
}

// The live topology exposes the same read interface as its snapshots, so
// single-threaded callers route directly (no snapshot build) through the
// identical monomorphized engines.
impl TopologyView for Topology {
    fn space(&self) -> Space {
        Topology::space(self)
    }

    fn instance_id(&self) -> u64 {
        self.id
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn region_count(&self) -> usize {
        self.region_count
    }

    fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn is_live(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(Option::is_some)
    }

    #[inline]
    fn slot_rect(&self, slot: usize) -> Region {
        self.slot_geo[slot].rect
    }

    #[inline]
    fn slot_center(&self, slot: usize) -> Point {
        self.slot_geo[slot].center
    }

    #[inline]
    fn slot_fingers(&self, slot: usize) -> &FingerBlock {
        &self.slot_fingers[slot]
    }

    #[inline]
    fn neighbors(&self, slot: usize) -> &[RegionId] {
        self.slots[slot].as_ref().map_or(&[], |e| &e.neighbors[..])
    }

    #[inline]
    fn finger_base(&self) -> f64 {
        Topology::finger_base(self)
    }

    #[inline]
    fn grid_cell_of(&self, p: Point) -> u32 {
        Topology::grid_cell_of(self, p)
    }

    fn grid_cell_count(&self) -> usize {
        Topology::grid_cell_count(self)
    }

    fn grid_cell_rect(&self, cell: u32) -> Option<Region> {
        Topology::grid_cell_rect(self, cell)
    }

    fn locate(&self, p: Point) -> Result<RegionId, CoreError> {
        Topology::locate(self, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::paper_evaluation()
    }

    fn boot() -> (Topology, NodeId, RegionId) {
        let mut t = Topology::new(space());
        let n = t.register_node(Point::new(10.0, 10.0), 100.0);
        let r = t.bootstrap(n).expect("bootstrap");
        (t, n, r)
    }

    #[test]
    fn bootstrap_owns_whole_space() {
        let (t, n, r) = boot();
        let e = t.region(r).unwrap();
        assert_eq!(e.region(), space().bounds());
        assert_eq!(e.primary(), n);
        assert!(!e.is_full());
        assert!(e.neighbors().is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn split_gives_joiner_a_half() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).expect("split");
        assert_eq!(t.region_count(), 2);
        // Keeper's half contains the keeper's coordinate.
        assert!(t.region(r).unwrap().covers(Point::new(10.0, 10.0), space()));
        assert!(t
            .region(nr)
            .unwrap()
            .covers(Point::new(50.0, 50.0), space()));
        assert_eq!(t.region(nr).unwrap().primary(), j);
        assert_eq!(t.assignment(j), Some((nr, Role::Primary)));
        // The two halves are mutual neighbors.
        assert!(t.region(r).unwrap().neighbors().contains(&nr));
        assert!(t.region(nr).unwrap().neighbors().contains(&r));
        t.validate().unwrap();
    }

    #[test]
    fn split_requires_primary_and_free_joiner() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let stranger = t.register_node(Point::new(1.0, 1.0), 10.0);
        assert!(matches!(
            t.split_region(r, j, stranger),
            Err(CoreError::WrongRole { .. })
        ));
        t.split_region(r, n, j).unwrap();
        // j is now assigned; using it as `give` elsewhere must fail.
        assert!(matches!(
            t.split_region(r, n, j),
            Err(CoreError::WrongRole { .. })
        ));
    }

    #[test]
    fn deep_splits_keep_invariants() {
        let (mut t, _, _) = boot();
        // Join 63 more nodes at deterministic pseudo-random coords via scan
        // locate (ground truth).
        let mut x = 7.3_f64;
        let mut y = 41.1_f64;
        for i in 0..63 {
            x = (x * 31.7 + i as f64).rem_euclid(64.0);
            y = (y * 17.3 + 1.0 + i as f64).rem_euclid(64.0);
            let p = Point::new(x.max(0.01), y.max(0.01));
            let j = t.register_node(p, 10.0);
            let rid = t.locate_scan(p).unwrap();
            let primary = t.region(rid).unwrap().primary();
            t.split_region(rid, primary, j).unwrap();
        }
        assert_eq!(t.region_count(), 64);
        t.validate().unwrap();
    }

    #[test]
    fn merge_restores_parent_and_displaces_unnamed() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).unwrap();
        let displaced = t.merge_regions(r, nr, n, None).expect("merge");
        assert_eq!(displaced, vec![j]);
        assert_eq!(t.region_count(), 1);
        assert_eq!(t.region(r).unwrap().region(), space().bounds());
        assert_eq!(t.assignment(j), None);
        t.validate().unwrap();
    }

    #[test]
    fn merge_can_keep_both_as_dual_peer() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).unwrap();
        let displaced = t.merge_regions(r, nr, j, Some(n)).expect("merge");
        assert!(displaced.is_empty());
        let e = t.region(r).unwrap();
        assert_eq!(e.primary(), j);
        assert_eq!(e.secondary(), Some(n));
        t.validate().unwrap();
    }

    #[test]
    fn merge_rejects_non_rectangle() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).unwrap();
        let k = t.register_node(Point::new(60.0, 60.0), 10.0);
        let nr2 = t.split_region(nr, j, k).unwrap();
        // r is the south half; nr2 is a quarter — not mergeable with r.
        assert!(matches!(
            t.merge_regions(r, nr2, n, None),
            Err(CoreError::NotMergeable(..))
        ));
    }

    #[test]
    fn secondary_lifecycle() {
        let (mut t, _n, r) = boot();
        let s = t.register_node(Point::new(5.0, 5.0), 50.0);
        t.set_secondary(r, s).unwrap();
        assert!(t.region(r).unwrap().is_full());
        assert!(matches!(
            t.set_secondary(r, s),
            Err(CoreError::WrongRole { .. })
        ));
        let s2 = t.register_node(Point::new(6.0, 6.0), 50.0);
        assert!(matches!(
            t.set_secondary(r, s2),
            Err(CoreError::RegionFull(_))
        ));
        let taken = t.take_secondary(r).unwrap();
        assert_eq!(taken, s);
        assert_eq!(t.assignment(s), None);
        assert!(matches!(
            t.take_secondary(r),
            Err(CoreError::NoSecondary(_))
        ));
        t.validate().unwrap();
    }

    #[test]
    fn swap_primaries_updates_assignments() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).unwrap();
        t.swap_primaries(r, nr).unwrap();
        assert_eq!(t.region(r).unwrap().primary(), j);
        assert_eq!(t.region(nr).unwrap().primary(), n);
        assert_eq!(t.assignment(n), Some((nr, Role::Primary)));
        t.validate().unwrap();
    }

    #[test]
    fn switch_primary_with_secondary_across_regions() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).unwrap();
        let s = t.register_node(Point::new(55.0, 55.0), 1000.0);
        t.set_secondary(nr, s).unwrap();
        // r's primary n swaps with nr's secondary s.
        t.switch_primary_with_secondary(r, nr).unwrap();
        assert_eq!(t.region(r).unwrap().primary(), s);
        assert_eq!(t.region(nr).unwrap().secondary(), Some(n));
        assert_eq!(t.region(nr).unwrap().primary(), j);
        t.validate().unwrap();
    }

    #[test]
    fn swap_roles_within_region() {
        let (mut t, n, r) = boot();
        let s = t.register_node(Point::new(5.0, 5.0), 1000.0);
        t.set_secondary(r, s).unwrap();
        t.swap_roles(r).unwrap();
        let e = t.region(r).unwrap();
        assert_eq!(e.primary(), s);
        assert_eq!(e.secondary(), Some(n));
        t.validate().unwrap();
    }

    #[test]
    fn departures_follow_paper_rules() {
        let (mut t, n, r) = boot();
        let s = t.register_node(Point::new(5.0, 5.0), 50.0);
        t.set_secondary(r, s).unwrap();
        // Secondary departs: region half-full, nothing else changes.
        assert_eq!(t.remove_node(s).unwrap(), None);
        assert!(!t.region(r).unwrap().is_full());
        // Re-add a secondary, then the primary departs: secondary activates.
        let s2 = t.register_node(Point::new(6.0, 6.0), 50.0);
        t.set_secondary(r, s2).unwrap();
        assert_eq!(t.remove_node(n).unwrap(), None);
        assert_eq!(t.region(r).unwrap().primary(), s2);
        assert!(!t.region(r).unwrap().is_full());
        // Sole owner departs: orphan reported — as the typed orphan
        // transient, and nothing else.
        assert_eq!(t.remove_node(s2).unwrap(), Some(r));
        let violations = t.audit();
        assert!(
            !violations.is_empty()
                && violations.iter().all(
                    |v| matches!(v.kind, ViolationKind::OrphanedOwner(n, rr) if n == s2 && rr == r)
                ),
            "expected only the orphan transient, got {violations:?}"
        );
        // Adopt to repair.
        let a = t.register_node(Point::new(7.0, 7.0), 10.0);
        t.adopt_region(r, a).unwrap();
        t.validate().unwrap();
    }

    #[test]
    fn locate_scan_agrees_with_coverage() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        t.split_region(r, n, j).unwrap();
        let p = Point::new(33.0, 60.0);
        let rid = t.locate_scan(p).unwrap();
        assert!(t.region(rid).unwrap().covers(p, space()));
        assert!(matches!(
            t.locate_scan(Point::new(-1.0, 0.0)),
            Err(CoreError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn locate_agrees_with_scan_through_splits_and_merges() {
        let (mut t, _, _) = boot();
        let mut x = 3.9_f64;
        let mut y = 27.5_f64;
        for i in 0..40 {
            x = (x * 29.1 + i as f64).rem_euclid(64.0);
            y = (y * 13.7 + 1.0 + i as f64).rem_euclid(64.0);
            let p = Point::new(x.max(0.01), y.max(0.01));
            let j = t.register_node(p, 10.0);
            let rid = t.locate(p).unwrap();
            assert_eq!(rid, t.locate_scan(p).unwrap());
            let primary = t.region(rid).unwrap().primary();
            t.split_region(rid, primary, j).unwrap();
        }
        // Merge a few sibling pairs back, then re-check agreement on a
        // probe lattice (including space edges and corners).
        let ids: Vec<RegionId> = t.region_ids().collect();
        let mut merges = 0;
        'outer: for &a in &ids {
            for &b in &ids {
                if a == b || t.region(a).is_none() || t.region(b).is_none() {
                    continue;
                }
                let (ra, rb) = (t.region(a).unwrap(), t.region(b).unwrap());
                if ra.region().merge(&rb.region()).is_some() {
                    let p = ra.primary();
                    if t.merge_regions(a, b, p, None).is_ok() {
                        merges += 1;
                        if merges == 5 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(merges > 0, "expected at least one mergeable sibling pair");
        t.validate().unwrap();
        for ix in 0..=16 {
            for iy in 0..=16 {
                let p = Point::new(ix as f64 * 4.0, iy as f64 * 4.0);
                assert_eq!(t.locate(p).unwrap(), t.locate_scan(p).unwrap(), "at {p:?}");
            }
        }
    }

    #[test]
    fn regions_overlapping_matches_brute_force() {
        let (mut t, _, _) = boot();
        let mut x = 11.2_f64;
        let mut y = 47.9_f64;
        for i in 0..30 {
            x = (x * 23.3 + i as f64).rem_euclid(64.0);
            y = (y * 19.1 + 1.0 + i as f64).rem_euclid(64.0);
            let p = Point::new(x.max(0.01), y.max(0.01));
            let j = t.register_node(p, 10.0);
            let rid = t.locate(p).unwrap();
            let primary = t.region(rid).unwrap().primary();
            t.split_region(rid, primary, j).unwrap();
        }
        for rect in [
            Region::new(0.0, 0.0, 64.0, 64.0),
            Region::new(10.0, 10.0, 20.0, 5.0),
            Region::new(63.0, 63.0, 1.0, 1.0),
            Region::new(16.0, 16.0, 1e-12, 1e-12), // sub-epsilon: overlaps nothing
            Region::new(31.9, 0.0, 0.2, 64.0),     // thin column across a seam
        ] {
            let got = t.regions_overlapping(&rect);
            let expected: Vec<RegionId> = t
                .regions()
                .filter(|(_, e)| e.region().intersects(&rect))
                .map(|(rid, _)| rid)
                .collect();
            assert_eq!(got, expected, "query {rect:?}");
        }
    }

    #[test]
    fn locate_on_empty_and_out_of_space() {
        let t = Topology::new(space());
        assert!(matches!(
            t.locate(Point::new(1.0, 1.0)),
            Err(CoreError::EmptyNetwork)
        ));
        let (t, _, _) = boot();
        assert!(matches!(
            t.locate(Point::new(-0.5, 3.0)),
            Err(CoreError::OutOfSpace { .. })
        ));
        assert_eq!(
            t.locate(Point::new(0.0, 0.0)).unwrap(),
            t.first_region().unwrap()
        );
        assert_eq!(
            t.locate(Point::new(64.0, 64.0)).unwrap(),
            t.first_region().unwrap()
        );
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).unwrap();
        t.merge_regions(r, nr, n, None).unwrap();
        let k = t.register_node(Point::new(40.0, 40.0), 10.0);
        let nr2 = t.split_region(r, n, k).unwrap();
        assert_eq!(nr2, nr, "freed slot should be reused");
        t.validate().unwrap();
    }

    #[test]
    fn epoch_bumps_on_geometry_changes_only() {
        let mut t = Topology::new(space());
        let n = t.register_node(Point::new(10.0, 10.0), 100.0);
        assert_eq!(t.epoch(), 0);
        let r = t.bootstrap(n).unwrap();
        assert_eq!(t.epoch(), 1);
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).unwrap();
        assert_eq!(t.epoch(), 2);
        // Ownership-only operations leave geometry (and the epoch) alone.
        let s = t.register_node(Point::new(20.0, 20.0), 10.0);
        t.set_secondary(r, s).unwrap();
        t.swap_primaries(r, nr).unwrap();
        t.swap_primaries(r, nr).unwrap();
        t.take_secondary(r).unwrap();
        assert_eq!(t.epoch(), 2);
        t.merge_regions(r, nr, n, None).unwrap();
        assert_eq!(t.epoch(), 3);
        // Failed (validated-away) mutations must not bump either.
        assert!(t.split_region(nr, n, j).is_err());
        assert_eq!(t.epoch(), 3);
        t.validate().unwrap();
    }

    /// A healthy two-region topology for the corruption tests below.
    fn two_regions() -> (Topology, NodeId, RegionId, RegionId) {
        let (mut t, n, r) = boot();
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).expect("split");
        (t, n, r, nr)
    }

    #[test]
    fn audit_flags_slot_mirror_drift() {
        let (mut t, _, r, _) = two_regions();
        t.slot_geo[r.index()].center = Point::new(-1.0, -1.0);
        let v = t.audit();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(v[0].kind, ViolationKind::SlotMirrorDrift(rr) if rr == r));
    }

    /// Index of a live (non-NONE) finger of `rid`, or of a NONE one.
    fn finger_slot_where(t: &Topology, rid: RegionId, live: bool) -> usize {
        t.slot_fingers[rid.index()].ids[..FINGER_COUNT]
            .iter()
            .position(|&id| (id != FINGER_NONE) == live)
            .expect("a two-region topology has both live and self-resolving fingers")
    }

    #[test]
    fn audit_flags_dangling_finger() {
        let (mut t, n, r, _) = two_regions();
        // Free a slot so there is a dead id to point at.
        let j = t.register_node(Point::new(10.0, 50.0), 10.0);
        let r2 = t.split_region(r, n, j).expect("split");
        t.merge_regions(r, r2, n, None).expect("merge back");
        // Redirect a live finger of `r` at the freed slot, dropping its
        // reverse entry so exactly the dangling forward edge remains.
        let k = finger_slot_where(&t, r, true);
        let old = t.slot_fingers[r.index()].ids[k];
        let packed = pack_finger_ref(r, k);
        t.finger_in[old as usize].retain(|&x| x != packed);
        t.slot_fingers[r.index()].ids[k] = r2.as_u32();
        let v = t.audit();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            matches!(v[0].kind, ViolationKind::DanglingFinger(rr, kk) if rr == r && kk == k as u8),
            "{v:?}"
        );
    }

    #[test]
    fn audit_flags_mis_scaled_finger() {
        let (mut t, _, r, nr) = two_regions();
        // Point a finger that geometry says resolves to `r` itself at the
        // neighbor, with a matching reverse entry, so only the finger
        // selection rule is broken — not the reverse index.
        let k = finger_slot_where(&t, r, false);
        t.slot_fingers[r.index()].ids[k] = nr.as_u32();
        t.finger_in[nr.index()].push(pack_finger_ref(r, k));
        let v = t.audit();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            matches!(v[0].kind, ViolationKind::MisScaledFinger(rr, kk) if rr == r && kk == k as u8),
            "{v:?}"
        );
    }

    #[test]
    fn audit_flags_asymmetric_finger_link() {
        let (mut t, _, r, _) = two_regions();
        // Drop the reverse entry of a correct forward finger: the forward
        // edge still matches geometry, so only the mirror check fires.
        let k = finger_slot_where(&t, r, true);
        let target = t.slot_fingers[r.index()].ids[k];
        let packed = pack_finger_ref(r, k);
        t.finger_in[target as usize].retain(|&x| x != packed);
        let v = t.audit();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v.iter().all(|x| matches!(
                x.kind,
                ViolationKind::AsymmetricFingerLink(a, b)
                    if a == r && b == RegionId::new(target)
            )),
            "{v:?}"
        );
    }

    #[test]
    fn audit_flags_stale_reverse_finger_entry() {
        let (mut t, _, r, nr) = two_regions();
        // Plant a reverse entry whose named source finger points elsewhere:
        // only the reverse sweep can see it.
        let k = finger_slot_where(&t, r, false);
        t.finger_in[nr.index()].push(pack_finger_ref(r, k));
        let v = t.audit();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            matches!(
                v[0].kind,
                ViolationKind::AsymmetricFingerLink(a, b) if a == r && b == nr
            ),
            "{v:?}"
        );
    }

    #[test]
    fn audit_flags_stale_grid_bucket_and_counter_drift() {
        let (mut t, _, r, nr) = two_regions();
        // Plant the kept region's id in a cell far outside its span: the
        // bucket totals stop matching the incremental counter, which both
        // reports the drift and forces the precise reverse sweep.
        let far = t.grid.cell_of(t.region(nr).unwrap().region().center());
        t.grid.cells[far].push(r);
        let v = t.audit();
        assert!(
            v.iter().any(
                |x| matches!(x.kind, ViolationKind::GridCounterDrift { counted, actual }
                    if actual == counted + 1)
            ),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| matches!(x.kind, ViolationKind::StaleGridBucket(rr) if rr == r)),
            "{v:?}"
        );
    }

    #[test]
    fn audit_flags_missing_grid_entry() {
        let (mut t, _, r, _) = two_regions();
        let home = t.grid.cell_of(t.region(r).unwrap().region().center());
        let pos = t.grid.cells[home]
            .iter()
            .position(|&x| x == r)
            .expect("region is indexed in its own center cell");
        t.grid.cells[home].swap_remove(pos);
        t.grid.entries -= 1; // keep the counter honest: only the entry is lost
        let v = t.audit();
        assert!(
            v.iter()
                .any(|x| matches!(x.kind, ViolationKind::StaleGridBucket(rr) if rr == r)),
            "{v:?}"
        );
        assert!(
            !v.iter()
                .any(|x| matches!(x.kind, ViolationKind::GridCounterDrift { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn audit_flags_asymmetric_neighbor_link() {
        let (mut t, _, r, nr) = two_regions();
        let e = t.slots[r.index()].as_mut().unwrap();
        e.neighbors.retain(|&x| x != nr);
        let v = t.audit();
        assert!(!v.is_empty());
        assert!(
            v.iter().all(|x| matches!(
                x.kind,
                ViolationKind::AsymmetricNeighborLink(a, b)
                    if (a == r && b == nr) || (a == nr && b == r)
            )),
            "{v:?}"
        );
    }

    #[test]
    fn audit_flags_tessellation_gap_and_overlap() {
        let (mut t, _, r, nr) = two_regions();
        // Shrink one half: a gap opens (and the grid/mirror go stale too,
        // since geometry was edited behind the mutators' backs).
        let shrunk = {
            let full = t.region(r).unwrap().region();
            Region::new(full.x(), full.y(), full.width() / 2.0, full.height())
        };
        t.slots[r.index()].as_mut().unwrap().region = shrunk;
        let v = t.audit();
        assert!(
            v.iter().any(|x| x.kind == ViolationKind::TessellationGap),
            "{v:?}"
        );
        // Now grow it over the whole space instead: an overlap with the
        // other half.
        t.slots[r.index()].as_mut().unwrap().region = space().bounds();
        let v = t.audit();
        assert!(
            v.iter().any(|x| matches!(
                x.kind,
                ViolationKind::TessellationOverlap(a, b)
                    if (a == r && b == nr) || (a == nr && b == r)
            )),
            "{v:?}"
        );
    }

    #[test]
    fn audit_flags_dual_peer_mismatch_for_registered_owner() {
        let (mut t, n, _r, nr) = two_regions();
        // The registered primary of `r` claims a different region: always a
        // bug, never the orphan transient.
        t.assignments.insert(n, (nr, Role::Secondary));
        let v = t.audit();
        assert!(!v.is_empty());
        assert!(
            v.iter()
                .all(|x| matches!(x.kind, ViolationKind::DualPeerMismatch(node, _) if node == n)),
            "{v:?}"
        );
        assert!(
            !v.iter()
                .any(|x| matches!(x.kind, ViolationKind::OrphanedOwner(..))),
            "{v:?}"
        );
    }

    #[test]
    fn audit_reports_all_violations_not_just_the_first() {
        let (mut t, _, r, nr) = two_regions();
        // Two independent corruptions in different subsystems must both
        // surface from one audit call.
        t.slot_geo[nr.index()].rect = Region::new(0.0, 0.0, 1.0, 1.0);
        let e = t.slots[r.index()].as_mut().unwrap();
        e.neighbors.push(r); // self-link: non-touching neighbor entry
        let v = t.audit();
        assert!(
            v.iter()
                .any(|x| matches!(x.kind, ViolationKind::SlotMirrorDrift(rr) if rr == nr)),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| matches!(x.kind, ViolationKind::AsymmetricNeighborLink(a, _) if a == r)),
            "{v:?}"
        );
        // And validate() renders every one of them, not just the first.
        let msg = t.validate().unwrap_err();
        assert!(msg.contains("slot-mirror-drift") && msg.contains("asymmetric-neighbor-link"));
    }

    #[test]
    fn auditor_detects_epoch_regression() {
        use crate::audit::TopologyAuditor;
        let (mut t, _, _, _) = two_regions();
        let mut auditor = TopologyAuditor::new();
        assert!(auditor.observe(&t).is_empty());
        // A clone is a different instance: same epoch, no regression.
        let c = t.clone();
        assert!(auditor.observe(&c).is_empty());
        // Re-observe the original so the auditor's history points at it.
        assert!(auditor.observe(&t).is_empty());
        // Rewinding the same instance's epoch is a violation. (Only a test
        // can do this — GG005 keeps runtime writes inside bump_epoch.)
        t.epoch = 0;
        let v = auditor.observe(&t);
        assert!(
            auditor.observe(&t).is_empty(),
            "regression is edge-triggered"
        );
        assert!(
            v.iter().any(|x| matches!(
                x.kind,
                ViolationKind::EpochRegression {
                    last_seen: 2,
                    observed: 0
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn audit_detects_stale_published_snapshot() {
        let (mut t, _, _, _) = two_regions();
        let _cell = t.publish_handle();
        assert!(t.audit().is_empty(), "{:?}", t.audit());
        // Advance the epoch without republishing. (Only a test can: GG001
        // requires publish_snapshot beside every bump_epoch at the rewrite
        // sites, and GG006 pins publication to those sites.)
        t.bump_epoch();
        let v = t.audit();
        assert!(
            v.iter().any(|x| matches!(
                x.kind,
                ViolationKind::StaleSnapshot { published, current }
                    if published + 1 == current
            )),
            "{v:?}"
        );
    }

    #[test]
    fn audit_detects_snapshot_content_drift() {
        let (mut t, _, r, _) = two_regions();
        let cell = t.publish_handle();
        // Side-load a corrupted snapshot of the *same* epoch (tests are
        // exempt from GG006): identity matches, so the audit must compare
        // content and catch the dead-listed live region.
        let mut snap = t.build_snapshot();
        snap.live[r.index()] = false;
        cell.install_snapshot(Arc::new(snap));
        let v = t.audit();
        assert!(
            v.iter()
                .any(|x| matches!(x.kind, ViolationKind::SnapshotDrift(rr) if rr == r)),
            "{v:?}"
        );
    }

    #[test]
    fn clones_get_fresh_instance_ids_and_soa_stays_exact() {
        let (mut t, n, r) = boot();
        let c = t.clone();
        assert_ne!(t.instance_id(), c.instance_id());
        assert_eq!(t.epoch(), c.epoch());
        let j = t.register_node(Point::new(50.0, 50.0), 10.0);
        let nr = t.split_region(r, n, j).unwrap();
        for rid in [r, nr] {
            let e = t.region(rid).unwrap();
            assert_eq!(t.slot_rect(rid.index()), e.region());
            assert_eq!(t.slot_center(rid.index()), e.region().center());
        }
        assert_eq!(t.slot_count(), 2);
        t.validate().unwrap();
        c.validate().unwrap();
    }
}
