//! Whole-network constructors for experiments and examples.
//!
//! The paper's evaluation builds "randomly generated GeoGrid service
//! networks": nodes with skewed capacities placed over the plane, joining
//! one by one through a random entry node. [`NetworkBuilder`] reproduces
//! that procedure for both protocol variants, seeded and deterministic.

use geogrid_geometry::Space;
use geogrid_workload::{CapacityProfile, NodePlacement};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::join::{self, JoinOutcome};
use crate::routing::RouteScratch;
use crate::{NodeId, RegionId, Topology};

/// Which join protocol the network uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Basic GeoGrid: every join splits the covering region (§2.1).
    #[default]
    Basic,
    /// Dual-peer GeoGrid: joins fill half-full regions first (§2.3).
    DualPeer,
}

/// Builds randomly generated GeoGrid networks.
///
/// # Examples
///
/// ```
/// use geogrid_core::builder::{Mode, NetworkBuilder};
/// use geogrid_geometry::Space;
///
/// let net = NetworkBuilder::new(Space::paper_evaluation(), 7)
///     .mode(Mode::Basic)
///     .build(50);
/// assert_eq!(net.topology().region_count(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    space: Space,
    seed: u64,
    mode: Mode,
    placement: NodePlacement,
    capacities: CapacityProfile,
}

impl NetworkBuilder {
    /// Creates a builder over `space`, deterministic in `seed`.
    pub fn new(space: Space, seed: u64) -> Self {
        Self {
            space,
            seed,
            mode: Mode::Basic,
            placement: NodePlacement::Uniform,
            capacities: CapacityProfile::gnutella(),
        }
    }

    /// Selects the join protocol.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the node placement distribution.
    pub fn placement(mut self, placement: NodePlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Selects the node capacity distribution.
    pub fn capacities(mut self, capacities: CapacityProfile) -> Self {
        self.capacities = capacities;
        self
    }

    /// Builds a network of `n` nodes by sequential joins through random
    /// entry regions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(self, n: usize) -> BuiltNetwork {
        assert!(n > 0, "a network needs at least one node");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut topo = Topology::new(self.space);
        let coord = self.placement.sample(&mut rng, self.space);
        let capacity = self.capacities.sample(&mut rng);
        let first = topo.register_node(coord, capacity);
        let root = topo
            .bootstrap(first)
            .expect("invariant: bootstrap over the topology this builder just created cannot fail");
        let mut net = BuiltNetwork {
            topology: topo,
            rng,
            mode: self.mode,
            placement: self.placement,
            capacities: self.capacities,
            live_regions: vec![root],
            scratch: RouteScratch::new(),
        };
        for _ in 1..n {
            net.join_one();
        }
        net
    }
}

/// A constructed network plus the RNG state to keep growing it.
#[derive(Debug, Clone)]
pub struct BuiltNetwork {
    topology: Topology,
    rng: SmallRng,
    mode: Mode,
    placement: NodePlacement,
    capacities: CapacityProfile,
    live_regions: Vec<RegionId>,
    /// Routing scratch reused across all joins of this network: the
    /// thousands of routed join requests a build issues share one set of
    /// buffers instead of allocating each.
    scratch: RouteScratch,
}

impl BuiltNetwork {
    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access (adaptation engines operate here).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The builder's RNG (for follow-on randomized steps that should stay
    /// on the same deterministic stream).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Joins one more node: random placement, random capacity, random
    /// entry region — the paper's bootstrap.
    ///
    /// Returns the node and its join outcome.
    pub fn join_one(&mut self) -> (NodeId, JoinOutcome) {
        let coord = self.placement.sample(&mut self.rng, self.topology.space());
        let capacity = self.capacities.sample(&mut self.rng);
        // The entry cache can go stale when adaptation merges regions
        // between joins; refresh it on a dead hit.
        let mut entry = self.live_regions[self.rng.random_range(0..self.live_regions.len())];
        if self.topology.region(entry).is_none() {
            self.live_regions = self.topology.region_ids().collect();
            entry = self.live_regions[self.rng.random_range(0..self.live_regions.len())];
        }
        let (node, outcome) = match self.mode {
            Mode::Basic => join::join_basic_with(
                &mut self.topology,
                entry,
                coord,
                capacity,
                &mut self.scratch,
            ),
            Mode::DualPeer => join::join_dual_with(
                &mut self.topology,
                entry,
                coord,
                capacity,
                &mut self.scratch,
            ),
        }
        .expect("invariant: joins over a builder-maintained topology cannot fail");
        if let Some(created) = outcome.created_region() {
            self.live_regions.push(created);
        }
        (node, outcome)
    }

    /// The join protocol in use.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Consumes the builder state and returns the topology without
    /// cloning it (experiment harnesses build, then only need the
    /// topology).
    pub fn into_topology(self) -> Topology {
        self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogrid_metrics::Summary;

    #[test]
    fn basic_build_has_one_region_per_node() {
        let net = NetworkBuilder::new(Space::paper_evaluation(), 1).build(200);
        assert_eq!(net.topology().region_count(), 200);
        assert_eq!(net.topology().node_count(), 200);
        net.topology().validate().unwrap();
    }

    #[test]
    fn dual_build_has_fewer_regions_than_nodes() {
        let net = NetworkBuilder::new(Space::paper_evaluation(), 1)
            .mode(Mode::DualPeer)
            .build(200);
        // Dual peer halves the region count (every region needs two owners
        // before any split); allow slack for stragglers.
        let regions = net.topology().region_count();
        assert!(regions < 140, "got {regions} regions for 200 nodes");
        assert!(regions >= 100, "got {regions} regions for 200 nodes");
        net.topology().validate().unwrap();
    }

    #[test]
    fn same_seed_same_network() {
        let a = NetworkBuilder::new(Space::paper_evaluation(), 9).build(100);
        let b = NetworkBuilder::new(Space::paper_evaluation(), 9).build(100);
        let regions = |net: &BuiltNetwork| {
            net.topology()
                .regions()
                .map(|(rid, e)| (rid, e.region(), e.primary(), e.secondary()))
                .collect::<Vec<_>>()
        };
        assert_eq!(regions(&a), regions(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = NetworkBuilder::new(Space::paper_evaluation(), 9).build(50);
        let b = NetworkBuilder::new(Space::paper_evaluation(), 10).build(50);
        let areas = |net: &BuiltNetwork| {
            let mut v: Vec<u64> = net
                .topology()
                .regions()
                .map(|(_, e)| e.region().area().to_bits())
                .collect();
            v.sort();
            v
        };
        assert_ne!(areas(&a), areas(&b));
    }

    #[test]
    fn dual_peer_gives_strong_nodes_bigger_regions() {
        // The paper's Figure 3 observation: with dual peer, more powerful
        // nodes own bigger regions. Verify the correlation directionally:
        // mean region area of the strongest primaries exceeds that of the
        // weakest.
        let net = NetworkBuilder::new(Space::paper_evaluation(), 5)
            .mode(Mode::DualPeer)
            .build(500);
        let topo = net.topology();
        let mut strong = Vec::new();
        let mut weak = Vec::new();
        for (_, e) in topo.regions() {
            let cap = topo.node(e.primary()).unwrap().capacity();
            if cap >= 1_000.0 {
                strong.push(e.region().area());
            } else if cap <= 1.0 {
                weak.push(e.region().area());
            }
        }
        if !strong.is_empty() && !weak.is_empty() {
            let strong = Summary::from_values(strong);
            let weak = Summary::from_values(weak);
            assert!(
                strong.mean() > weak.mean(),
                "strong {} <= weak {}",
                strong.mean(),
                weak.mean()
            );
        }
    }

    #[test]
    fn incremental_joins_after_build() {
        let mut net = NetworkBuilder::new(Space::paper_evaluation(), 3).build(10);
        for _ in 0..10 {
            net.join_one();
        }
        assert_eq!(net.topology().node_count(), 20);
        net.topology().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        NetworkBuilder::new(Space::paper_evaluation(), 0).build(0);
    }
}
