//! Location queries.

use std::fmt;

use geogrid_geometry::{Circle, Point, Region};

use crate::NodeId;

/// A location query: a rectangular spatial area, an optional topic filter,
/// and the focal node that issued it (§2.2: "a spatial query region, a
/// filter condition, and a focal object").
///
/// # Examples
///
/// ```
/// use geogrid_core::service::LocationQuery;
/// use geogrid_core::NodeId;
/// use geogrid_geometry::Region;
///
/// let q = LocationQuery::new(Region::new(10.0, 10.0, 4.0, 4.0), NodeId::new(1))
///     .with_topic("traffic");
/// assert_eq!(q.target().x, 12.0); // routing aims at the area's center
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LocationQuery {
    area: Region,
    topic: Option<String>,
    issuer: NodeId,
}

impl LocationQuery {
    /// Creates a query over `area` issued by `issuer`.
    pub fn new(area: Region, issuer: NodeId) -> Self {
        Self {
            area,
            topic: None,
            issuer,
        }
    }

    /// A query over a circular area of radius `gamma`, represented as the
    /// paper's `(x, y, 2γ, 2γ)` bounding rectangle.
    pub fn circular(center: Point, gamma: f64, issuer: NodeId) -> Self {
        Self::new(Circle::new(center, gamma).bounding_region(), issuer)
    }

    /// Restricts the query to records with this topic.
    pub fn with_topic(mut self, topic: impl Into<String>) -> Self {
        self.topic = Some(topic.into());
        self
    }

    /// The spatial query region.
    pub fn area(&self) -> Region {
        self.area
    }

    /// The topic filter, if any.
    pub fn topic(&self) -> Option<&str> {
        self.topic.as_deref()
    }

    /// The node that issued the query.
    pub fn issuer(&self) -> NodeId {
        self.issuer
    }

    /// The routing target: the center of the query area, the point
    /// `(x + width/2, y + height/2)` from §2.2.
    pub fn target(&self) -> Point {
        self.area.center()
    }

    /// Whether a record at `position` with `topic` satisfies the query.
    /// Area containment uses closed edges: a query rectangle touching a
    /// record's exact position should match it.
    pub fn matches(&self, position: Point, topic: &str) -> bool {
        self.area.contains_closed(position) && self.topic.as_deref().is_none_or(|t| t == topic)
    }
}

impl fmt::Display for LocationQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.topic {
            Some(t) => write!(f, "query {} [{}] by {}", self.area, t, self.issuer),
            None => write!(f, "query {} by {}", self.area, self.issuer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_query_matches_paper_form() {
        let q = LocationQuery::circular(Point::new(10.0, 10.0), 3.0, NodeId::new(1));
        assert_eq!(q.area(), Region::new(7.0, 7.0, 6.0, 6.0));
        assert_eq!(q.target(), Point::new(10.0, 10.0));
    }

    #[test]
    fn topic_filter_applies() {
        let q = LocationQuery::new(Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(1))
            .with_topic("traffic");
        assert!(q.matches(Point::new(5.0, 5.0), "traffic"));
        assert!(!q.matches(Point::new(5.0, 5.0), "parking"));
        assert!(!q.matches(Point::new(50.0, 5.0), "traffic"));
    }

    #[test]
    fn no_topic_matches_everything_in_area() {
        let q = LocationQuery::new(Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(1));
        assert!(q.matches(Point::new(0.0, 0.0), "anything")); // closed edge
        assert!(q.matches(Point::new(10.0, 10.0), "other"));
    }

    #[test]
    fn display_is_informative() {
        let q = LocationQuery::new(Region::new(0.0, 0.0, 1.0, 1.0), NodeId::new(2)).with_topic("x");
        let s = format!("{q}");
        assert!(s.contains("n2") && s.contains("[x]"));
    }
}
