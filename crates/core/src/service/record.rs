//! Location records: the information items the service disseminates.

use std::fmt;

use geogrid_geometry::Point;

/// A published item of geographic content.
///
/// A record carries a topic (free-form category string, e.g. `"traffic"`
/// or `"parking"`), the position the content is about, an opaque payload,
/// and an optional expiry tick (location content is typically short-lived:
/// a camera frame, a lot's occupancy).
///
/// # Examples
///
/// ```
/// use geogrid_core::service::LocationRecord;
/// use geogrid_geometry::Point;
///
/// let r = LocationRecord::new(1, "traffic", Point::new(10.0, 20.0), b"jam".to_vec())
///     .with_expiry(1_000);
/// assert_eq!(r.topic(), "traffic");
/// assert!(r.is_expired(2_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationRecord {
    id: u64,
    topic: String,
    position: PointBits,
    payload: Vec<u8>,
    expires_at: Option<u64>,
}

/// Internal bit-exact point wrapper so records can derive `Eq`/`Hash`
/// cleanly (positions are never NaN — validated on construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PointBits {
    x: u64,
    y: u64,
}

impl PointBits {
    fn from_point(p: Point) -> Self {
        Self {
            x: p.x.to_bits(),
            y: p.y.to_bits(),
        }
    }

    fn to_point(self) -> Point {
        Point::new(f64::from_bits(self.x), f64::from_bits(self.y))
    }
}

impl LocationRecord {
    /// Creates a record.
    ///
    /// # Panics
    ///
    /// Panics if the position is non-finite or the topic is empty.
    pub fn new(id: u64, topic: impl Into<String>, position: Point, payload: Vec<u8>) -> Self {
        let topic = topic.into();
        assert!(position.is_finite(), "record position must be finite");
        assert!(!topic.is_empty(), "record topic must be non-empty");
        Self {
            id,
            topic,
            position: PointBits::from_point(position),
            payload,
            expires_at: None,
        }
    }

    /// Sets the expiry tick (in the caller's clock domain).
    pub fn with_expiry(mut self, at: u64) -> Self {
        self.expires_at = Some(at);
        self
    }

    /// The record's id (unique per publisher).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The record's topic.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The position the record is about.
    pub fn position(&self) -> Point {
        self.position.to_point()
    }

    /// The opaque payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The expiry tick, if any.
    pub fn expires_at(&self) -> Option<u64> {
        self.expires_at
    }

    /// Whether the record is expired at tick `now`.
    pub fn is_expired(&self, now: u64) -> bool {
        self.expires_at.is_some_and(|t| t <= now)
    }
}

impl fmt::Display for LocationRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "record #{} [{}] at {} ({} bytes)",
            self.id,
            self.topic,
            self.position(),
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let r = LocationRecord::new(7, "parking", Point::new(1.5, 2.5), vec![1, 2, 3]);
        assert_eq!(r.id(), 7);
        assert_eq!(r.topic(), "parking");
        assert_eq!(r.position(), Point::new(1.5, 2.5));
        assert_eq!(r.payload(), &[1, 2, 3]);
        assert_eq!(r.expires_at(), None);
        assert!(!r.is_expired(u64::MAX));
    }

    #[test]
    fn expiry_is_inclusive() {
        let r = LocationRecord::new(1, "t", Point::new(0.0, 0.0), vec![]).with_expiry(100);
        assert!(!r.is_expired(99));
        assert!(r.is_expired(100));
        assert!(r.is_expired(101));
    }

    #[test]
    #[should_panic(expected = "topic must be non-empty")]
    fn empty_topic_rejected() {
        LocationRecord::new(1, "", Point::new(0.0, 0.0), vec![]);
    }

    #[test]
    fn display_mentions_topic() {
        let r = LocationRecord::new(1, "traffic", Point::new(0.0, 0.0), vec![]);
        assert!(format!("{r}").contains("traffic"));
    }
}
