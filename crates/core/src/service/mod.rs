//! The location-service layer.
//!
//! GeoGrid's purpose is serving location-based information: "Inform me of
//! the traffic around Exit 89 on I-85 in the next 30 minutes". Region
//! owners store **location records** published by information sources
//! (traffic cameras, parking-lot owners, users sharing their position),
//! answer **location queries** over rectangular areas, and hold standing
//! **subscriptions** that match future publications — the pub-sub style
//! requests of the paper's motivating examples.
//!
//! The stores are per-region: when a region splits, its store partitions
//! by record/subscription position; when the dual peer takes over after a
//! failure, it activates its replica of the same store.

mod grid;
mod hlc;
mod query;
mod record;
mod store;
mod subscription;

pub use hlc::{Hlc, HlcClock};
pub use query::LocationQuery;
pub use record::LocationRecord;
pub use store::RegionStore;
pub use subscription::Subscription;
