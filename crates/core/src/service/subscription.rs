//! Standing subscriptions over geographic areas.

use std::fmt;

use geogrid_geometry::{Point, Region};

use crate::NodeId;

/// A standing request to be notified of publications in an area until an
/// expiry tick — the paper's "inform me of the traffic around Exit 89 in
/// the next 30 minutes".
///
/// # Examples
///
/// ```
/// use geogrid_core::service::Subscription;
/// use geogrid_core::NodeId;
/// use geogrid_geometry::{Point, Region};
///
/// let sub = Subscription::new(1, Region::new(0.0, 0.0, 2.0, 2.0), NodeId::new(9), 600);
/// assert!(sub.matches(Point::new(1.0, 1.0), "any", 100));
/// assert!(!sub.matches(Point::new(1.0, 1.0), "any", 600)); // expired
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    id: u64,
    area: Region,
    topic: Option<String>,
    subscriber: NodeId,
    expires_at: u64,
}

impl Subscription {
    /// Creates a subscription valid until tick `expires_at`.
    pub fn new(id: u64, area: Region, subscriber: NodeId, expires_at: u64) -> Self {
        Self {
            id,
            area,
            topic: None,
            subscriber,
            expires_at,
        }
    }

    /// Restricts the subscription to records with this topic.
    pub fn with_topic(mut self, topic: impl Into<String>) -> Self {
        self.topic = Some(topic.into());
        self
    }

    /// The subscription id (unique per subscriber).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The watched area.
    pub fn area(&self) -> Region {
        self.area
    }

    /// The topic filter, if any.
    pub fn topic(&self) -> Option<&str> {
        self.topic.as_deref()
    }

    /// The node to notify.
    pub fn subscriber(&self) -> NodeId {
        self.subscriber
    }

    /// The expiry tick.
    pub fn expires_at(&self) -> u64 {
        self.expires_at
    }

    /// Whether the subscription is expired at tick `now`.
    pub fn is_expired(&self, now: u64) -> bool {
        self.expires_at <= now
    }

    /// Whether a publication at `position`/`topic` at tick `now` should be
    /// delivered to this subscriber.
    pub fn matches(&self, position: Point, topic: &str, now: u64) -> bool {
        !self.is_expired(now)
            && self.area.contains_closed(position)
            && self.topic.as_deref().is_none_or(|t| t == topic)
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sub #{} of {} over {} until t={}",
            self.id, self.subscriber, self.area, self.expires_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_requires_area_topic_and_liveness() {
        let sub = Subscription::new(1, Region::new(0.0, 0.0, 4.0, 4.0), NodeId::new(1), 100)
            .with_topic("traffic");
        assert!(sub.matches(Point::new(2.0, 2.0), "traffic", 50));
        assert!(!sub.matches(Point::new(2.0, 2.0), "parking", 50));
        assert!(!sub.matches(Point::new(9.0, 2.0), "traffic", 50));
        assert!(!sub.matches(Point::new(2.0, 2.0), "traffic", 100));
    }

    #[test]
    fn accessors() {
        let sub = Subscription::new(3, Region::new(1.0, 1.0, 2.0, 2.0), NodeId::new(7), 55);
        assert_eq!(sub.id(), 3);
        assert_eq!(sub.subscriber(), NodeId::new(7));
        assert_eq!(sub.expires_at(), 55);
        assert_eq!(sub.topic(), None);
        assert!(!format!("{sub}").is_empty());
    }
}
