//! The per-region content store.

use std::fmt;

use geogrid_geometry::Region;

use crate::service::{LocationQuery, LocationRecord, Subscription};
use crate::NodeId;

/// The store a region's primary owner maintains (and its secondary
/// replicates): location records published into the region plus standing
/// subscriptions watching areas that overlap it.
///
/// # Examples
///
/// ```
/// use geogrid_core::service::{LocationQuery, LocationRecord, RegionStore};
/// use geogrid_core::NodeId;
/// use geogrid_geometry::{Point, Region};
///
/// let mut store = RegionStore::new();
/// store.publish(LocationRecord::new(1, "traffic", Point::new(5.0, 5.0), vec![]), 0);
/// let q = LocationQuery::new(Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(1));
/// assert_eq!(store.query(&q, 0).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegionStore {
    records: Vec<LocationRecord>,
    subscriptions: Vec<Subscription>,
}

impl RegionStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.subscriptions.is_empty()
    }

    /// Publishes a record, returning the subscribers to notify (the
    /// pub-sub delivery of the paper's motivating examples). A re-publish
    /// with the same id replaces the old record (content refresh).
    pub fn publish(&mut self, record: LocationRecord, now: u64) -> Vec<NodeId> {
        self.expire(now);
        let notified = self
            .subscriptions
            .iter()
            .filter(|s| s.matches(record.position(), record.topic(), now))
            .map(Subscription::subscriber)
            .collect();
        self.records.retain(|r| r.id() != record.id());
        self.records.push(record);
        notified
    }

    /// Answers a location query: all live records in the query area that
    /// pass the topic filter.
    pub fn query(&self, query: &LocationQuery, now: u64) -> Vec<&LocationRecord> {
        self.records
            .iter()
            .filter(|r| !r.is_expired(now) && query.matches(r.position(), r.topic()))
            .collect()
    }

    /// Registers a subscription. A subscription with the same
    /// (subscriber, id) replaces the old one (renewal).
    pub fn subscribe(&mut self, sub: Subscription, now: u64) {
        self.expire(now);
        self.subscriptions
            .retain(|s| !(s.id() == sub.id() && s.subscriber() == sub.subscriber()));
        self.subscriptions.push(sub);
    }

    /// Cancels a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, subscriber: NodeId, id: u64) -> bool {
        let before = self.subscriptions.len();
        self.subscriptions
            .retain(|s| !(s.id() == id && s.subscriber() == subscriber));
        self.subscriptions.len() != before
    }

    /// Drops expired records and subscriptions.
    pub fn expire(&mut self, now: u64) {
        self.records.retain(|r| !r.is_expired(now));
        self.subscriptions.retain(|s| !s.is_expired(now));
    }

    /// Splits the store for a region split: entries whose position/area
    /// belongs to `other_half` move to the returned store. Subscriptions
    /// overlapping **both** halves are duplicated into both stores so no
    /// publication is missed.
    pub fn split_for(&mut self, own_half: &Region, other_half: &Region) -> RegionStore {
        let mut other = RegionStore::new();
        let mut kept = Vec::new();
        for r in self.records.drain(..) {
            // Half-open containment: each position lands in exactly one half.
            if other_half.contains(r.position()) {
                other.records.push(r);
            } else {
                kept.push(r);
            }
        }
        self.records = kept;
        let mut kept_subs = Vec::new();
        for s in self.subscriptions.drain(..) {
            let in_other = s.area().intersects(other_half);
            let in_own = s.area().intersects(own_half);
            if in_other {
                other.subscriptions.push(s.clone());
            }
            if in_own || !in_other {
                kept_subs.push(s);
            }
        }
        self.subscriptions = kept_subs;
        other
    }

    /// Absorbs another store (region merge / fail-over replica
    /// activation). Identical subscriptions collapse.
    pub fn absorb(&mut self, other: RegionStore) {
        for r in other.records {
            self.records.retain(|x| x.id() != r.id());
            self.records.push(r);
        }
        for s in other.subscriptions {
            if !self
                .subscriptions
                .iter()
                .any(|x| x.id() == s.id() && x.subscriber() == s.subscriber())
            {
                self.subscriptions.push(s);
            }
        }
    }

    /// Read-only view of live records (for replication).
    pub fn records(&self) -> &[LocationRecord] {
        &self.records
    }

    /// Read-only view of subscriptions (for replication).
    pub fn subscriptions(&self) -> &[Subscription] {
        &self.subscriptions
    }
}

impl fmt::Display for RegionStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store: {} records, {} subscriptions",
            self.records.len(),
            self.subscriptions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogrid_geometry::Point;

    fn record(id: u64, x: f64, y: f64, topic: &str) -> LocationRecord {
        LocationRecord::new(id, topic, Point::new(x, y), vec![])
    }

    #[test]
    fn publish_notifies_matching_subscribers() {
        let mut store = RegionStore::new();
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(5), 1000)
                .with_topic("traffic"),
            0,
        );
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(6), 1000),
            0,
        );
        let notified = store.publish(record(1, 5.0, 5.0, "traffic"), 10);
        assert_eq!(notified.len(), 2);
        let notified = store.publish(record(2, 5.0, 5.0, "parking"), 10);
        assert_eq!(notified, vec![NodeId::new(6)]);
        let notified = store.publish(record(3, 50.0, 5.0, "traffic"), 10);
        assert!(notified.is_empty());
    }

    #[test]
    fn republish_replaces_by_id() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "t"), 0);
        store.publish(record(1, 2.0, 2.0, "t"), 0);
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.records()[0].position(), Point::new(2.0, 2.0));
    }

    #[test]
    fn query_filters_by_area_topic_and_expiry() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "a"), 0);
        store.publish(record(2, 2.0, 2.0, "b").with_expiry(5), 0);
        store.publish(record(3, 50.0, 50.0, "a"), 0);
        let q = LocationQuery::new(Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(1));
        assert_eq!(store.query(&q, 0).len(), 2);
        assert_eq!(store.query(&q, 10).len(), 1); // record 2 expired
        let qa = q.clone().with_topic("a");
        assert_eq!(store.query(&qa, 0).len(), 1);
    }

    #[test]
    fn expiry_sweeps_both_kinds() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "t").with_expiry(10), 0);
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 4.0, 4.0), NodeId::new(1), 10),
            0,
        );
        store.expire(10);
        assert!(store.is_empty());
    }

    #[test]
    fn unsubscribe_by_id() {
        let mut store = RegionStore::new();
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 4.0, 4.0), NodeId::new(1), 100),
            0,
        );
        assert!(store.unsubscribe(NodeId::new(1), 1));
        assert!(!store.unsubscribe(NodeId::new(1), 1));
        assert_eq!(store.subscription_count(), 0);
    }

    #[test]
    fn split_partitions_records_and_duplicates_spanning_subs() {
        let parent = Region::new(0.0, 0.0, 10.0, 10.0);
        let (low, high) = parent.split(geogrid_geometry::SplitAxis::Latitude);
        let mut store = RegionStore::new();
        store.publish(record(1, 5.0, 2.0, "t"), 0); // low half
        store.publish(record(2, 5.0, 8.0, "t"), 0); // high half
        store.subscribe(
            Subscription::new(1, Region::new(4.0, 4.0, 2.0, 2.0), NodeId::new(1), 100),
            0,
        ); // spans the cut at y=5
        let other = store.split_for(&low, &high);
        assert_eq!(store.record_count(), 1);
        assert_eq!(other.record_count(), 1);
        assert_eq!(store.subscription_count(), 1);
        assert_eq!(other.subscription_count(), 1);
    }

    #[test]
    fn absorb_deduplicates() {
        let mut a = RegionStore::new();
        let mut b = RegionStore::new();
        a.publish(record(1, 1.0, 1.0, "t"), 0);
        b.publish(record(1, 2.0, 2.0, "t"), 0);
        b.publish(record(2, 3.0, 3.0, "t"), 0);
        let sub = Subscription::new(1, Region::new(0.0, 0.0, 4.0, 4.0), NodeId::new(1), 100);
        a.subscribe(sub.clone(), 0);
        b.subscribe(sub, 0);
        a.absorb(b);
        assert_eq!(a.record_count(), 2);
        assert_eq!(a.subscription_count(), 1);
    }
}
