//! The per-region content store.
//!
//! Built for GPS-stream workloads — millions of moving objects whose
//! dominant operation is *re-publish* (the same id at a new position):
//!
//! * **Slab slots + id hash.** Records live in a slab of reusable slots
//!   with an id→slot map, so a re-publish is an O(1) slot overwrite
//!   instead of the old `retain` + push over a flat `Vec`.
//! * **Uniform-grid sub-index.** Past [`INDEX_THRESHOLD`] live entries a
//!   store buckets record positions and subscription areas into a
//!   [`StoreGrid`], so range queries touch only overlapping buckets and
//!   a publish consults only its own cell's subscriber list.
//! * **HLC last-write-wins.** Every record carries an [`Hlc`] stamp
//!   minted by the store's clock; replica hand-off during split, merge,
//!   and fail-over resolves duplicate ids deterministically (larger
//!   stamp wins, incoming wins exact ties).
//! * **Expiry wheel.** Deadlines are filed into a timing wheel (near
//!   buckets + far heap) and drained as the clock advances, replacing
//!   the old per-publish full sweep; total expiry work is O(entries),
//!   not O(publishes × entries). [`RegionStore::expiry_work`] counts
//!   entries examined so tests can assert the amortization.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use geogrid_geometry::{Point, Region};
use geogrid_marks::hot_path;

use crate::service::grid::{StoreGrid, INDEX_THRESHOLD, STORE_GRID_DIM};
use crate::service::{Hlc, HlcClock, LocationQuery, LocationRecord, Subscription};
use crate::NodeId;

/// Slots per revolution of the expiry wheel. Deadlines within this many
/// ticks of the cursor sit in per-tick buckets; farther ones wait in a
/// min-heap and migrate into buckets as the cursor approaches.
const WHEEL_SLOTS: u64 = 64;

/// An occupied record slot: the record plus its publish stamp.
#[derive(Debug, Clone, PartialEq)]
struct RecordSlot {
    record: LocationRecord,
    stamp: Hlc,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EntryKind {
    Record,
    Sub,
}

/// A scheduled deadline: validated lazily against the slot's current
/// occupant when drained, so renewals and slot reuse need no cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct WheelEntry {
    at: u64,
    kind: EntryKind,
    slot: u32,
}

/// The lazy expiry wheel: per-tick near buckets plus a far heap.
#[derive(Debug, Clone, Default)]
struct ExpiryWheel {
    /// Empty until the first deadline is filed, then `WHEEL_SLOTS` long.
    buckets: Vec<Vec<WheelEntry>>,
    far: BinaryHeap<Reverse<WheelEntry>>,
    /// High-water mark of every `now` a mutating operation has seen.
    cursor: u64,
    /// Entries examined so far (the amortization contract for tests).
    work: u64,
}

impl ExpiryWheel {
    /// Materialises the near buckets on the first filed deadline. Lazy so
    /// the thousands of per-region stores that never hold a deadline stay
    /// at `size_of::<ExpiryWheel>()`.
    // audit: hot-path-exempt(one-time lazy bucket allocation on the first deadline a wheel ever files)
    fn ensure_buckets(&mut self) {
        if self.buckets.is_empty() {
            self.buckets.resize_with(WHEEL_SLOTS as usize, Vec::new);
        }
    }

    fn schedule(&mut self, at: u64, kind: EntryKind, slot: u32) {
        self.ensure_buckets();
        let entry = WheelEntry { at, kind, slot };
        // Deadlines already at or behind the cursor file one tick ahead so
        // the next advance drains them.
        let due = at.max(self.cursor.saturating_add(1));
        if due - self.cursor <= WHEEL_SLOTS {
            self.buckets[(due % WHEEL_SLOTS) as usize].push(entry);
        } else {
            self.far.push(Reverse(entry));
        }
    }

    /// Moves the cursor to `now`, appending every due entry to `out`.
    fn advance(&mut self, now: u64, out: &mut Vec<WheelEntry>) {
        if now <= self.cursor {
            return;
        }
        let from = self.cursor;
        self.cursor = now;
        if !self.buckets.is_empty() {
            if now - from >= WHEEL_SLOTS {
                // Full revolution: every bucket's turn has come.
                for bucket in &mut self.buckets {
                    self.work += bucket.len() as u64;
                    bucket.retain(|e| {
                        if e.at <= now {
                            out.push(*e);
                            false
                        } else {
                            true
                        }
                    });
                }
            } else {
                for t in from + 1..=now {
                    let bucket = &mut self.buckets[(t % WHEEL_SLOTS) as usize];
                    self.work += bucket.len() as u64;
                    bucket.retain(|e| {
                        if e.at <= now {
                            out.push(*e);
                            false
                        } else {
                            true
                        }
                    });
                }
            }
        }
        // Pull far deadlines that are now within (or behind) the horizon.
        while let Some(Reverse(head)) = self.far.peek() {
            if head.at > now.saturating_add(WHEEL_SLOTS) {
                break;
            }
            let Some(Reverse(e)) = self.far.pop() else {
                break;
            };
            self.work += 1;
            if e.at <= now {
                out.push(e);
            } else {
                if self.buckets.is_empty() {
                    self.buckets.resize_with(WHEEL_SLOTS as usize, Vec::new);
                }
                self.buckets[(e.at % WHEEL_SLOTS) as usize].push(e);
            }
        }
    }
}

/// The store a region's primary owner maintains (and its secondary
/// replicates): location records published into the region plus standing
/// subscriptions watching areas that overlap it.
///
/// Equality is semantic — same live records (with stamps) and the same
/// subscriptions, regardless of slot layout or index state.
///
/// # Examples
///
/// ```
/// use geogrid_core::service::{LocationQuery, LocationRecord, RegionStore};
/// use geogrid_core::NodeId;
/// use geogrid_geometry::{Point, Region};
///
/// let mut store = RegionStore::new();
/// store.publish(LocationRecord::new(1, "traffic", Point::new(5.0, 5.0), vec![]), 0);
/// let q = LocationQuery::new(Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(1));
/// assert_eq!(store.query(&q, 0).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegionStore {
    slots: Vec<Option<RecordSlot>>,
    free_records: Vec<u32>,
    by_id: HashMap<u64, u32>,
    subs: Vec<Option<Subscription>>,
    free_subs: Vec<u32>,
    sub_by_key: HashMap<(NodeId, u64), u32>,
    grid: Option<StoreGrid>,
    clock: HlcClock,
    wheel: ExpiryWheel,
    /// Recycled scratch for drained wheel entries (zero steady-state
    /// allocation on the publish path).
    due_scratch: Vec<WheelEntry>,
}

impl RegionStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-homes the store's HLC clock onto `node` (the owner's id), so
    /// stamps minted here are totally ordered against every other owner's.
    pub fn set_node(&mut self, node: u64) {
        self.clock.set_node(node);
    }

    /// Number of live records.
    pub fn record_count(&self) -> usize {
        self.by_id.len()
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.sub_by_key.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty() && self.sub_by_key.is_empty()
    }

    /// Total expiry-wheel entries examined over this store's lifetime.
    /// The amortization contract: bounded by deadlines filed, independent
    /// of how many publishes observe them.
    pub fn expiry_work(&self) -> u64 {
        self.wheel.work
    }

    /// The live record with `id`, if any.
    pub fn get(&self, id: u64) -> Option<&LocationRecord> {
        let slot = *self.by_id.get(&id)?;
        self.slots[slot as usize].as_ref().map(|s| &s.record)
    }

    /// Publishes a record, returning the subscribers to notify (the
    /// pub-sub delivery of the paper's motivating examples). A re-publish
    /// with the same id replaces the old record in place (content
    /// refresh); a record already expired at `now` still displaces any
    /// older live version but is not stored.
    pub fn publish(&mut self, record: LocationRecord, now: u64) -> Vec<NodeId> {
        let mut notified = Vec::new();
        self.publish_into(record, now, &mut notified);
        notified
    }

    /// [`Self::publish`] into a caller-recycled buffer. Subscribers are
    /// appended in ascending node order (duplicates preserved: one entry
    /// per matching subscription).
    #[hot_path]
    pub fn publish_into(&mut self, record: LocationRecord, now: u64, notified: &mut Vec<NodeId>) {
        notified.clear();
        self.advance(now);
        self.notify_into(record.position(), record.topic(), now, notified);
        if record.is_expired(now) {
            self.remove_record_by_id(record.id());
            return;
        }
        let stamp = self.clock.tick(now);
        let pos = record.position();
        self.store_record(record, stamp);
        self.ensure_indexed(pos);
    }

    /// Appends the subscribers matching a publication at `pos`/`topic` to
    /// `out`, consulting only the position's grid bucket when indexed.
    #[hot_path]
    fn notify_into(&self, pos: Point, topic: &str, now: u64, out: &mut Vec<NodeId>) {
        match &self.grid {
            Some(grid) => {
                for &slot in grid.subs_at(pos) {
                    if let Some(sub) = &self.subs[slot as usize] {
                        if sub.matches(pos, topic, now) {
                            out.push(sub.subscriber());
                        }
                    }
                }
            }
            None => {
                for sub in self.subs.iter().flatten() {
                    if sub.matches(pos, topic, now) {
                        out.push(sub.subscriber());
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Answers a location query: all live records in the query area that
    /// pass the topic filter, in ascending id order.
    pub fn query(&self, query: &LocationQuery, now: u64) -> Vec<&LocationRecord> {
        let mut out = Vec::new();
        match &self.grid {
            Some(grid) => {
                let area = query.area();
                let (c0, c1, r0, r1) = grid.span(&area);
                for row in r0..=r1 {
                    for col in c0..=c1 {
                        for &slot in grid.records_in(row * STORE_GRID_DIM + col) {
                            if let Some(s) = &self.slots[slot as usize] {
                                let r = &s.record;
                                if !r.is_expired(now) && query.matches(r.position(), r.topic()) {
                                    out.push(r);
                                }
                            }
                        }
                    }
                }
            }
            None => {
                for s in self.slots.iter().flatten() {
                    let r = &s.record;
                    if !r.is_expired(now) && query.matches(r.position(), r.topic()) {
                        out.push(r);
                    }
                }
            }
        }
        out.sort_unstable_by_key(|r| r.id());
        out
    }

    /// [`Self::query`] into a caller-recycled id buffer (ascending), the
    /// zero-allocation form for update-heavy drivers.
    #[hot_path]
    pub fn query_ids_into(&self, query: &LocationQuery, now: u64, out: &mut Vec<u64>) {
        out.clear();
        match &self.grid {
            Some(grid) => {
                let area = query.area();
                let (c0, c1, r0, r1) = grid.span(&area);
                for row in r0..=r1 {
                    for col in c0..=c1 {
                        for &slot in grid.records_in(row * STORE_GRID_DIM + col) {
                            if let Some(s) = &self.slots[slot as usize] {
                                let r = &s.record;
                                if !r.is_expired(now) && query.matches(r.position(), r.topic()) {
                                    out.push(r.id());
                                }
                            }
                        }
                    }
                }
            }
            None => {
                for s in self.slots.iter().flatten() {
                    let r = &s.record;
                    if !r.is_expired(now) && query.matches(r.position(), r.topic()) {
                        out.push(r.id());
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Registers a subscription. A subscription with the same
    /// (subscriber, id) replaces the old one (renewal); one already
    /// expired at `now` cancels any existing registration.
    pub fn subscribe(&mut self, sub: Subscription, now: u64) {
        self.advance(now);
        if sub.is_expired(now) {
            self.unsubscribe(sub.subscriber(), sub.id());
            return;
        }
        self.store_sub(sub);
        self.maybe_build_index();
    }

    /// Cancels a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, subscriber: NodeId, id: u64) -> bool {
        match self.sub_by_key.get(&(subscriber, id)).copied() {
            Some(slot) => {
                self.evict_sub(slot);
                true
            }
            None => false,
        }
    }

    /// Drops expired records and subscriptions up to tick `now`
    /// (amortized: examines only entries whose deadline has arrived).
    pub fn expire(&mut self, now: u64) {
        self.advance(now);
    }

    /// Splits the store for a region split: records positioned in
    /// `other_half` move to the returned store. Subscriptions
    /// overlapping **both** halves are duplicated into both stores so no
    /// publication is missed. The new store inherits this store's clock
    /// (causality carries across the split).
    pub fn split_for(&mut self, own_half: &Region, other_half: &Region) -> RegionStore {
        let mut other = RegionStore::new();
        other.clock = self.clock.clone();
        other.wheel.cursor = self.wheel.cursor;
        for slot in 0..self.slots.len() as u32 {
            let belongs = match &self.slots[slot as usize] {
                // Half-open containment: each position lands in exactly one half.
                Some(s) => other_half.contains(s.record.position()),
                None => false,
            };
            if belongs {
                if let Some(s) = self.slots[slot as usize].take() {
                    self.by_id.remove(&s.record.id());
                    if let Some(grid) = self.grid.as_mut() {
                        grid.remove_record(slot, s.record.position());
                    }
                    self.free_records.push(slot);
                    other.insert_replica(s.record, s.stamp);
                }
            }
        }
        for slot in 0..self.subs.len() as u32 {
            let (give, keep) = match &self.subs[slot as usize] {
                Some(s) => {
                    let in_other = s.area().intersects(other_half);
                    let in_own = s.area().intersects(own_half);
                    (in_other, in_own || !in_other)
                }
                None => (false, true),
            };
            if give {
                if let Some(s) = &self.subs[slot as usize] {
                    other.insert_sub_replica(s.clone());
                }
            }
            if !keep {
                self.evict_sub(slot);
            }
        }
        other
    }

    /// Absorbs another store (region merge / fail-over replica
    /// activation). Duplicate record ids resolve by HLC stamp — the
    /// larger stamp wins, the incoming record wins an exact tie.
    /// Duplicate subscriptions keep whichever expires later.
    pub fn absorb(&mut self, other: RegionStore) {
        // Catch up to the absorbed store's clock before merging, so both
        // sides agree on which deadlines have already passed.
        self.advance(other.wheel.cursor);
        for s in other.slots.into_iter().flatten() {
            self.insert_replica(s.record, s.stamp);
        }
        for s in other.subs.into_iter().flatten() {
            self.insert_sub_replica(s);
        }
    }

    /// Installs a replicated record with its original stamp (wire
    /// hand-off, split, merge). Last-write-wins against any existing
    /// record with the same id; the store's clock observes the stamp so
    /// future local writes order after it.
    pub fn insert_replica(&mut self, record: LocationRecord, stamp: Hlc) {
        self.clock.observe(stamp);
        let keep_existing = match self.by_id.get(&record.id()) {
            Some(&slot) => match &self.slots[slot as usize] {
                Some(existing) => existing.stamp > stamp,
                None => false,
            },
            None => false,
        };
        if keep_existing {
            return;
        }
        let pos = record.position();
        self.store_record(record, stamp);
        self.ensure_indexed(pos);
    }

    /// Installs a replicated subscription. On a (subscriber, id)
    /// collision the later-expiring registration survives (ties keep the
    /// existing one).
    pub fn insert_sub_replica(&mut self, sub: Subscription) {
        let key = (sub.subscriber(), sub.id());
        if let Some(&slot) = self.sub_by_key.get(&key) {
            if let Some(existing) = &self.subs[slot as usize] {
                if existing.expires_at() >= sub.expires_at() {
                    return;
                }
            }
        }
        self.store_sub(sub);
        self.maybe_build_index();
    }

    /// Read-only view of live records (for replication).
    pub fn records(&self) -> impl Iterator<Item = &LocationRecord> {
        self.slots.iter().flatten().map(|s| &s.record)
    }

    /// Live records with their publish stamps (for wire hand-off: stamps
    /// must survive replication for last-write-wins to stay coherent).
    pub fn records_with_stamps(&self) -> impl Iterator<Item = (&LocationRecord, Hlc)> {
        self.slots.iter().flatten().map(|s| (&s.record, s.stamp))
    }

    /// Read-only view of subscriptions (for replication).
    pub fn subscriptions(&self) -> impl Iterator<Item = &Subscription> {
        self.subs.iter().flatten()
    }

    /// Drains every deadline due at `now` and evicts the entries that
    /// still hold it (renewed or reused slots validate stale and are
    /// skipped).
    fn advance(&mut self, now: u64) {
        if now <= self.wheel.cursor {
            return;
        }
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.wheel.advance(now, &mut due);
        for e in due.drain(..) {
            match e.kind {
                EntryKind::Record => {
                    let held = match &self.slots[e.slot as usize] {
                        Some(s) => s.record.expires_at() == Some(e.at),
                        None => false,
                    };
                    if held {
                        self.evict_record(e.slot);
                    }
                }
                EntryKind::Sub => {
                    let held = match &self.subs[e.slot as usize] {
                        Some(s) => s.expires_at() == e.at,
                        None => false,
                    };
                    if held {
                        self.evict_sub(e.slot);
                    }
                }
            }
        }
        self.due_scratch = due;
    }

    fn evict_record(&mut self, slot: u32) {
        if let Some(s) = self.slots[slot as usize].take() {
            self.by_id.remove(&s.record.id());
            if let Some(grid) = self.grid.as_mut() {
                grid.remove_record(slot, s.record.position());
            }
            self.free_records.push(slot);
        }
    }

    fn evict_sub(&mut self, slot: u32) {
        if let Some(s) = self.subs[slot as usize].take() {
            self.sub_by_key.remove(&(s.subscriber(), s.id()));
            if let Some(grid) = self.grid.as_mut() {
                grid.remove_sub(slot, &s.area());
            }
            self.free_subs.push(slot);
        }
    }

    fn remove_record_by_id(&mut self, id: u64) {
        if let Some(slot) = self.by_id.get(&id).copied() {
            self.evict_record(slot);
        }
    }

    /// Upserts a record into its slot: O(1) overwrite on re-publish, slab
    /// allocation (free list first) for a new id.
    fn store_record(&mut self, record: LocationRecord, stamp: Hlc) {
        let id = record.id();
        let pos = record.position();
        let expires = record.expires_at();
        let (slot, needs_schedule) = match self.by_id.get(&id).copied() {
            Some(slot) => {
                let prev = self.slots[slot as usize].replace(RecordSlot { record, stamp });
                let mut needs_schedule = expires.is_some();
                if let Some(prev) = prev {
                    if let Some(grid) = self.grid.as_mut() {
                        grid.move_record(slot, prev.record.position(), pos);
                    }
                    // An unchanged deadline already has a pending wheel
                    // entry; refiling it would pile up duplicates under
                    // renewal-heavy streams.
                    needs_schedule &= prev.record.expires_at() != expires;
                }
                (slot, needs_schedule)
            }
            None => {
                let slot = match self.free_records.pop() {
                    Some(s) => {
                        self.slots[s as usize] = Some(RecordSlot { record, stamp });
                        s
                    }
                    None => {
                        let s = self.slots.len() as u32;
                        self.slots.push(Some(RecordSlot { record, stamp }));
                        s
                    }
                };
                self.by_id.insert(id, slot);
                if let Some(grid) = self.grid.as_mut() {
                    grid.insert_record(slot, pos);
                }
                (slot, expires.is_some())
            }
        };
        if needs_schedule {
            if let Some(at) = expires {
                self.wheel.schedule(at, EntryKind::Record, slot);
            }
        }
    }

    /// Upserts a subscription into its slot (renewal re-files the
    /// watched area in the grid).
    fn store_sub(&mut self, sub: Subscription) {
        let key = (sub.subscriber(), sub.id());
        let expires = sub.expires_at();
        let area = sub.area();
        let (slot, needs_schedule) = match self.sub_by_key.get(&key).copied() {
            Some(slot) => {
                let prev = self.subs[slot as usize].replace(sub);
                let mut needs_schedule = true;
                if let Some(prev) = prev {
                    if let Some(grid) = self.grid.as_mut() {
                        grid.remove_sub(slot, &prev.area());
                    }
                    needs_schedule = prev.expires_at() != expires;
                }
                if let Some(grid) = self.grid.as_mut() {
                    grid.insert_sub(slot, &area);
                }
                (slot, needs_schedule)
            }
            None => {
                let slot = match self.free_subs.pop() {
                    Some(s) => {
                        self.subs[s as usize] = Some(sub);
                        s
                    }
                    None => {
                        let s = self.subs.len() as u32;
                        self.subs.push(Some(sub));
                        s
                    }
                };
                self.sub_by_key.insert(key, slot);
                if let Some(grid) = self.grid.as_mut() {
                    grid.insert_sub(slot, &area);
                }
                (slot, true)
            }
        };
        if needs_schedule {
            self.wheel.schedule(expires, EntryKind::Sub, slot);
        }
    }

    /// Builds the grid once the store is large enough, and rebuilds it
    /// with grown bounds when a record lands outside the covered
    /// rectangle. Clamped filings are correct either way (inserts and
    /// probes clamp identically); rebuilding restores selectivity.
    fn ensure_indexed(&mut self, pos: Point) {
        match &self.grid {
            None => self.maybe_build_index(),
            Some(grid) => {
                if !grid.covers(pos) {
                    self.build_grid();
                }
            }
        }
    }

    fn maybe_build_index(&mut self) {
        if self.grid.is_none() && self.by_id.len() + self.sub_by_key.len() > INDEX_THRESHOLD {
            self.build_grid();
        }
    }

    // audit: hot-path-exempt(grid (re)build fires once past INDEX_THRESHOLD and at most O(log extent) times on bounds growth; per-op filings never reach it)
    fn build_grid(&mut self) {
        let bounds = self.learned_bounds();
        let mut grid = StoreGrid::new(bounds);
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(s) = s {
                grid.insert_record(i as u32, s.record.position());
            }
        }
        for (i, s) in self.subs.iter().enumerate() {
            if let Some(s) = s {
                grid.insert_sub(i as u32, &s.area());
            }
        }
        self.grid = Some(grid);
    }

    /// Bounds for a (re)build: the bounding box of live record positions
    /// (falling back to subscription areas), doubled around its center so
    /// nearby movement doesn't trigger immediate rebuilds, then unioned
    /// with any previous bounds so growth is monotone (at most
    /// O(log extent) rebuilds ever).
    fn learned_bounds(&self) -> Region {
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for s in self.slots.iter().flatten() {
            let p = s.record.position();
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if min_x > max_x {
            for s in self.subs.iter().flatten() {
                let a = s.area();
                min_x = min_x.min(a.x());
                min_y = min_y.min(a.y());
                max_x = max_x.max(a.east());
                max_y = max_y.max(a.north());
            }
        }
        if min_x > max_x {
            return Region::new(0.0, 0.0, 1.0, 1.0);
        }
        let w = (max_x - min_x).max(1.0);
        let h = (max_y - min_y).max(1.0);
        let grown = Region::new(min_x - w / 2.0, min_y - h / 2.0, w * 2.0, h * 2.0);
        match &self.grid {
            Some(grid) => {
                let old = grid.bounds();
                let x = grown.x().min(old.x());
                let y = grown.y().min(old.y());
                let east = grown.east().max(old.east());
                let north = grown.north().max(old.north());
                Region::new(x, y, east - x, north - y)
            }
            None => grown,
        }
    }
}

/// Semantic equality: same live records (including stamps) and the same
/// subscriptions, independent of slot layout, free lists, or index
/// state.
impl PartialEq for RegionStore {
    fn eq(&self, other: &Self) -> bool {
        if self.by_id.len() != other.by_id.len() || self.sub_by_key.len() != other.sub_by_key.len()
        {
            return false;
        }
        for s in self.slots.iter().flatten() {
            let matched = match other.by_id.get(&s.record.id()) {
                Some(&slot) => match &other.slots[slot as usize] {
                    Some(o) => o.record == s.record && o.stamp == s.stamp,
                    None => false,
                },
                None => false,
            };
            if !matched {
                return false;
            }
        }
        for s in self.subs.iter().flatten() {
            let matched = match other.sub_by_key.get(&(s.subscriber(), s.id())) {
                Some(&slot) => match &other.subs[slot as usize] {
                    Some(o) => o == s,
                    None => false,
                },
                None => false,
            };
            if !matched {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for RegionStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store: {} records, {} subscriptions",
            self.record_count(),
            self.subscription_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogrid_geometry::Point;

    fn record(id: u64, x: f64, y: f64, topic: &str) -> LocationRecord {
        LocationRecord::new(id, topic, Point::new(x, y), vec![])
    }

    #[test]
    fn publish_notifies_matching_subscribers() {
        let mut store = RegionStore::new();
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(5), 1000)
                .with_topic("traffic"),
            0,
        );
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(6), 1000),
            0,
        );
        let notified = store.publish(record(1, 5.0, 5.0, "traffic"), 10);
        assert_eq!(notified.len(), 2);
        let notified = store.publish(record(2, 5.0, 5.0, "parking"), 10);
        assert_eq!(notified, vec![NodeId::new(6)]);
        let notified = store.publish(record(3, 50.0, 5.0, "traffic"), 10);
        assert!(notified.is_empty());
    }

    #[test]
    fn republish_replaces_by_id() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "t"), 0);
        store.publish(record(1, 2.0, 2.0, "t"), 0);
        assert_eq!(store.record_count(), 1);
        assert_eq!(
            store.records().next().map(LocationRecord::position),
            Some(Point::new(2.0, 2.0))
        );
    }

    #[test]
    fn query_filters_by_area_topic_and_expiry() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "a"), 0);
        store.publish(record(2, 2.0, 2.0, "b").with_expiry(5), 0);
        store.publish(record(3, 50.0, 50.0, "a"), 0);
        let q = LocationQuery::new(Region::new(0.0, 0.0, 10.0, 10.0), NodeId::new(1));
        assert_eq!(store.query(&q, 0).len(), 2);
        assert_eq!(store.query(&q, 10).len(), 1); // record 2 expired
        let qa = q.clone().with_topic("a");
        assert_eq!(store.query(&qa, 0).len(), 1);
    }

    #[test]
    fn expiry_sweeps_both_kinds() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "t").with_expiry(10), 0);
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 4.0, 4.0), NodeId::new(1), 10),
            0,
        );
        store.expire(10);
        assert!(store.is_empty());
    }

    #[test]
    fn unsubscribe_by_id() {
        let mut store = RegionStore::new();
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 4.0, 4.0), NodeId::new(1), 100),
            0,
        );
        assert!(store.unsubscribe(NodeId::new(1), 1));
        assert!(!store.unsubscribe(NodeId::new(1), 1));
        assert_eq!(store.subscription_count(), 0);
    }

    #[test]
    fn split_partitions_records_and_duplicates_spanning_subs() {
        let parent = Region::new(0.0, 0.0, 10.0, 10.0);
        let (low, high) = parent.split(geogrid_geometry::SplitAxis::Latitude);
        let mut store = RegionStore::new();
        store.publish(record(1, 5.0, 2.0, "t"), 0); // low half
        store.publish(record(2, 5.0, 8.0, "t"), 0); // high half
        store.subscribe(
            Subscription::new(1, Region::new(4.0, 4.0, 2.0, 2.0), NodeId::new(1), 100),
            0,
        ); // spans the cut at y=5
        let other = store.split_for(&low, &high);
        assert_eq!(store.record_count(), 1);
        assert_eq!(other.record_count(), 1);
        assert_eq!(store.subscription_count(), 1);
        assert_eq!(other.subscription_count(), 1);
    }

    #[test]
    fn absorb_deduplicates() {
        let mut a = RegionStore::new();
        let mut b = RegionStore::new();
        a.publish(record(1, 1.0, 1.0, "t"), 0);
        b.publish(record(1, 2.0, 2.0, "t"), 0);
        b.publish(record(2, 3.0, 3.0, "t"), 0);
        let sub = Subscription::new(1, Region::new(0.0, 0.0, 4.0, 4.0), NodeId::new(1), 100);
        a.subscribe(sub.clone(), 0);
        b.subscribe(sub, 0);
        a.absorb(b);
        assert_eq!(a.record_count(), 2);
        assert_eq!(a.subscription_count(), 1);
    }

    #[test]
    fn absorb_resolves_duplicate_ids_by_hlc() {
        let mut a = RegionStore::new();
        a.set_node(1);
        let mut b = RegionStore::new();
        b.set_node(2);
        a.publish(record(1, 1.0, 1.0, "t"), 5); // stamp (5, 0, n1)
        b.publish(record(1, 2.0, 2.0, "t"), 3); // stamp (3, 0, n2): older write
        a.absorb(b);
        assert_eq!(
            a.get(1).map(LocationRecord::position),
            Some(Point::new(1.0, 1.0))
        );
        // Absorbing pulls the clock forward: a later local write at a
        // stalled tick still out-stamps the absorbed record.
        let mut c = RegionStore::new();
        c.set_node(3);
        c.publish(record(2, 0.0, 0.0, "t"), 9); // stamp (9, 0, n3)
        a.absorb(c);
        a.publish(record(2, 5.0, 5.0, "t"), 0); // local tick stalled at 0
        assert_eq!(
            a.get(2).map(LocationRecord::position),
            Some(Point::new(5.0, 5.0))
        );
    }

    #[test]
    fn expired_on_arrival_publish_tombstones_the_old_version() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "t"), 0);
        store.publish(record(1, 2.0, 2.0, "t").with_expiry(5), 10);
        assert_eq!(store.record_count(), 0);
    }

    #[test]
    fn expiry_work_is_amortized_across_publishes() {
        let mut store = RegionStore::new();
        let m = 500u64;
        for i in 0..m {
            store.publish(record(i, 1.0, 1.0, "t").with_expiry(10), 0);
        }
        let n = 500u64;
        for i in 0..n {
            store.publish(record(m + i, 2.0, 2.0, "t"), 11 + i);
        }
        assert_eq!(store.record_count(), n as usize);
        // Each of the M expired deadlines is examined once when the clock
        // first passes it — not once per subsequent publish (the old
        // per-publish sweep was O(N·M) here).
        assert!(
            store.expiry_work() <= m + 4 * n,
            "expiry work {} is not amortized",
            store.expiry_work()
        );
    }

    #[test]
    fn far_future_expiries_migrate_through_the_wheel() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "t").with_expiry(10_000), 0);
        store.subscribe(
            Subscription::new(1, Region::new(0.0, 0.0, 4.0, 4.0), NodeId::new(1), 500),
            0,
        );
        store.expire(400);
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.subscription_count(), 1);
        store.expire(9_999);
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.subscription_count(), 0);
        store.expire(10_000);
        assert!(store.is_empty());
    }

    #[test]
    fn renewal_outruns_the_old_deadline() {
        let mut store = RegionStore::new();
        store.publish(record(1, 1.0, 1.0, "t").with_expiry(5), 0);
        store.publish(record(1, 1.0, 1.0, "t").with_expiry(50), 1);
        store.expire(10); // the superseded deadline must validate stale
        assert_eq!(store.record_count(), 1);
        store.expire(50);
        assert_eq!(store.record_count(), 0);
    }

    #[test]
    fn indexed_store_matches_linear_semantics() {
        let mut store = RegionStore::new();
        for i in 0..400u64 {
            store.publish(record(i, (i % 20) as f64, (i / 20) as f64, "t"), 0);
        }
        assert_eq!(store.record_count(), 400);
        let q = LocationQuery::new(Region::new(0.0, 0.0, 5.0, 5.0), NodeId::new(1));
        assert_eq!(store.query(&q, 1).len(), 36); // closed edges: 6×6 lattice points
                                                  // Fan-out through the bucket index.
        store.subscribe(
            Subscription::new(1, Region::new(3.0, 3.0, 2.0, 2.0), NodeId::new(9), 100),
            0,
        );
        let notified = store.publish(record(1000, 4.0, 4.0, "t"), 1);
        assert_eq!(notified, vec![NodeId::new(9)]);
        let notified = store.publish(record(1001, 15.0, 15.0, "t"), 1);
        assert!(notified.is_empty());
        // Zero-allocation query path agrees with the allocating one.
        let mut ids = Vec::new();
        store.query_ids_into(&q, 1, &mut ids);
        let expected: Vec<u64> = store.query(&q, 1).iter().map(|r| r.id()).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn semantic_equality_ignores_slot_layout() {
        let mut a = RegionStore::new();
        let mut b = RegionStore::new();
        a.publish(record(1, 1.0, 1.0, "t"), 0);
        a.publish(record(2, 2.0, 2.0, "t"), 0);
        // Same content, different slot order and churn history.
        b.publish(record(9, 9.0, 9.0, "t"), 0);
        b.publish(record(2, 2.0, 2.0, "t"), 0);
        b.publish(record(9, 9.0, 9.0, "t").with_expiry(1), 2); // tombstone id 9
        b.publish(record(1, 1.0, 1.0, "t"), 0);
        // Stamps differ (different publish histories), so install a's
        // stamped records verbatim into a fresh store instead.
        let mut c = RegionStore::new();
        for (r, stamp) in a.records_with_stamps() {
            c.insert_replica(r.clone(), stamp);
        }
        assert_eq!(a, c);
        assert_ne!(a, b); // same ids for 1 and 2 but different stamps
        assert_eq!(b.record_count(), 2);
    }
}
