//! The per-store uniform-grid spatial sub-index.
//!
//! A [`RegionStore`](crate::service::RegionStore) past a few hundred
//! entries buckets its record *positions* and its subscription *areas*
//! into a [`STORE_GRID_DIM`]² uniform grid, the same incremental-bucket
//! pattern the topology's `GridIndex` uses for region rectangles:
//!
//! * each **record** slot lives in exactly the one cell containing its
//!   position, so a range query touches only the cells its rectangle
//!   overlaps and a moving object's re-publish rewrites at most two
//!   cells (remove from the old, insert into the new — usually the same
//!   cell, a no-op);
//! * each **subscription** slot is listed in every cell its watched area
//!   overlaps (clamped into the grid's bounds), so a publish consults
//!   only the subscriber list of the single cell its position falls in —
//!   fan-out cost is proportional to the subscriptions *near the
//!   movement*, not to all standing subscriptions.
//!
//! Unlike the topology grid, a store has no fixed space: bounds are
//! learned from the record positions actually published (the store level
//! grows them geometrically and rebuilds, amortized O(1) per insert).
//! Sub-cell geometry is `f64` like everything else in the repo; the grid
//! only ever *narrows* candidate sets — exact `matches` checks follow —
//! so clamping at the boundary is always safe, never lossy.

use geogrid_geometry::{Point, Region};

/// Cells per axis of the store grid. 64×64 keeps the whole index under a
/// megabyte while a million uniformly-spread records still average ~244
/// per bucket — a few microseconds of exact checks per bucket touched.
pub(crate) const STORE_GRID_DIM: usize = 64;

/// Live entries (records + subscriptions) below which a store stays
/// unindexed and scans linearly. Keeps the thousands of small per-region
/// stores a simulated overlay carries at a few hundred bytes each; the
/// grid is built the moment a store crosses this size.
pub(crate) const INDEX_THRESHOLD: usize = 256;

/// The grid itself: bucket arrays for record slots and subscription
/// slots over a learned bounding box.
#[derive(Debug, Clone, Default)]
pub(crate) struct StoreGrid {
    origin_x: f64,
    origin_y: f64,
    cell_w: f64,
    cell_h: f64,
    /// Row-major record buckets: slot indexes of records whose position
    /// falls in the cell.
    records: Vec<Vec<u32>>,
    /// Row-major subscription buckets: slot indexes of subscriptions
    /// whose area overlaps the cell.
    subs: Vec<Vec<u32>>,
}

impl StoreGrid {
    /// An empty grid over `bounds` (degenerate bounds get a minimum
    /// extent so cell sizes stay positive).
    pub(crate) fn new(bounds: Region) -> Self {
        let w = bounds.width().max(f64::MIN_POSITIVE);
        let h = bounds.height().max(f64::MIN_POSITIVE);
        Self {
            origin_x: bounds.x(),
            origin_y: bounds.y(),
            cell_w: w / STORE_GRID_DIM as f64,
            cell_h: h / STORE_GRID_DIM as f64,
            records: vec![Vec::new(); STORE_GRID_DIM * STORE_GRID_DIM],
            subs: vec![Vec::new(); STORE_GRID_DIM * STORE_GRID_DIM],
        }
    }

    /// Whether `p` falls inside the grid's covered rectangle (points
    /// outside require a store-level rebuild with grown bounds).
    pub(crate) fn covers(&self, p: Point) -> bool {
        let east = self.origin_x + self.cell_w * STORE_GRID_DIM as f64;
        let north = self.origin_y + self.cell_h * STORE_GRID_DIM as f64;
        p.x >= self.origin_x && p.x <= east && p.y >= self.origin_y && p.y <= north
    }

    /// The covered rectangle (for growth unions).
    pub(crate) fn bounds(&self) -> Region {
        Region::new(
            self.origin_x,
            self.origin_y,
            self.cell_w * STORE_GRID_DIM as f64,
            self.cell_h * STORE_GRID_DIM as f64,
        )
    }

    /// Column of `x`, clamped into range (float→int casts saturate, so
    /// coordinates west of the origin land in column 0).
    fn col(&self, x: f64) -> usize {
        (((x - self.origin_x) / self.cell_w) as usize).min(STORE_GRID_DIM - 1)
    }

    fn row(&self, y: f64) -> usize {
        (((y - self.origin_y) / self.cell_h) as usize).min(STORE_GRID_DIM - 1)
    }

    /// Row-major index of the cell containing `p` (clamped into range).
    pub(crate) fn cell_of(&self, p: Point) -> usize {
        self.row(p.y) * STORE_GRID_DIM + self.col(p.x)
    }

    /// Inclusive `(col_lo, col_hi, row_lo, row_hi)` span of `r`, clamped
    /// into the grid.
    pub(crate) fn span(&self, r: &Region) -> (usize, usize, usize, usize) {
        (
            self.col(r.x()),
            self.col(r.east()),
            self.row(r.y()),
            self.row(r.north()),
        )
    }

    /// Record slots bucketed in the cell at row-major index `cell`.
    pub(crate) fn records_in(&self, cell: usize) -> &[u32] {
        &self.records[cell]
    }

    /// Subscription slots whose area overlaps the cell containing `p`.
    pub(crate) fn subs_at(&self, p: Point) -> &[u32] {
        &self.subs[self.cell_of(p)]
    }

    pub(crate) fn insert_record(&mut self, slot: u32, p: Point) {
        let cell = self.cell_of(p);
        self.records[cell].push(slot);
    }

    pub(crate) fn remove_record(&mut self, slot: u32, p: Point) {
        let cell = self.cell_of(p);
        let bucket = &mut self.records[cell];
        if let Some(i) = bucket.iter().position(|&s| s == slot) {
            bucket.swap_remove(i);
        }
    }

    /// Re-files a record slot that moved from `from` to `to`; a no-op
    /// when both positions share a cell (the common case for GPS-stream
    /// updates: objects move much less than a cell per tick).
    pub(crate) fn move_record(&mut self, slot: u32, from: Point, to: Point) {
        if self.cell_of(from) == self.cell_of(to) {
            return;
        }
        self.remove_record(slot, from);
        self.insert_record(slot, to);
    }

    pub(crate) fn insert_sub(&mut self, slot: u32, area: &Region) {
        let (c0, c1, r0, r1) = self.span(area);
        for row in r0..=r1 {
            for col in c0..=c1 {
                self.subs[row * STORE_GRID_DIM + col].push(slot);
            }
        }
    }

    pub(crate) fn remove_sub(&mut self, slot: u32, area: &Region) {
        let (c0, c1, r0, r1) = self.span(area);
        for row in r0..=r1 {
            for col in c0..=c1 {
                let bucket = &mut self.subs[row * STORE_GRID_DIM + col];
                if let Some(i) = bucket.iter().position(|&s| s == slot) {
                    bucket.swap_remove(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_file_into_one_cell_and_move_incrementally() {
        let mut g = StoreGrid::new(Region::new(0.0, 0.0, 64.0, 64.0));
        g.insert_record(7, Point::new(1.2, 1.2));
        assert_eq!(g.records_in(g.cell_of(Point::new(1.2, 1.2))), &[7]);
        // Move within the same cell (cells are 1×1 here): bucket untouched.
        g.move_record(7, Point::new(1.2, 1.2), Point::new(1.8, 1.8));
        assert_eq!(g.records_in(g.cell_of(Point::new(1.2, 1.2))), &[7]);
        // Move across cells: re-filed.
        g.move_record(7, Point::new(1.8, 1.8), Point::new(50.0, 50.0));
        assert!(g.records_in(g.cell_of(Point::new(1.2, 1.2))).is_empty());
        assert_eq!(g.records_in(g.cell_of(Point::new(50.0, 50.0))), &[7]);
    }

    #[test]
    fn subs_cover_their_span_and_clamp_outside_areas() {
        let mut g = StoreGrid::new(Region::new(0.0, 0.0, 64.0, 64.0));
        let area = Region::new(10.0, 10.0, 5.0, 5.0);
        g.insert_sub(3, &area);
        assert!(g.subs_at(Point::new(12.0, 12.0)).contains(&3));
        assert!(!g.subs_at(Point::new(40.0, 40.0)).contains(&3));
        g.remove_sub(3, &area);
        assert!(g.subs_at(Point::new(12.0, 12.0)).is_empty());
        // An area entirely outside the bounds clamps to the border cells
        // (a superset listing is safe — exact matches follow).
        let outside = Region::new(100.0, 100.0, 5.0, 5.0);
        g.insert_sub(4, &outside);
        assert!(g.subs_at(Point::new(63.9, 63.9)).contains(&4));
    }

    #[test]
    fn tiny_bounds_stay_usable() {
        let g = StoreGrid::new(Region::new(5.0, 5.0, 1e-9, 1e-9));
        assert!(g.covers(Point::new(5.0, 5.0)));
        assert_eq!(g.cell_of(Point::new(5.0, 5.0)), 0);
        assert!(!g.covers(Point::new(6.0, 5.0)));
    }
}
