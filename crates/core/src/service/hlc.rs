//! Hybrid logical clocks for last-write-wins conflict resolution.
//!
//! Every record in a [`RegionStore`](crate::service::RegionStore) carries
//! an [`Hlc`] stamp assigned at publish time. Stamps combine the caller's
//! physical tick (the simulated clock the engine already threads through
//! every operation), a logical counter that breaks ties when many writes
//! share one tick, and the writer's node id as the final tie-break — so
//! any two stamps ever minted by the overlay are totally ordered, and
//! replica hand-off during split / merge / fail-over resolves duplicate
//! record ids deterministically: the larger stamp wins.
//!
//! The generator ([`HlcClock`]) upholds the two HLC invariants:
//!
//! 1. **Local monotonicity** — [`HlcClock::tick`] returns strictly
//!    increasing stamps even if the supplied physical tick stalls or runs
//!    backwards (the logical counter absorbs the difference).
//! 2. **Causality across hand-off** — [`HlcClock::observe`] folds a
//!    remote stamp in, so a store that just absorbed replicated records
//!    never mints a stamp that loses to a record it already holds.

use std::fmt;

/// A hybrid-logical-clock stamp: `(physical, logical, node)`, compared
/// lexicographically.
///
/// # Examples
///
/// ```
/// use geogrid_core::service::Hlc;
///
/// let a = Hlc::new(5, 0, 1);
/// let b = Hlc::new(5, 1, 0);
/// assert!(a < b); // logical counter outranks node id
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hlc {
    physical: u64,
    logical: u32,
    node: u64,
}

impl Hlc {
    /// Creates a stamp from its raw parts.
    pub fn new(physical: u64, logical: u32, node: u64) -> Self {
        Self {
            physical,
            logical,
            node,
        }
    }

    /// The physical component (the publish-time tick).
    pub fn physical(&self) -> u64 {
        self.physical
    }

    /// The logical counter (orders writes within one tick).
    pub fn logical(&self) -> u32 {
        self.logical
    }

    /// The minting node's id (final tie-break).
    pub fn node(&self) -> u64 {
        self.node
    }
}

impl fmt::Display for Hlc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hlc({}.{}@n{})", self.physical, self.logical, self.node)
    }
}

/// The stamp generator a [`RegionStore`](crate::service::RegionStore)
/// owns: remembers the last stamp handed out (or observed) and the local
/// node id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HlcClock {
    last_physical: u64,
    last_logical: u32,
    node: u64,
}

impl HlcClock {
    /// A clock minting stamps for `node`.
    pub fn new(node: u64) -> Self {
        Self {
            last_physical: 0,
            last_logical: 0,
            node,
        }
    }

    /// The node id stamped onto minted stamps.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Re-homes the clock onto a new node id (region hand-off: the store
    /// now lives on a different owner). Past stamps keep their original
    /// minting node.
    pub fn set_node(&mut self, node: u64) {
        self.node = node;
    }

    /// Mints the next stamp at physical tick `now`. Strictly greater than
    /// every stamp this clock has minted or observed, even when `now`
    /// repeats or regresses.
    pub fn tick(&mut self, now: u64) -> Hlc {
        if now > self.last_physical {
            self.last_physical = now;
            self.last_logical = 0;
        } else {
            self.last_logical += 1;
        }
        Hlc::new(self.last_physical, self.last_logical, self.node)
    }

    /// Folds a remote stamp into the clock (replica hand-off), so future
    /// [`Self::tick`]s order after it.
    pub fn observe(&mut self, remote: Hlc) {
        if remote.physical > self.last_physical
            || (remote.physical == self.last_physical && remote.logical > self.last_logical)
        {
            self.last_physical = remote.physical;
            self.last_logical = remote.logical;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_order_lexicographically() {
        assert!(Hlc::new(1, 9, 9) < Hlc::new(2, 0, 0));
        assert!(Hlc::new(2, 0, 9) < Hlc::new(2, 1, 0));
        assert!(Hlc::new(2, 1, 0) < Hlc::new(2, 1, 1));
    }

    #[test]
    fn tick_is_strictly_monotonic_under_stalled_and_reversed_time() {
        let mut clock = HlcClock::new(7);
        let mut prev = clock.tick(5);
        for now in [5, 5, 3, 0, 6, 6, 2] {
            let next = clock.tick(now);
            assert!(next > prev, "{next} should exceed {prev}");
            assert_eq!(next.node(), 7);
            prev = next;
        }
    }

    #[test]
    fn observe_pulls_the_clock_forward_only() {
        let mut clock = HlcClock::new(1);
        clock.observe(Hlc::new(10, 3, 9));
        assert!(clock.tick(2) > Hlc::new(10, 3, 9));
        // A stale remote stamp must not rewind the clock.
        let high = clock.tick(20);
        clock.observe(Hlc::new(4, 0, 9));
        assert!(clock.tick(0) > high);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", Hlc::new(3, 1, 4)), "hlc(3.1@n4)");
    }
}
