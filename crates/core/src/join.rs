//! Node bootstrap: the basic and dual-peer join protocols, departures,
//! and orphan repair.
//!
//! Basic join (§2.1): the joiner routes a join request to the region
//! covering its own coordinate; that region's owner splits the region in
//! half and hands one half (plus the relevant neighbor list) to the joiner.
//!
//! Dual-peer join (§2.3): instead of splitting immediately, the joiner
//! probes the covering region **and its neighbors**. It prefers to fill a
//! half-full region whose owner has the least capacity (becoming primary if
//! it is the stronger of the two); only if every candidate already has a
//! dual peer does it split — choosing the candidate whose *primary* is
//! weakest, and then pairing up with the weaker owner of the two halves.

use geogrid_geometry::{Point, Region};

use crate::routing;
use crate::topology::Role;
use crate::{CoreError, NodeId, RegionId, Topology};

/// Minimum region extent (miles) a split may produce: ~1.6 meters on the
/// paper's 64-mile plane.
///
/// Without a floor, the dual-peer victim rule ("split the region whose
/// primary is weakest") can re-split the same region geometrically until
/// its edges fall below floating-point comparison tolerances. Real
/// deployments need a floor anyway — a region the size of a doormat
/// serves no location-query purpose. When every nearby candidate is at
/// the floor, the join walks outward ring by ring to the nearest region
/// that can still accept or split.
pub const MIN_SPLIT_EXTENT: f64 = 1e-3;

/// Whether splitting `region` keeps both halves above the extent floor.
pub fn is_splittable(region: &Region) -> bool {
    region.width().max(region.height()) >= 2.0 * MIN_SPLIT_EXTENT
        && region.width().min(region.height()) >= MIN_SPLIT_EXTENT
}

/// Breadth-first rings of regions around `from` (excluding it),
/// deterministic order; used to find a join target when the local
/// neighborhood is saturated at the extent floor.
fn bfs_rings(topo: &Topology, from: RegionId) -> Vec<RegionId> {
    let mut seen = std::collections::HashSet::new();
    seen.insert(from);
    let mut frontier = vec![from];
    let mut out = Vec::new();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &rid in &frontier {
            let Some(entry) = topo.region(rid) else {
                continue;
            };
            for &n in entry.neighbors() {
                if seen.insert(n) {
                    next.push(n);
                }
            }
        }
        next.sort();
        out.extend(next.iter().copied());
        frontier = next;
    }
    out
}

/// What a join did to the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// The joiner became the primary owner of a freshly split region.
    SplitPrimary {
        /// The joiner's new region.
        region: RegionId,
    },
    /// The joiner filled a half-full region as its secondary.
    FilledSecondary {
        /// The region joined.
        region: RegionId,
    },
    /// The joiner filled a half-full region and, being stronger than the
    /// incumbent, took over as primary (the incumbent became secondary).
    FilledPrimary {
        /// The region joined.
        region: RegionId,
    },
    /// Dual-peer mode: every candidate was full, so a region was split and
    /// the joiner paired with the weaker half-owner.
    SplitSecondary {
        /// The region the joiner co-owns after the split.
        region: RegionId,
        /// The region slot created by the split (may equal `region`).
        new_region: RegionId,
        /// Whether the joiner ended up primary there.
        as_primary: bool,
    },
}

impl JoinOutcome {
    /// The region the joiner ended up owning (or co-owning).
    pub fn region(&self) -> RegionId {
        match *self {
            JoinOutcome::SplitPrimary { region }
            | JoinOutcome::FilledSecondary { region }
            | JoinOutcome::FilledPrimary { region }
            | JoinOutcome::SplitSecondary { region, .. } => region,
        }
    }

    /// The region slot this join created, if it split one.
    pub fn created_region(&self) -> Option<RegionId> {
        match *self {
            JoinOutcome::SplitPrimary { region } => Some(region),
            JoinOutcome::SplitSecondary { new_region, .. } => Some(new_region),
            _ => None,
        }
    }
}

/// Performs a **basic GeoGrid** join: route from `entry` to the region
/// covering `coord`, then split it.
///
/// Returns the joiner's node id and outcome.
///
/// # Errors
///
/// * [`CoreError::OutOfSpace`] if `coord` is outside the space.
/// * Routing/region errors propagated from the topology.
pub fn join_basic(
    topo: &mut Topology,
    entry: RegionId,
    coord: Point,
    capacity: f64,
) -> Result<(NodeId, JoinOutcome), CoreError> {
    routing::with_thread_scratch(|scratch| join_basic_with(topo, entry, coord, capacity, scratch))
}

/// [`join_basic`] with a caller-provided routing scratch: repeated joins
/// (network builds) reuse its buffers and next-hop cache instead of
/// allocating per join.
///
/// # Errors
///
/// Same conditions as [`join_basic`].
pub fn join_basic_with(
    topo: &mut Topology,
    entry: RegionId,
    coord: Point,
    capacity: f64,
    scratch: &mut routing::RouteScratch,
) -> Result<(NodeId, JoinOutcome), CoreError> {
    let mut rid = routing::greedy_into(topo, entry, coord, scratch)?;
    // Respect the extent floor: if the covering region is already minimal,
    // split the nearest splittable region instead (the geographic
    // association is intentionally breakable, §2.4).
    let covering_region = topo
        .region(rid)
        .ok_or(CoreError::UnknownRegion(rid))?
        .region();
    if !is_splittable(&covering_region) {
        rid = bfs_rings(topo, rid)
            .into_iter()
            .find(|&c| topo.region(c).is_some_and(|e| is_splittable(&e.region())))
            .ok_or(CoreError::RoutingFailed { hops: 0 })?;
    }
    let primary = topo
        .region(rid)
        .ok_or(CoreError::UnknownRegion(rid))?
        .primary();
    let joiner = topo.register_node(coord, capacity);
    let new_region = topo.split_region(rid, primary, joiner)?;
    Ok((joiner, JoinOutcome::SplitPrimary { region: new_region }))
}

/// Performs a **dual-peer** join per §2.3.
///
/// # Errors
///
/// Same conditions as [`join_basic`].
pub fn join_dual(
    topo: &mut Topology,
    entry: RegionId,
    coord: Point,
    capacity: f64,
) -> Result<(NodeId, JoinOutcome), CoreError> {
    routing::with_thread_scratch(|scratch| join_dual_with(topo, entry, coord, capacity, scratch))
}

/// [`join_dual`] with a caller-provided routing scratch (see
/// [`join_basic_with`]).
///
/// # Errors
///
/// Same conditions as [`join_basic`].
pub fn join_dual_with(
    topo: &mut Topology,
    entry: RegionId,
    coord: Point,
    capacity: f64,
    scratch: &mut routing::RouteScratch,
) -> Result<(NodeId, JoinOutcome), CoreError> {
    let rid = routing::greedy_into(topo, entry, coord, scratch)?;

    // Candidate set: the covering region and its neighbors.
    let mut candidates = vec![rid];
    candidates.extend(
        topo.region(rid)
            .ok_or(CoreError::UnknownRegion(rid))?
            .neighbors()
            .iter()
            .copied(),
    );

    let capacity_of =
        |topo: &Topology, node: NodeId| topo.node(node).map(|n| n.capacity()).unwrap_or(0.0);

    // Prefer a half-full candidate whose owner has the least capacity.
    let half_full = candidates
        .iter()
        .copied()
        .filter(|&c| topo.region(c).is_some_and(|e| !e.is_full()))
        .min_by(|&a, &b| {
            let ca = capacity_of(
                topo,
                topo.region(a)
                    .expect("invariant: candidates are filtered to live regions")
                    .primary(),
            );
            let cb = capacity_of(
                topo,
                topo.region(b)
                    .expect("invariant: candidates are filtered to live regions")
                    .primary(),
            );
            ca.partial_cmp(&cb)
                .expect("invariant: capacities are finite (NodeInfo::new enforces it)")
                .then_with(|| a.cmp(&b))
        });

    if let Some(target) = half_full {
        let joiner = topo.register_node(coord, capacity);
        topo.set_secondary(target, joiner)?;
        let incumbent = topo
            .region(target)
            .expect("invariant: candidates are filtered to live regions")
            .primary();
        if capacity > capacity_of(topo, incumbent) {
            // The new node is stronger: after copying state it takes over
            // as primary (§2.3, "Node Join").
            topo.swap_roles(target)?;
            return Ok((joiner, JoinOutcome::FilledPrimary { region: target }));
        }
        return Ok((joiner, JoinOutcome::FilledSecondary { region: target }));
    }

    // All candidates are full: split the one whose primary is weakest,
    // among those still above the extent floor.
    let weakest_splittable = |topo: &Topology, set: &[RegionId]| {
        set.iter()
            .copied()
            .filter(|&c| topo.region(c).is_some_and(|e| is_splittable(&e.region())))
            .min_by(|&a, &b| {
                let ca = capacity_of(
                    topo,
                    topo.region(a)
                        .expect("invariant: candidates are filtered to live regions")
                        .primary(),
                );
                let cb = capacity_of(
                    topo,
                    topo.region(b)
                        .expect("invariant: candidates are filtered to live regions")
                        .primary(),
                );
                ca.partial_cmp(&cb)
                    .expect("invariant: capacities are finite (NodeInfo::new enforces it)")
                    .then_with(|| a.cmp(&b))
            })
    };
    let victim = match weakest_splittable(topo, &candidates) {
        Some(v) => v,
        None => {
            // Local neighborhood saturated at the floor: walk outward to
            // the nearest region that is half-full (fill it) or
            // splittable (split it).
            let mut found = None;
            for c in bfs_rings(topo, rid) {
                let Some(e) = topo.region(c) else { continue };
                if !e.is_full() {
                    let joiner = topo.register_node(coord, capacity);
                    topo.set_secondary(c, joiner)?;
                    let incumbent = topo
                        .region(c)
                        .expect("invariant: ring-walk candidates are live regions")
                        .primary();
                    if capacity > capacity_of(topo, incumbent) {
                        topo.swap_roles(c)?;
                        return Ok((joiner, JoinOutcome::FilledPrimary { region: c }));
                    }
                    return Ok((joiner, JoinOutcome::FilledSecondary { region: c }));
                }
                if is_splittable(&e.region()) {
                    found = Some(c);
                    break;
                }
            }
            found.ok_or(CoreError::RoutingFailed { hops: 0 })?
        }
    };
    let entry_v = topo
        .region(victim)
        .expect("invariant: candidates are filtered to live regions");
    let primary = entry_v.primary();
    let secondary = entry_v
        .secondary()
        .expect("invariant: the split victim is full — no half-full candidate existed");
    let new_half = topo.split_region(victim, primary, secondary)?;

    // The joiner pairs with the weaker of the two half-owners.
    let weak_half = if capacity_of(topo, primary) <= capacity_of(topo, secondary) {
        victim
    } else {
        new_half
    };
    let joiner = topo.register_node(coord, capacity);
    topo.set_secondary(weak_half, joiner)?;
    let incumbent = topo
        .region(weak_half)
        .expect("invariant: both split halves are live")
        .primary();
    let as_primary = capacity > capacity_of(topo, incumbent);
    if as_primary {
        topo.swap_roles(weak_half)?;
    }
    Ok((
        joiner,
        JoinOutcome::SplitSecondary {
            region: weak_half,
            new_region: new_half,
            as_primary,
        },
    ))
}

/// Gracefully removes a node per §2.3, repairing an orphaned region if the
/// departing node was a sole owner.
///
/// # Errors
///
/// [`CoreError::UnknownNode`] if the node is not in the network, or a
/// repair error (see [`repair_orphan`]).
pub fn depart(topo: &mut Topology, node: NodeId) -> Result<(), CoreError> {
    if let Some(orphan) = topo.remove_node(node)? {
        repair_orphan(topo, orphan)?;
    }
    Ok(())
}

/// Repairs a region whose last owner departed or failed.
///
/// Strategy, cheapest first:
/// 1. **Steal a nearby secondary** — breadth-first over the neighbor graph
///    (unbounded TTL: correctness beats locality for repair), take the
///    closest region's secondary and adopt it as the orphan's primary.
/// 2. **Merge with a neighbor** — if some neighbor's rectangle re-forms a
///    rectangle with the orphan, that neighbor absorbs the orphan.
/// 3. **Free a node elsewhere** — merge some *other* mergeable region pair
///    (a sibling leaf pair of the split tree always exists), making the
///    weaker of the two owners the merged region's secondary, then steal
///    that secondary for the orphan. This is the CAN-style hand-off chain
///    collapsed into one deterministic step.
///
/// # Errors
///
/// Exhaustion is reported as `RoutingFailed { hops: 0 }`; with ≥ 2 live
/// regions one of the three strategies always applies, so this only
/// occurs on a single-region network whose sole owner vanished.
pub fn repair_orphan(topo: &mut Topology, orphan: RegionId) -> Result<(), CoreError> {
    // 1. BFS for the nearest region with a secondary to steal.
    let mut frontier = vec![orphan];
    let mut seen = std::collections::HashSet::new();
    seen.insert(orphan);
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &rid in &frontier {
            let Some(entry) = topo.region(rid) else {
                continue;
            };
            for &n in entry.neighbors() {
                if seen.insert(n) {
                    next.push(n);
                }
            }
        }
        // Deterministic order.
        next.sort();
        for &candidate in &next {
            if topo.region(candidate).is_some_and(|e| e.is_full()) {
                let stolen = topo.take_secondary(candidate)?;
                topo.adopt_region(orphan, stolen)?;
                return Ok(());
            }
        }
        frontier = next;
    }
    // 2. Merge with a mergeable neighbor.
    let orphan_region = topo
        .region(orphan)
        .ok_or(CoreError::UnknownRegion(orphan))?
        .region();
    let neighbors: Vec<RegionId> = topo
        .region(orphan)
        .ok_or(CoreError::UnknownRegion(orphan))?
        .neighbors()
        .to_vec();
    for n in neighbors {
        let Some(e) = topo.region(n) else { continue };
        if e.region().merge(&orphan_region).is_some() {
            let primary = e.primary();
            let secondary = e.secondary();
            topo.merge_regions(n, orphan, primary, secondary)?;
            return Ok(());
        }
    }
    // 3. Merge some other sibling pair of sole-owner regions to free a
    // node, then adopt it. Deterministic: lowest-id mergeable pair.
    let ids: Vec<RegionId> = topo.region_ids().filter(|&r| r != orphan).collect();
    for &a in &ids {
        let Some(ea) = topo.region(a) else { continue };
        if ea.is_full() {
            continue; // would have been found by the BFS steal
        }
        let candidates: Vec<RegionId> = ea
            .neighbors()
            .iter()
            .copied()
            .filter(|&b| b != orphan && b > a)
            .collect();
        for b in candidates {
            let Some(eb) = topo.region(b) else { continue };
            if eb.is_full() {
                continue;
            }
            let Some(ea) = topo.region(a) else { continue };
            if ea.region().merge(&eb.region()).is_none() {
                continue;
            }
            let (pa, pb) = (ea.primary(), eb.primary());
            let cap = |n: NodeId| topo.node(n).map(|i| i.capacity()).unwrap_or(0.0);
            let (primary, secondary) = if cap(pa) >= cap(pb) {
                (pa, pb)
            } else {
                (pb, pa)
            };
            topo.merge_regions(a, b, primary, Some(secondary))?;
            let freed = topo.take_secondary(a)?;
            topo.adopt_region(orphan, freed)?;
            return Ok(());
        }
    }
    Err(CoreError::RoutingFailed { hops: 0 })
}

/// Crash-handling per §2.3 "Failure Recover": identical structural outcome
/// to [`depart`] — the secondary activates, or the repair process runs.
/// (Data-loss differences between crash and graceful departure live in the
/// [service layer](crate::service), not the topology.)
///
/// # Errors
///
/// See [`depart`].
pub fn fail(topo: &mut Topology, node: NodeId) -> Result<(), CoreError> {
    depart(topo, node)
}

/// Convenience used by tests and the builder: the role the joiner holds
/// after `outcome`.
pub fn resulting_role(topo: &Topology, joiner: NodeId) -> Option<Role> {
    topo.assignment(joiner).map(|(_, role)| role)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogrid_geometry::Space;

    fn boot() -> (Topology, RegionId) {
        let mut t = Topology::new(Space::paper_evaluation());
        let n = t.register_node(Point::new(10.0, 10.0), 10.0);
        let r = t.bootstrap(n).unwrap();
        (t, r)
    }

    #[test]
    fn basic_join_splits_covering_region() {
        let (mut t, r) = boot();
        let (j, outcome) = join_basic(&mut t, r, Point::new(50.0, 50.0), 20.0).unwrap();
        let jr = outcome.region();
        assert!(t
            .region(jr)
            .unwrap()
            .covers(Point::new(50.0, 50.0), t.space()));
        assert_eq!(t.region(jr).unwrap().primary(), j);
        assert_eq!(t.region_count(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn basic_join_many_keeps_invariants() {
        let (mut t, r) = boot();
        for i in 0..100 {
            let x = ((i as f64 * 0.754877666) % 1.0) * 63.0 + 0.5;
            let y = ((i as f64 * 0.569840296) % 1.0) * 63.0 + 0.5;
            join_basic(&mut t, r, Point::new(x, y), 10.0).unwrap();
        }
        assert_eq!(t.region_count(), 101);
        t.validate().unwrap();
    }

    #[test]
    fn dual_join_fills_before_splitting() {
        let (mut t, r) = boot();
        // First dual join must become the dual peer of the only region.
        let (_, o1) = join_dual(&mut t, r, Point::new(50.0, 50.0), 5.0).unwrap();
        assert_eq!(o1, JoinOutcome::FilledSecondary { region: r });
        assert_eq!(t.region_count(), 1);
        // Second dual join: region is full, must split.
        let (_, o2) = join_dual(&mut t, r, Point::new(40.0, 40.0), 5.0).unwrap();
        assert!(matches!(o2, JoinOutcome::SplitSecondary { .. }));
        assert_eq!(t.region_count(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn stronger_joiner_takes_primary_role() {
        let (mut t, r) = boot(); // incumbent capacity 10
        let (j, o) = join_dual(&mut t, r, Point::new(50.0, 50.0), 1000.0).unwrap();
        assert_eq!(o, JoinOutcome::FilledPrimary { region: r });
        assert_eq!(t.region(r).unwrap().primary(), j);
        t.validate().unwrap();
    }

    #[test]
    fn dual_join_targets_weakest_owner() {
        let (mut t, r) = boot(); // owner capacity 10 at (10,10)
                                 // Fill root with a strong secondary, then split so we have two
                                 // regions with known primaries.
        join_dual(&mut t, r, Point::new(50.0, 50.0), 100.0).unwrap();
        join_dual(&mut t, r, Point::new(30.0, 30.0), 100.0).unwrap();
        t.validate().unwrap();
        // Now find the weakest half-full primary; the next join must pair
        // with it regardless of where the joiner lands.
        let weakest = t
            .regions()
            .filter(|(_, e)| !e.is_full())
            .min_by(|(_, a), (_, b)| {
                let ca = t.node(a.primary()).unwrap().capacity();
                let cb = t.node(b.primary()).unwrap().capacity();
                ca.partial_cmp(&cb).unwrap()
            })
            .map(|(rid, _)| rid);
        if let Some(weakest) = weakest {
            let entry = t.first_region().unwrap();
            let (_, o) = join_dual(&mut t, entry, Point::new(32.0, 33.0), 7.0).unwrap();
            // The chosen region must be among the covering region's
            // neighborhood; when the weakest is in that neighborhood it is
            // chosen.
            if o.region() == weakest {
                assert!(matches!(
                    o,
                    JoinOutcome::FilledSecondary { .. } | JoinOutcome::FilledPrimary { .. }
                ));
            }
            t.validate().unwrap();
        }
    }

    #[test]
    fn depart_secondary_and_primary() {
        let (mut t, r) = boot();
        let (s, _) = join_dual(&mut t, r, Point::new(50.0, 50.0), 5.0).unwrap();
        // Secondary departs.
        depart(&mut t, s).unwrap();
        assert!(!t.region(r).unwrap().is_full());
        t.validate().unwrap();
        // Primary departs with a secondary in place: promotion.
        let (s2, _) = join_dual(&mut t, r, Point::new(20.0, 20.0), 5.0).unwrap();
        let p = t.region(r).unwrap().primary();
        depart(&mut t, p).unwrap();
        assert_eq!(t.region(r).unwrap().primary(), s2);
        t.validate().unwrap();
    }

    #[test]
    fn sole_owner_departure_steals_nearby_secondary() {
        let (mut t, r) = boot();
        // Build: split into two regions; the other region's owner is the
        // weakest in the neighborhood, so the dual join pairs with it.
        let (j, o) = join_basic(&mut t, r, Point::new(50.0, 50.0), 1.0).unwrap();
        let other = o.region();
        let (s, _) = join_dual(&mut t, other, Point::new(55.0, 55.0), 0.5).unwrap();
        assert!(t.region(other).unwrap().is_full());
        // The sole owner of r departs; repair must steal `other`'s
        // secondary and adopt it as r's primary.
        let sole = t.region(r).unwrap().primary();
        depart(&mut t, sole).unwrap();
        assert!(!t.region(other).unwrap().is_full());
        assert_eq!(t.region(r).unwrap().primary(), s);
        assert_eq!(t.region(other).unwrap().primary(), j);
        t.validate().unwrap();
    }

    #[test]
    fn sole_owner_departure_merges_when_no_secondary_exists() {
        let (mut t, r) = boot();
        let (_, o) = join_basic(&mut t, r, Point::new(50.0, 50.0), 10.0).unwrap();
        let other = o.region();
        // Two sole-owner sibling halves; one departs -> merge.
        let departing = t.region(other).unwrap().primary();
        depart(&mut t, departing).unwrap();
        assert_eq!(t.region_count(), 1);
        assert_eq!(t.region(r).unwrap().region(), t.space().bounds());
        t.validate().unwrap();
    }

    #[test]
    fn repair_frees_a_node_when_no_secondary_or_sibling_exists() {
        let (mut t, r) = boot();
        // Build 4 sole-owner quadrants: the SW region's sibling (the north
        // half) is subdivided, so when SW's owner leaves, neither a
        // secondary steal nor a direct merge applies to it after we also
        // split its own sibling... Construct: split space into 4 quads.
        let (_, o1) = join_basic(&mut t, r, Point::new(10.0, 50.0), 10.0).unwrap(); // north half
        let north = o1.region();
        let (_, _o2) = join_basic(&mut t, r, Point::new(50.0, 10.0), 10.0).unwrap(); // SE quad
        let (_, _o3) = join_basic(&mut t, north, Point::new(50.0, 50.0), 10.0).unwrap(); // NE quad
        assert_eq!(t.region_count(), 4);
        t.validate().unwrap();
        // Split the NE quad once more so the NW quad has no mergeable
        // sibling either? NW (north) merges with NE only if NE is whole.
        // Depart the NW owner: its neighbors are SW (64x32-sibling? no:
        // north was split so SW's sibling is gone) — exercise the
        // fallback by departing SW's owner whose sibling (north half) no
        // longer exists as one rectangle.
        let sw_owner = t.region(r).unwrap().primary();
        depart(&mut t, sw_owner).unwrap();
        t.validate().unwrap();
        // Coverage is intact: every probe point has exactly one region.
        for p in [
            Point::new(5.0, 5.0),
            Point::new(50.0, 5.0),
            Point::new(5.0, 50.0),
            Point::new(50.0, 50.0),
        ] {
            t.locate(p).unwrap();
        }
    }

    #[test]
    fn fail_matches_depart_structurally() {
        let (mut t, r) = boot();
        let (s, _) = join_dual(&mut t, r, Point::new(50.0, 50.0), 500.0).unwrap();
        // s became primary (stronger); crash it.
        assert_eq!(t.region(r).unwrap().primary(), s);
        fail(&mut t, s).unwrap();
        assert!(t.region(r).unwrap().secondary().is_none());
        t.validate().unwrap();
    }

    #[test]
    fn splits_respect_the_extent_floor() {
        // Hammer one corner with dual joins: the weakest-victim rule
        // would otherwise re-split the same region until its edges fall
        // below f64 comparison tolerance (regression: r804/r831 sliver).
        let (mut t, r) = boot();
        for i in 0..400 {
            let p = Point::new(
                63.99 + (i % 7) as f64 * 1e-4,
                47.99 + (i % 11) as f64 * 1e-4,
            );
            let cap = [1.0, 10.0, 100.0][i % 3];
            join_dual(&mut t, r, p, cap).unwrap();
        }
        t.validate().unwrap();
        for (_, e) in t.regions() {
            let region = e.region();
            assert!(
                region.width().min(region.height()) >= MIN_SPLIT_EXTENT / 2.0,
                "sliver survived: {region}"
            );
        }
    }

    #[test]
    fn basic_joins_respect_the_extent_floor() {
        let (mut t, r) = boot();
        for i in 0..300 {
            let p = Point::new(1.0 + (i % 5) as f64 * 1e-5, 1.0 + (i % 3) as f64 * 1e-5);
            join_basic(&mut t, r, p, 10.0).unwrap();
        }
        t.validate().unwrap();
        for (_, e) in t.regions() {
            let region = e.region();
            assert!(
                region.width().min(region.height()) >= MIN_SPLIT_EXTENT / 2.0,
                "sliver survived: {region}"
            );
        }
    }

    #[test]
    fn role_query_helper() {
        let (mut t, r) = boot();
        let (j, _) = join_dual(&mut t, r, Point::new(50.0, 50.0), 5.0).unwrap();
        assert_eq!(resulting_role(&t, j), Some(Role::Secondary));
    }
}
