//! Identifiers for nodes and regions.

use std::fmt;

/// Identifier of a GeoGrid node (an end-system proxy).
///
/// Node ids are allocated by the topology (or carried by the transport)
/// and never reused.
///
/// # Examples
///
/// ```
/// use geogrid_core::NodeId;
///
/// let id = NodeId::new(7);
/// assert_eq!(id.as_u64(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Wraps a raw id.
    pub fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

/// Identifier of a region (an ownership slot in the topology).
///
/// Region ids are slab indices: stable across ownership changes, freed and
/// reusable after a merge removes the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(u32);

impl RegionId {
    /// Wraps a raw slab index.
    pub fn new(raw: u32) -> Self {
        RegionId(raw)
    }

    /// The raw slab index.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The slab index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for RegionId {
    fn from(raw: u32) -> Self {
        RegionId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_ordering() {
        assert_eq!(NodeId::new(3).as_u64(), 3);
        assert_eq!(NodeId::from(9), NodeId::new(9));
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(RegionId::new(5).index(), 5);
        assert_eq!(RegionId::from(5), RegionId::new(5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", NodeId::new(4)), "n4");
        assert_eq!(format!("{}", RegionId::new(2)), "r2");
    }
}
