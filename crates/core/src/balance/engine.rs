//! The adaptation engine: trigger checks, plan application, and rounds.

use geogrid_metrics::Summary;
use geogrid_workload::WorkloadGrid;

use crate::balance::{
    mechanisms::{is_overloaded, plan_for_region},
    AdaptationPlan, BalanceConfig, Mechanism,
};
use crate::load::LoadMap;
use crate::{CoreError, Topology};

/// One executed adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedAdaptation {
    /// The plan that was executed.
    pub plan: AdaptationPlan,
}

/// Statistics recorded after each adaptation round (Figures 7 and 8 plot
/// these by round; Figures 9 and 10 plot per-operation recordings).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Round number, starting at 1.
    pub round: usize,
    /// Adaptations executed in this round.
    pub adaptations: usize,
    /// Workload-index summary over all nodes after the round.
    pub summary: Summary,
}

/// Runs the paper's load-balance adaptation over a topology.
///
/// "Each node periodically exchanges workload statistic information with
/// its neighbors" — a round models one such period: every region checks
/// the √2 trigger (in ascending region-id order for determinism) and the
/// overloaded ones execute their cheapest applicable mechanism.
///
/// # Examples
///
/// ```
/// use geogrid_core::balance::{AdaptationEngine, BalanceConfig};
/// use geogrid_core::builder::{Mode, NetworkBuilder};
/// use geogrid_core::load::LoadMap;
/// use geogrid_geometry::Space;
/// use geogrid_workload::{HotSpotField, WorkloadGrid};
/// use rand::SeedableRng;
///
/// let space = Space::paper_evaluation();
/// let mut net = NetworkBuilder::new(space, 3).mode(Mode::DualPeer).build(100);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let field = HotSpotField::random(&mut rng, space, 5);
/// let grid = WorkloadGrid::from_field(space, 0.5, &field);
/// let mut loads = LoadMap::from_grid(net.topology(), &grid);
///
/// let engine = AdaptationEngine::new(BalanceConfig::default());
/// let stats = engine.run(net.topology_mut(), &grid, &mut loads, 10);
/// assert!(stats.len() <= 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdaptationEngine {
    config: BalanceConfig,
}

impl AdaptationEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: BalanceConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &BalanceConfig {
        &self.config
    }

    /// Executes one plan, updating topology and load bookkeeping.
    ///
    /// # Errors
    ///
    /// Propagates topology errors if the plan no longer matches the state
    /// (stale plans are a caller bug; `run_round` always applies fresh
    /// ones).
    pub fn apply(
        &self,
        topo: &mut Topology,
        grid: &WorkloadGrid,
        loads: &mut LoadMap,
        plan: &AdaptationPlan,
    ) -> Result<(), CoreError> {
        match plan.mechanism {
            Mechanism::StealSecondary | Mechanism::StealRemoteSecondary => {
                let donor = plan
                    .partner
                    .expect("invariant: plan_for_region always sets a donor on steal plans");
                let stolen = topo.take_secondary(donor)?;
                topo.set_secondary(plan.region, stolen)?;
                // The stolen (stronger) node becomes primary; the old
                // primary resigns to secondary.
                topo.swap_roles(plan.region)?;
            }
            Mechanism::SwitchPrimaries | Mechanism::SwitchPrimaryWithRemotePrimary => {
                let partner = plan
                    .partner
                    .expect("invariant: plan_for_region always sets a partner on switch plans");
                topo.swap_primaries(plan.region, partner)?;
            }
            Mechanism::MergeWithNeighbor => {
                let neighbor = plan
                    .partner
                    .expect("invariant: plan_for_region always sets the neighbor on merge plans");
                let own = topo
                    .region(plan.region)
                    .ok_or(CoreError::UnknownRegion(plan.region))?;
                let other = topo
                    .region(neighbor)
                    .ok_or(CoreError::UnknownRegion(neighbor))?;
                let (p_own, p_other) = (own.primary(), other.primary());
                let cap = |n| topo.node(n).map(|i| i.capacity()).unwrap_or(0.0);
                let (primary, secondary) = if cap(p_own) >= cap(p_other) {
                    (p_own, p_other)
                } else {
                    (p_other, p_own)
                };
                let displaced =
                    topo.merge_regions(plan.region, neighbor, primary, Some(secondary))?;
                debug_assert!(displaced.is_empty(), "plan guaranteed <= 2 owners");
                loads.on_merge(neighbor, plan.region);
            }
            Mechanism::SplitRegion => {
                let entry = topo
                    .region(plan.region)
                    .ok_or(CoreError::UnknownRegion(plan.region))?;
                let primary = entry.primary();
                let secondary = entry
                    .secondary()
                    .ok_or(CoreError::NoSecondary(plan.region))?;
                let created = topo.split_region(plan.region, primary, secondary)?;
                loads.on_split(topo, grid, plan.region, created);
            }
            Mechanism::SwitchPrimaryWithSecondary | Mechanism::SwitchPrimaryWithRemoteSecondary => {
                let donor = plan.partner.expect(
                    "invariant: plan_for_region always sets a donor on secondary-switch plans",
                );
                topo.switch_primary_with_secondary(plan.region, donor)?;
            }
        }
        Ok(())
    }

    /// Runs one adaptation round. Returns the adaptations executed.
    pub fn run_round(
        &self,
        topo: &mut Topology,
        grid: &WorkloadGrid,
        loads: &mut LoadMap,
    ) -> Vec<AppliedAdaptation> {
        let mut applied = Vec::new();
        let ids: Vec<_> = topo.region_ids().collect();
        for rid in ids {
            if topo.region(rid).is_none() {
                continue; // merged away earlier in this round
            }
            if !is_overloaded(topo, loads, rid, self.config.trigger_ratio) {
                continue;
            }
            if let Some(plan) = plan_for_region(topo, loads, &self.config, rid) {
                self.apply(topo, grid, loads, &plan)
                    .expect("invariant: a freshly planned mechanism applies to the topology it was planned on");
                applied.push(AppliedAdaptation { plan });
            }
        }
        applied
    }

    /// Runs up to `max_rounds` rounds, stopping early once a round makes
    /// no adaptation. Returns per-round statistics.
    pub fn run(
        &self,
        topo: &mut Topology,
        grid: &WorkloadGrid,
        loads: &mut LoadMap,
        max_rounds: usize,
    ) -> Vec<RoundStats> {
        let mut out = Vec::new();
        for round in 1..=max_rounds {
            let applied = self.run_round(topo, grid, loads);
            let n = applied.len();
            out.push(RoundStats {
                round,
                adaptations: n,
                summary: loads.summary(topo),
            });
            if n == 0 {
                break;
            }
        }
        out
    }

    /// Runs rounds while recording the node-index summary after **every
    /// single adaptation** (the per-operation convergence view of Figures
    /// 9 and 10), until `max_ops` operations have been executed or a round
    /// goes idle.
    pub fn run_per_op(
        &self,
        topo: &mut Topology,
        grid: &WorkloadGrid,
        loads: &mut LoadMap,
        max_ops: usize,
    ) -> Vec<Summary> {
        let mut out = Vec::new();
        'outer: loop {
            let ids: Vec<_> = topo.region_ids().collect();
            let mut any = false;
            for rid in ids {
                if out.len() >= max_ops {
                    break 'outer;
                }
                if topo.region(rid).is_none()
                    || !is_overloaded(topo, loads, rid, self.config.trigger_ratio)
                {
                    continue;
                }
                if let Some(plan) = plan_for_region(topo, loads, &self.config, rid) {
                    self.apply(topo, grid, loads, &plan)
                        .expect("invariant: a freshly planned mechanism applies to the topology it was planned on");
                    out.push(loads.summary(topo));
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Mode, NetworkBuilder};
    use geogrid_geometry::Space;
    use geogrid_workload::HotSpotField;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Topology, WorkloadGrid, LoadMap) {
        let space = Space::paper_evaluation();
        let net = NetworkBuilder::new(space, seed)
            .mode(Mode::DualPeer)
            .build(n);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfeed);
        let field = HotSpotField::random(&mut rng, space, 8);
        let grid = WorkloadGrid::from_field(space, 0.5, &field);
        let topo = net.topology().clone();
        let loads = LoadMap::from_grid(&topo, &grid);
        (topo, grid, loads)
    }

    #[test]
    fn adaptation_reduces_imbalance() {
        let (mut topo, grid, mut loads) = setup(300, 5);
        let before = loads.summary(&topo);
        let engine = AdaptationEngine::default();
        let stats = engine.run(&mut topo, &grid, &mut loads, 20);
        let after = loads.summary(&topo);
        assert!(!stats.is_empty());
        assert!(
            after.std_dev() <= before.std_dev(),
            "std {} -> {}",
            before.std_dev(),
            after.std_dev()
        );
        topo.validate().unwrap();
    }

    #[test]
    fn rounds_converge_to_idle() {
        let (mut topo, grid, mut loads) = setup(200, 7);
        let engine = AdaptationEngine::default();
        let stats = engine.run(&mut topo, &grid, &mut loads, 50);
        // The run must terminate before the cap by reaching a quiet round.
        assert!(stats.len() < 50, "never converged: {} rounds", stats.len());
        assert_eq!(stats.last().unwrap().adaptations, 0);
        topo.validate().unwrap();
    }

    #[test]
    fn applied_plans_keep_topology_valid() {
        let (mut topo, grid, mut loads) = setup(150, 9);
        let engine = AdaptationEngine::default();
        for _ in 0..5 {
            let applied = engine.run_round(&mut topo, &grid, &mut loads);
            topo.validate().unwrap();
            if applied.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn per_op_recording_counts_operations() {
        let (mut topo, grid, mut loads) = setup(300, 11);
        let engine = AdaptationEngine::default();
        let summaries = engine.run_per_op(&mut topo, &grid, &mut loads, 40);
        assert!(!summaries.is_empty());
        assert!(summaries.len() <= 40);
        topo.validate().unwrap();
    }

    #[test]
    fn local_only_never_uses_remote_mechanisms() {
        let (mut topo, grid, mut loads) = setup(300, 13);
        let engine = AdaptationEngine::new(BalanceConfig {
            local_only: true,
            ..BalanceConfig::default()
        });
        for _ in 0..10 {
            let applied = engine.run_round(&mut topo, &grid, &mut loads);
            for a in &applied {
                assert!(!a.plan.mechanism.is_remote());
            }
            if applied.is_empty() {
                break;
            }
        }
        topo.validate().unwrap();
    }

    #[test]
    fn engine_handles_moving_hotspots() {
        let space = Space::paper_evaluation();
        let net = NetworkBuilder::new(space, 17)
            .mode(Mode::DualPeer)
            .build(200);
        let mut topo = net.topology().clone();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut field = HotSpotField::random(&mut rng, space, 6);
        let mut grid = WorkloadGrid::from_field(space, 0.5, &field);
        let engine = AdaptationEngine::default();
        for _ in 0..5 {
            field.advance_epochs(&mut rng, space, 4);
            grid.fill(&field);
            let mut loads = LoadMap::from_grid(&topo, &grid);
            engine.run_round(&mut topo, &grid, &mut loads);
            topo.validate().unwrap();
        }
    }
}
