//! Planning logic for the eight adaptation mechanisms.
//!
//! Each `plan_*` function inspects the topology and the current
//! [`LoadMap`] and returns a concrete [`AdaptationPlan`] when its mechanism
//! is applicable and would improve the situation.
//! [`plan_for_region`] tries them in the paper's cost order.

use crate::balance::{AdaptationPlan, BalanceConfig, Mechanism};
use crate::load::LoadMap;
use crate::{NodeId, RegionId, Topology};

use super::search::ttl_search;

fn capacity(topo: &Topology, node: NodeId) -> f64 {
    topo.node(node).map(|n| n.capacity()).unwrap_or(0.0)
}

fn primary_capacity(topo: &Topology, rid: RegionId) -> f64 {
    topo.region(rid)
        .map(|e| capacity(topo, e.primary()))
        .unwrap_or(0.0)
}

/// Margin by which a swap must improve the pairwise max index before it is
/// worth the operation overhead (also prevents oscillation).
const IMPROVEMENT: f64 = 0.999;

/// Whether `rid`'s load situation satisfies the paper's adaptation
/// trigger: index higher than `trigger_ratio ×` the lowest index among its
/// neighbors. Regions with no neighbors never trigger.
pub fn is_overloaded(topo: &Topology, loads: &LoadMap, rid: RegionId, trigger_ratio: f64) -> bool {
    let Some(entry) = topo.region(rid) else {
        return false;
    };
    let own = loads.index_of(topo, rid);
    if own <= 0.0 {
        return false;
    }
    entry
        .neighbors()
        .iter()
        .map(|&n| loads.index_of(topo, n))
        .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))))
        .is_some_and(|lowest| own > trigger_ratio * lowest)
}

/// (a) Steal Secondary Owner — for a half-full overloaded region: take the
/// secondary of the least-loaded neighbor whose secondary is stronger than
/// our primary; it becomes our primary, our primary demotes to secondary.
pub fn plan_steal_secondary(
    topo: &Topology,
    loads: &LoadMap,
    rid: RegionId,
) -> Option<AdaptationPlan> {
    let entry = topo.region(rid)?;
    if entry.is_full() {
        return None;
    }
    let own_cap = capacity(topo, entry.primary());
    entry
        .neighbors()
        .iter()
        .copied()
        .filter(|&n| {
            topo.region(n)
                .is_some_and(|e| e.secondary().is_some_and(|s| capacity(topo, s) > own_cap))
        })
        .min_by(|&a, &b| {
            loads
                .index_of(topo, a)
                .partial_cmp(&loads.index_of(topo, b))
                .expect("invariant: load indexes are finite (capacities are positive and finite)")
                .then_with(|| a.cmp(&b))
        })
        .map(|donor| AdaptationPlan {
            mechanism: Mechanism::StealSecondary,
            region: rid,
            partner: Some(donor),
        })
}

/// (b) Switch Primary Owners — swap primaries with a neighbor when the
/// neighbor's primary is stronger and the swap strictly lowers the pair's
/// maximum workload index.
pub fn plan_switch_primaries(
    topo: &Topology,
    loads: &LoadMap,
    rid: RegionId,
) -> Option<AdaptationPlan> {
    let entry = topo.region(rid)?;
    let own_cap = capacity(topo, entry.primary());
    let own_load = loads.combined(rid);
    let own_index = loads.index_of(topo, rid);
    let mut best: Option<(f64, RegionId)> = None;
    for &n in entry.neighbors() {
        let n_cap = primary_capacity(topo, n);
        if n_cap <= own_cap {
            continue;
        }
        let n_load = loads.combined(n);
        let n_index = loads.index_of(topo, n);
        let old_max = own_index.max(n_index);
        let new_max = (own_load / n_cap).max(n_load / own_cap);
        if new_max < old_max * IMPROVEMENT {
            match best {
                Some((m, _)) if m <= new_max => {}
                _ => best = Some((new_max, n)),
            }
        }
    }
    best.map(|(_, partner)| AdaptationPlan {
        mechanism: Mechanism::SwitchPrimaries,
        region: rid,
        partner: Some(partner),
    })
}

/// (c) Merge with a Neighbor — when a neighbor's rectangle re-forms a
/// rectangle with ours, the owner sets fit in one dual-peer region
/// (≤ 2 owners total), and the merged index is lower than the average of
/// the two current indexes.
pub fn plan_merge(topo: &Topology, loads: &LoadMap, rid: RegionId) -> Option<AdaptationPlan> {
    let entry = topo.region(rid)?;
    let own_index = loads.index_of(topo, rid);
    let own_owners = 1 + entry.is_full() as usize;
    let mut best: Option<(f64, RegionId)> = None;
    for &n in entry.neighbors() {
        let Some(ne) = topo.region(n) else { continue };
        if entry.region().merge(&ne.region()).is_none() {
            continue;
        }
        let n_owners = 1 + ne.is_full() as usize;
        if own_owners + n_owners > 2 {
            continue;
        }
        let merged_load = loads.combined(rid) + loads.combined(n);
        let strongest = capacity(topo, entry.primary()).max(primary_capacity(topo, n));
        let merged_index = merged_load / strongest;
        let avg = (own_index + loads.index_of(topo, n)) / 2.0;
        if merged_index < avg {
            match best {
                Some((m, _)) if m <= merged_index => {}
                _ => best = Some((merged_index, n)),
            }
        }
    }
    best.map(|(_, neighbor)| AdaptationPlan {
        mechanism: Mechanism::MergeWithNeighbor,
        region: rid,
        partner: Some(neighbor),
    })
}

/// (d) Split a Region — a full region whose secondary is comparable to the
/// primary (capacity ratio ≥ `split_peer_ratio`) splits, halving the
/// primary's index. Refuses to create slivers below `min_split_extent`.
pub fn plan_split(
    topo: &Topology,
    config: &BalanceConfig,
    rid: RegionId,
) -> Option<AdaptationPlan> {
    let entry = topo.region(rid)?;
    let secondary = entry.secondary()?;
    let p_cap = capacity(topo, entry.primary());
    let s_cap = capacity(topo, secondary);
    if s_cap < p_cap * config.split_peer_ratio {
        return None;
    }
    let r = entry.region();
    if r.width().min(r.height()) <= config.min_split_extent
        || r.width().max(r.height()) <= 2.0 * config.min_split_extent
    {
        return None;
    }
    Some(AdaptationPlan {
        mechanism: Mechanism::SplitRegion,
        region: rid,
        partner: None,
    })
}

/// (e) Switch Primary with a Neighbor's Secondary — for a full overloaded
/// region: our weak primary trades places with the strongest neighbor
/// secondary that is stronger than it.
pub fn plan_switch_with_secondary(topo: &Topology, rid: RegionId) -> Option<AdaptationPlan> {
    let entry = topo.region(rid)?;
    if !entry.is_full() {
        return None;
    }
    let own_cap = capacity(topo, entry.primary());
    entry
        .neighbors()
        .iter()
        .copied()
        .filter_map(|n| {
            let s = topo.region(n)?.secondary()?;
            let s_cap = capacity(topo, s);
            (s_cap > own_cap).then_some((s_cap, n))
        })
        .max_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("invariant: capacities are finite (NodeInfo::new enforces it)")
                .then_with(|| b.1.cmp(&a.1))
        })
        .map(|(_, donor)| AdaptationPlan {
            mechanism: Mechanism::SwitchPrimaryWithSecondary,
            region: rid,
            partner: Some(donor),
        })
}

/// (f) Steal Remote Secondary — like (a), but over the TTL-guided search:
/// the donor must hold a secondary stronger than our primary and be less
/// loaded than we are.
pub fn plan_steal_remote(
    topo: &Topology,
    loads: &LoadMap,
    config: &BalanceConfig,
    rid: RegionId,
) -> Option<AdaptationPlan> {
    let entry = topo.region(rid)?;
    if entry.is_full() {
        return None;
    }
    let own_cap = capacity(topo, entry.primary());
    let own_index = loads.index_of(topo, rid);
    ttl_search(topo, rid, config.search_ttl)
        .into_iter()
        .filter(|&c| {
            topo.region(c)
                .is_some_and(|e| e.secondary().is_some_and(|s| capacity(topo, s) > own_cap))
                && loads.index_of(topo, c) < own_index
        })
        .min_by(|&a, &b| {
            loads
                .index_of(topo, a)
                .partial_cmp(&loads.index_of(topo, b))
                .expect("invariant: load indexes are finite (capacities are positive and finite)")
                .then_with(|| a.cmp(&b))
        })
        .map(|donor| AdaptationPlan {
            mechanism: Mechanism::StealRemoteSecondary,
            region: rid,
            partner: Some(donor),
        })
}

/// (g) Switch Primary with a Remote Secondary — like (e) over the search.
pub fn plan_switch_with_remote_secondary(
    topo: &Topology,
    loads: &LoadMap,
    config: &BalanceConfig,
    rid: RegionId,
) -> Option<AdaptationPlan> {
    let entry = topo.region(rid)?;
    if !entry.is_full() {
        return None;
    }
    let own_cap = capacity(topo, entry.primary());
    let own_index = loads.index_of(topo, rid);
    ttl_search(topo, rid, config.search_ttl)
        .into_iter()
        .filter_map(|c| {
            let s = topo.region(c)?.secondary()?;
            let s_cap = capacity(topo, s);
            (s_cap > own_cap && loads.index_of(topo, c) < own_index).then_some((s_cap, c))
        })
        .max_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("invariant: capacities are finite (NodeInfo::new enforces it)")
                .then_with(|| b.1.cmp(&a.1))
        })
        .map(|(_, donor)| AdaptationPlan {
            mechanism: Mechanism::SwitchPrimaryWithRemoteSecondary,
            region: rid,
            partner: Some(donor),
        })
}

/// (h) Switch Primary with a Remote Primary — the most expensive move:
/// swap with a stronger, less-loaded remote primary when that strictly
/// lowers the pair's maximum index.
pub fn plan_switch_with_remote_primary(
    topo: &Topology,
    loads: &LoadMap,
    config: &BalanceConfig,
    rid: RegionId,
) -> Option<AdaptationPlan> {
    let entry = topo.region(rid)?;
    if !entry.is_full() {
        return None;
    }
    let own_cap = capacity(topo, entry.primary());
    let own_load = loads.combined(rid);
    let own_index = loads.index_of(topo, rid);
    let mut best: Option<(f64, RegionId)> = None;
    for c in ttl_search(topo, rid, config.search_ttl) {
        let c_cap = primary_capacity(topo, c);
        if c_cap <= own_cap {
            continue;
        }
        let c_load = loads.combined(c);
        let c_index = loads.index_of(topo, c);
        let old_max = own_index.max(c_index);
        let new_max = (own_load / c_cap).max(c_load / own_cap);
        if new_max < old_max * IMPROVEMENT {
            match best {
                Some((m, _)) if m <= new_max => {}
                _ => best = Some((new_max, c)),
            }
        }
    }
    best.map(|(_, partner)| AdaptationPlan {
        mechanism: Mechanism::SwitchPrimaryWithRemotePrimary,
        region: rid,
        partner: Some(partner),
    })
}

/// Tries all mechanisms for `rid` in the paper's cost order and returns
/// the first applicable plan. Assumes the caller already checked the
/// overload trigger.
pub fn plan_for_region(
    topo: &Topology,
    loads: &LoadMap,
    config: &BalanceConfig,
    rid: RegionId,
) -> Option<AdaptationPlan> {
    plan_steal_secondary(topo, loads, rid)
        .or_else(|| plan_switch_primaries(topo, loads, rid))
        .or_else(|| plan_merge(topo, loads, rid))
        .or_else(|| plan_split(topo, config, rid))
        .or_else(|| plan_switch_with_secondary(topo, rid))
        .or_else(|| {
            if config.local_only {
                None
            } else {
                plan_steal_remote(topo, loads, config, rid)
                    .or_else(|| plan_switch_with_remote_secondary(topo, loads, config, rid))
                    .or_else(|| plan_switch_with_remote_primary(topo, loads, config, rid))
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogrid_geometry::{Point, Space};
    use geogrid_workload::{HotSpot, HotSpotField, WorkloadGrid};

    /// Builds the textbook 2x2 scenario: four quadrant regions, a hot spot
    /// over region 0, configurable owner capacities/secondaries.
    struct Scenario {
        topo: Topology,
        grid: WorkloadGrid,
        quads: Vec<RegionId>,
    }

    fn scenario(caps: [f64; 4]) -> Scenario {
        let space = Space::paper_evaluation();
        let mut topo = Topology::new(space);
        // Four nodes at quadrant centers.
        let centers = [
            Point::new(16.0, 16.0),
            Point::new(48.0, 16.0),
            Point::new(16.0, 48.0),
            Point::new(48.0, 48.0),
        ];
        let n0 = topo.register_node(centers[0], caps[0]);
        let r0 = topo.bootstrap(n0).unwrap();
        // Split latitudinally, then each half longitudinally -> quadrants.
        let n2 = topo.register_node(centers[2], caps[2]);
        let top = topo.split_region(r0, n0, n2).unwrap();
        let n1 = topo.register_node(centers[1], caps[1]);
        let right_bottom = topo.split_region(r0, n0, n1).unwrap();
        let n3 = topo.register_node(centers[3], caps[3]);
        let right_top = topo.split_region(top, n2, n3).unwrap();
        topo.validate().unwrap();
        let quads = vec![r0, right_bottom, top, right_top];
        // Hot spot centered on quadrant 0.
        let field = HotSpotField::new(vec![HotSpot::new(Point::new(16.0, 16.0), 10.0)]);
        let grid = WorkloadGrid::from_field(space, 0.5, &field);
        Scenario { topo, grid, quads }
    }

    #[test]
    fn trigger_requires_sqrt2_margin() {
        let s = scenario([10.0, 10.0, 10.0, 10.0]);
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        // Quadrant 0 holds nearly all the load: triggered.
        assert!(is_overloaded(
            &s.topo,
            &loads,
            s.quads[0],
            std::f64::consts::SQRT_2
        ));
        // Far quadrant is not overloaded.
        assert!(!is_overloaded(
            &s.topo,
            &loads,
            s.quads[3],
            std::f64::consts::SQRT_2
        ));
    }

    #[test]
    fn mechanism_a_steals_strongest_useful_secondary() {
        let mut s = scenario([1.0, 10.0, 10.0, 10.0]);
        // Give quadrant 1 (a neighbor of the overloaded SW quadrant) a
        // strong secondary.
        let sec = s.topo.register_node(Point::new(50.0, 15.0), 100.0);
        s.topo.set_secondary(s.quads[1], sec).unwrap();
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        let plan = plan_steal_secondary(&s.topo, &loads, s.quads[0]).expect("plan");
        assert_eq!(plan.mechanism, Mechanism::StealSecondary);
        assert_eq!(plan.partner, Some(s.quads[1]));
    }

    #[test]
    fn mechanism_a_ignores_weak_secondaries() {
        let mut s = scenario([10.0, 10.0, 10.0, 10.0]);
        let sec = s.topo.register_node(Point::new(50.0, 15.0), 5.0); // weaker
        s.topo.set_secondary(s.quads[1], sec).unwrap();
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        assert!(plan_steal_secondary(&s.topo, &loads, s.quads[0]).is_none());
    }

    #[test]
    fn mechanism_b_switches_with_stronger_idle_neighbor() {
        let s = scenario([1.0, 100.0, 10.0, 10.0]);
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        let plan = plan_switch_primaries(&s.topo, &loads, s.quads[0]).expect("plan");
        assert_eq!(plan.partner, Some(s.quads[1]));
    }

    #[test]
    fn mechanism_b_rejects_non_improving_swap() {
        // All capacities equal: no strictly-stronger neighbor exists.
        let s = scenario([10.0, 10.0, 10.0, 10.0]);
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        assert!(plan_switch_primaries(&s.topo, &loads, s.quads[0]).is_none());
    }

    #[test]
    fn mechanism_c_merges_siblings_when_beneficial() {
        // Quadrants 1 and 3 (east half) are siblings from the same split;
        // make them cold and weak/strong so the merge condition holds.
        let s = scenario([10.0, 1.0, 10.0, 100.0]);
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        // Region 1 (south-east): mergeable with 3 (north-east).
        let plan = plan_merge(&s.topo, &loads, s.quads[1]);
        if let Some(p) = plan {
            assert_eq!(p.mechanism, Mechanism::MergeWithNeighbor);
            assert_eq!(p.partner, Some(s.quads[3]));
        }
        // Merge of two cold regions with a strong primary lowers the index
        // only when loads are nonzero; with an all-zero east half the
        // average test fails (0 < 0 is false) -> None is also acceptable.
    }

    #[test]
    fn mechanism_c_respects_owner_limit() {
        let mut s = scenario([10.0, 1.0, 10.0, 100.0]);
        // Fill both east quadrants: 4 owners -> merge must refuse.
        let s1 = s.topo.register_node(Point::new(49.0, 15.0), 5.0);
        let s3 = s.topo.register_node(Point::new(49.0, 49.0), 5.0);
        s.topo.set_secondary(s.quads[1], s1).unwrap();
        s.topo.set_secondary(s.quads[3], s3).unwrap();
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        assert!(plan_merge(&s.topo, &loads, s.quads[1]).is_none());
    }

    #[test]
    fn mechanism_d_splits_equal_peers_only() {
        let mut s = scenario([10.0, 10.0, 10.0, 10.0]);
        let config = BalanceConfig::default();
        // Half-full region: no split.
        assert!(plan_split(&s.topo, &config, s.quads[0]).is_none());
        // Weak secondary: no split.
        let weak = s.topo.register_node(Point::new(15.0, 15.0), 1.0);
        s.topo.set_secondary(s.quads[0], weak).unwrap();
        assert!(plan_split(&s.topo, &config, s.quads[0]).is_none());
        s.topo.take_secondary(s.quads[0]).unwrap();
        // Equal secondary: split.
        let equal = s.topo.register_node(Point::new(15.0, 15.0), 10.0);
        s.topo.set_secondary(s.quads[0], equal).unwrap();
        let plan = plan_split(&s.topo, &config, s.quads[0]).expect("plan");
        assert_eq!(plan.mechanism, Mechanism::SplitRegion);
        assert_eq!(plan.partner, None);
    }

    #[test]
    fn mechanism_d_refuses_slivers() {
        let mut s = scenario([10.0, 10.0, 10.0, 10.0]);
        let equal = s.topo.register_node(Point::new(15.0, 15.0), 10.0);
        s.topo.set_secondary(s.quads[0], equal).unwrap();
        let config = BalanceConfig {
            min_split_extent: 32.0, // quadrants are exactly 32x32
            ..BalanceConfig::default()
        };
        assert!(plan_split(&s.topo, &config, s.quads[0]).is_none());
    }

    #[test]
    fn mechanism_e_needs_full_region() {
        let mut s = scenario([1.0, 10.0, 10.0, 10.0]);
        let strong = s.topo.register_node(Point::new(49.0, 15.0), 100.0);
        s.topo.set_secondary(s.quads[1], strong).unwrap();
        // Overloaded region is half-full: (e) not applicable.
        assert!(plan_switch_with_secondary(&s.topo, s.quads[0]).is_none());
        // Fill it, then (e) applies.
        let own_sec = s.topo.register_node(Point::new(15.0, 15.0), 1.0);
        s.topo.set_secondary(s.quads[0], own_sec).unwrap();
        let plan = plan_switch_with_secondary(&s.topo, s.quads[0]).expect("plan");
        assert_eq!(plan.partner, Some(s.quads[1]));
    }

    #[test]
    fn remote_mechanisms_respect_local_only() {
        let s = scenario([1.0, 10.0, 10.0, 10.0]);
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        let config = BalanceConfig {
            local_only: true,
            ..BalanceConfig::default()
        };
        // With 4 quadrants everything is a neighbor, so remote mechanisms
        // find nothing anyway; this asserts plan_for_region still returns
        // a local plan under local_only.
        let plan = plan_for_region(&s.topo, &loads, &config, s.quads[0]);
        if let Some(p) = plan {
            assert!(!p.mechanism.is_remote());
        }
    }

    #[test]
    fn plan_order_prefers_cheaper_mechanisms() {
        // Both (a) and (b) possible: (a) must win.
        let mut s = scenario([1.0, 100.0, 10.0, 10.0]);
        let sec = s.topo.register_node(Point::new(15.0, 49.0), 100.0);
        s.topo.set_secondary(s.quads[2], sec).unwrap();
        let loads = LoadMap::from_grid(&s.topo, &s.grid);
        let config = BalanceConfig::default();
        let plan = plan_for_region(&s.topo, &loads, &config, s.quads[0]).expect("plan");
        assert_eq!(plan.mechanism, Mechanism::StealSecondary);
    }
}
