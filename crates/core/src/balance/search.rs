//! TTL-guided search for remote adaptation candidates.
//!
//! "GeoGrid runs a Time to Live (TTL) guided search for the remote region
//! whose secondary owner has more capacity than the primary owner of the
//! overloaded region and is less loaded" (§2.4 (f)). The search walks the
//! neighbor graph breadth-first up to `ttl` hops, skipping the origin and
//! its direct neighborhood (those are covered by the local mechanisms).

use std::collections::HashSet;

use crate::{RegionId, Topology};

/// Regions between 2 and `ttl` hops (inclusive) of `from` in the neighbor
/// graph, in (depth, id) order — the candidate set for the remote
/// mechanisms (f)–(h).
///
/// Returns an empty vector for `ttl < 2` or a dead `from`.
pub fn ttl_search(topo: &Topology, from: RegionId, ttl: u32) -> Vec<RegionId> {
    let Some(origin) = topo.region(from) else {
        return Vec::new();
    };
    let mut seen: HashSet<RegionId> = HashSet::new();
    seen.insert(from);
    let mut frontier: Vec<RegionId> = origin.neighbors().to_vec();
    for n in &frontier {
        seen.insert(*n);
    }
    let mut out = Vec::new();
    let mut depth = 1;
    while depth < ttl && !frontier.is_empty() {
        let mut next = Vec::new();
        for rid in &frontier {
            let Some(entry) = topo.region(*rid) else {
                continue;
            };
            for &n in entry.neighbors() {
                if seen.insert(n) {
                    next.push(n);
                }
            }
        }
        next.sort();
        out.extend(next.iter().copied());
        frontier = next;
        depth += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use geogrid_geometry::Space;

    fn topo() -> Topology {
        NetworkBuilder::new(Space::paper_evaluation(), 21)
            .build(64)
            .topology()
            .clone()
    }

    #[test]
    fn excludes_origin_and_direct_neighbors() {
        let t = topo();
        let from = t.first_region().unwrap();
        let found = ttl_search(&t, from, 3);
        assert!(!found.contains(&from));
        for n in t.region(from).unwrap().neighbors() {
            assert!(!found.contains(n), "{n} is a direct neighbor");
        }
        assert!(!found.is_empty());
    }

    #[test]
    fn larger_ttl_finds_no_fewer() {
        let t = topo();
        let from = t.first_region().unwrap();
        let small = ttl_search(&t, from, 2);
        let big = ttl_search(&t, from, 5);
        assert!(big.len() >= small.len());
        for rid in &small {
            assert!(big.contains(rid));
        }
    }

    #[test]
    fn ttl_below_two_is_empty() {
        let t = topo();
        let from = t.first_region().unwrap();
        assert!(ttl_search(&t, from, 1).is_empty());
        assert!(ttl_search(&t, from, 0).is_empty());
    }

    #[test]
    fn results_are_unique() {
        let t = topo();
        let from = t.first_region().unwrap();
        let found = ttl_search(&t, from, 4);
        let unique: HashSet<RegionId> = found.iter().copied().collect();
        assert_eq!(unique.len(), found.len());
    }

    #[test]
    fn dead_region_yields_empty() {
        let t = topo();
        assert!(ttl_search(&t, RegionId::new(9999), 3).is_empty());
    }
}
