//! Adaptation plans: what a mechanism decided to do.

use std::fmt;

use crate::RegionId;

/// The eight adaptation mechanisms of Figure 4, labelled as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mechanism {
    /// (a) Steal a neighbor's secondary owner.
    StealSecondary,
    /// (b) Switch primary owners with a neighbor.
    SwitchPrimaries,
    /// (c) Merge with a neighbor.
    MergeWithNeighbor,
    /// (d) Split the region between its dual peers.
    SplitRegion,
    /// (e) Switch primary with a neighbor's secondary.
    SwitchPrimaryWithSecondary,
    /// (f) Steal a remote secondary (TTL-guided search).
    StealRemoteSecondary,
    /// (g) Switch primary with a remote secondary.
    SwitchPrimaryWithRemoteSecondary,
    /// (h) Switch primary with a remote primary.
    SwitchPrimaryWithRemotePrimary,
}

impl Mechanism {
    /// The paper's letter for this mechanism.
    pub fn letter(self) -> char {
        match self {
            Mechanism::StealSecondary => 'a',
            Mechanism::SwitchPrimaries => 'b',
            Mechanism::MergeWithNeighbor => 'c',
            Mechanism::SplitRegion => 'd',
            Mechanism::SwitchPrimaryWithSecondary => 'e',
            Mechanism::StealRemoteSecondary => 'f',
            Mechanism::SwitchPrimaryWithRemoteSecondary => 'g',
            Mechanism::SwitchPrimaryWithRemotePrimary => 'h',
        }
    }

    /// All mechanisms in the paper's cost order.
    pub fn all() -> [Mechanism; 8] {
        [
            Mechanism::StealSecondary,
            Mechanism::SwitchPrimaries,
            Mechanism::MergeWithNeighbor,
            Mechanism::SplitRegion,
            Mechanism::SwitchPrimaryWithSecondary,
            Mechanism::StealRemoteSecondary,
            Mechanism::SwitchPrimaryWithRemoteSecondary,
            Mechanism::SwitchPrimaryWithRemotePrimary,
        ]
    }

    /// Whether this mechanism requires the TTL-guided remote search.
    pub fn is_remote(self) -> bool {
        matches!(
            self,
            Mechanism::StealRemoteSecondary
                | Mechanism::SwitchPrimaryWithRemoteSecondary
                | Mechanism::SwitchPrimaryWithRemotePrimary
        )
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.letter())
    }
}

/// A concrete, applicable adaptation decision for one overloaded region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptationPlan {
    /// The mechanism chosen.
    pub mechanism: Mechanism,
    /// The overloaded region initiating the adaptation.
    pub region: RegionId,
    /// The counterpart region (donor / partner / merge neighbor), when the
    /// mechanism involves one. `None` only for [`Mechanism::SplitRegion`].
    pub partner: Option<RegionId>,
}

impl fmt::Display for AdaptationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.partner {
            Some(p) => write!(f, "{} {} with {}", self.mechanism, self.region, p),
            None => write!(f, "{} {}", self.mechanism, self.region),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_are_a_through_h() {
        let letters: Vec<char> = Mechanism::all().iter().map(|m| m.letter()).collect();
        assert_eq!(letters, vec!['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h']);
    }

    #[test]
    fn remote_classification() {
        assert!(!Mechanism::StealSecondary.is_remote());
        assert!(Mechanism::StealRemoteSecondary.is_remote());
        assert!(Mechanism::SwitchPrimaryWithRemotePrimary.is_remote());
        assert_eq!(Mechanism::all().iter().filter(|m| m.is_remote()).count(), 3);
    }

    #[test]
    fn plan_display() {
        let plan = AdaptationPlan {
            mechanism: Mechanism::SplitRegion,
            region: RegionId::new(1),
            partner: None,
        };
        assert_eq!(format!("{plan}"), "(d) r1");
    }
}
