//! Dynamic load-balance adaptation (§2.4 of the paper).
//!
//! The basic idea is "to break the geographical association between an
//! owner node and the region it owns, and dynamically adjust the node
//! assignments in a geographical vicinity according to the workload
//! distribution".
//!
//! A node starts adapting only when its workload index exceeds **√2 times
//! the lowest index among its neighbors** (the trigger, [`BalanceConfig::trigger_ratio`]).
//! It then tries the eight mechanisms (a)–(h) in the paper's order of
//! increasing cost — local operations before remote ones, secondary moves
//! before primary moves, split/merge last among local ones:
//!
//! | | mechanism | precondition |
//! |---|---|---|
//! | (a) | steal a neighbor's secondary | overloaded region is half-full |
//! | (b) | switch primary owners with a neighbor | — |
//! | (c) | merge with a neighbor | regions re-form a rectangle |
//! | (d) | split the region between its dual peers | full, peers comparable |
//! | (e) | switch primary with a neighbor's secondary | full |
//! | (f) | steal a **remote** secondary (TTL search) | half-full |
//! | (g) | switch primary with a remote secondary | full |
//! | (h) | switch primary with a remote primary | full |

mod engine;
mod mechanisms;
mod plan;
mod search;

pub use engine::{AdaptationEngine, AppliedAdaptation, RoundStats};
pub use mechanisms::plan_for_region;
pub use plan::{AdaptationPlan, Mechanism};
pub use search::ttl_search;

/// Tuning knobs for the adaptation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceConfig {
    /// A region adapts when its index exceeds `trigger_ratio ×` the lowest
    /// neighbor index. The paper uses √2.
    pub trigger_ratio: f64,
    /// TTL of the guided search for remote candidates (mechanisms f–h).
    pub search_ttl: u32,
    /// Regions whose shorter side is at or below this never split further
    /// (keeps mechanism (d) from recursing to slivers).
    pub min_split_extent: f64,
    /// Secondary must be at least this fraction of the primary's capacity
    /// for mechanism (d) ("the same capacity" in the paper; 1.0 = equal or
    /// stronger).
    pub split_peer_ratio: f64,
    /// Disables the remote mechanisms (f)–(h) — the local-only ablation.
    pub local_only: bool,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        Self {
            trigger_ratio: std::f64::consts::SQRT_2,
            search_ttl: 3,
            min_split_extent: 0.5,
            split_peer_ratio: 1.0,
            local_only: false,
        }
    }
}
