//! Node descriptors.

use std::fmt;

use geogrid_geometry::Point;

use crate::NodeId;

/// Descriptor of a GeoGrid node.
///
/// The paper identifies a node by the tuple
/// `<x, y, IP, port, properties>`; the protocol-relevant parts are the
/// geographic coordinate and the capacity property (the amount of resources
/// the node dedicates to serving others — network bandwidth in the paper).
/// Transport endpoints (IP/port) live in the transport layer, which maps
/// [`NodeId`]s to socket addresses.
///
/// # Examples
///
/// ```
/// use geogrid_core::{NodeId, NodeInfo};
/// use geogrid_geometry::Point;
///
/// let node = NodeInfo::new(NodeId::new(1), Point::new(10.0, 20.0), 100.0);
/// assert_eq!(node.capacity(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeInfo {
    id: NodeId,
    coord: Point,
    capacity: f64,
}

impl NodeInfo {
    /// Creates a node descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is non-finite or the capacity is not
    /// strictly positive and finite.
    pub fn new(id: NodeId, coord: Point, capacity: f64) -> Self {
        assert!(coord.is_finite(), "node coordinate must be finite");
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "node capacity must be positive, got {capacity}"
        );
        Self {
            id,
            coord,
            capacity,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's geographic coordinate (e.g. from GPS).
    pub fn coord(&self) -> Point {
        self.coord
    }

    /// The node's capacity (resources dedicated to serving others).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

impl fmt::Display for NodeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} cap={}", self.id, self.coord, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let n = NodeInfo::new(NodeId::new(3), Point::new(1.0, 2.0), 10.0);
        assert_eq!(n.id(), NodeId::new(3));
        assert_eq!(n.coord(), Point::new(1.0, 2.0));
        assert_eq!(n.capacity(), 10.0);
        assert!(!format!("{n}").is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        NodeInfo::new(NodeId::new(1), Point::new(0.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "coordinate must be finite")]
    fn rejects_nan_coord() {
        NodeInfo::new(NodeId::new(1), Point::new(f64::NAN, 0.0), 1.0);
    }
}
