//! Structured invariant auditing for [`Topology`](crate::Topology).
//!
//! [`Topology::audit`](crate::Topology::audit) walks every structural
//! invariant of the network model and returns **all** violations as typed
//! [`Violation`] values instead of bailing on the first broken one — so a
//! failing property test shows the complete damage picture, and callers
//! can assert on [`ViolationKind`]s rather than matching error-message
//! substrings.
//!
//! [`TopologyAuditor`] adds the one check that is inherently stateful —
//! epoch monotonicity across a sequence of observations — and is the
//! driver used by the model-explorer property tests
//! (`crates/core/tests/topology_audit.rs`).
//!
//! The invariant catalog, and which rule or check enforces each entry,
//! lives in DESIGN.md §7.

use std::fmt;

use crate::{NodeId, RegionId, Topology};

/// The typed identity of one broken invariant.
///
/// Matching on kinds (not message text) is the supported way to assert
/// audit outcomes in tests; [`Violation::detail`] carries the free-form
/// specifics for humans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ViolationKind {
    /// Live region areas do not sum to the space's area: some part of the
    /// space is covered by no region (or the bookkeeping lost a slot).
    TessellationGap,
    /// Two live regions overlap with positive area.
    TessellationOverlap(RegionId, RegionId),
    /// A neighbor link is wrong: `from` lists `to` but they do not touch
    /// edges, the link is missing in one direction, the listed id is dead,
    /// or the list holds a duplicate.
    AsymmetricNeighborLink(RegionId, RegionId),
    /// The grid spatial index disagrees with a live region's geometry:
    /// a cell in the region's span is missing the region, or a cell lists
    /// a stale/dead/duplicate entry.
    StaleGridBucket(RegionId),
    /// The grid index's incrementally-maintained entry counter disagrees
    /// with the actual number of bucket entries — the insert/remove
    /// bookkeeping itself is broken (the counter is what lets the audit
    /// skip the full reverse sweep on healthy structures).
    GridCounterDrift {
        /// What the incremental counter claims.
        counted: usize,
        /// What summing every bucket length finds.
        actual: usize,
    },
    /// The flat rect/center mirror (`slot_rect`/`slot_center`) disagrees
    /// with the region's authoritative rectangle.
    SlotMirrorDrift(RegionId),
    /// The geometry epoch moved backwards between two observations of the
    /// same topology instance (only [`TopologyAuditor`] can detect this).
    EpochRegression {
        /// Epoch seen at the earlier observation.
        last_seen: u64,
        /// Smaller epoch seen now.
        observed: u64,
    },
    /// A *registered* node and the region slot disagree about ownership:
    /// the slot names an owner whose assignment points elsewhere, the
    /// primary and secondary are the same node, or an assignment points at
    /// a dead or disagreeing slot. Always a bug.
    DualPeerMismatch(NodeId, RegionId),
    /// An express-link finger of a live region points at a dead slot
    /// (finger maintenance missed a merge's `free_slot`). The `u8` is the
    /// finger index (`scale * FINGER_DIRS + dir`).
    DanglingFinger(RegionId, u8),
    /// A stored finger disagrees with a fresh recomputation of the finger
    /// selection rule against the current geometry — it points at a live
    /// region, but not the one covering the scale point (a geometry
    /// rewrite moved rectangles without retargeting the finger). The `u8`
    /// is the finger index.
    MisScaledFinger(RegionId, u8),
    /// The forward finger mirror and the reverse in-link index disagree: a
    /// live finger lacks exactly one reverse entry, or a reverse entry
    /// names a source that is dead or no longer points there.
    AsymmetricFingerLink(RegionId, RegionId),
    /// A region's owner is not in the node table at all. This is the one
    /// *legal transient*: [`Topology::remove_node`] leaves a sole-owned
    /// region orphaned for the caller to repair (see
    /// [`repair_orphan`](crate::join::repair_orphan)), so debug hooks
    /// tolerate it while [`Topology::validate`] still reports it.
    OrphanedOwner(NodeId, RegionId),
    /// The published [`TopologySnapshot`](crate::snapshot::TopologySnapshot)
    /// identifies a different `(instance, epoch)` than the topology it was
    /// published from: a geometry rewrite ran without republishing (a
    /// GG001/GG006 marker was bypassed), or a snapshot from another
    /// instance was installed into this topology's cell.
    StaleSnapshot {
        /// Epoch recorded in the published snapshot.
        published: u64,
        /// The topology's current epoch.
        current: u64,
    },
    /// The published snapshot carries the right epoch but its *content*
    /// (liveness, geometry mirror, finger blocks, adjacency, or grid
    /// index) disagrees with a fresh recomputation from the authoritative
    /// structures — the snapshot builder dropped or corrupted state.
    SnapshotDrift(RegionId),
}

impl ViolationKind {
    /// Short stable label (used in Display output and DESIGN.md §7).
    pub fn label(&self) -> &'static str {
        match self {
            ViolationKind::TessellationGap => "tessellation-gap",
            ViolationKind::TessellationOverlap(..) => "tessellation-overlap",
            ViolationKind::AsymmetricNeighborLink(..) => "asymmetric-neighbor-link",
            ViolationKind::StaleGridBucket(..) => "stale-grid-bucket",
            ViolationKind::GridCounterDrift { .. } => "grid-counter-drift",
            ViolationKind::SlotMirrorDrift(..) => "slot-mirror-drift",
            ViolationKind::EpochRegression { .. } => "epoch-regression",
            ViolationKind::DanglingFinger(..) => "dangling-finger",
            ViolationKind::MisScaledFinger(..) => "mis-scaled-finger",
            ViolationKind::AsymmetricFingerLink(..) => "asymmetric-finger-link",
            ViolationKind::DualPeerMismatch(..) => "dual-peer-mismatch",
            ViolationKind::OrphanedOwner(..) => "orphaned-owner",
            ViolationKind::StaleSnapshot { .. } => "stale-snapshot",
            ViolationKind::SnapshotDrift(..) => "snapshot-drift",
        }
    }
}

/// One broken invariant: its typed kind plus human-readable specifics.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// What is broken (assert on this in tests).
    pub kind: ViolationKind,
    /// Where/how, for humans debugging a failure.
    pub detail: String,
}

impl Violation {
    pub(crate) fn new(kind: ViolationKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

/// Stateful audit driver: structural audit plus epoch monotonicity.
///
/// [`Topology::audit`] is stateless by design (it can be called on any
/// snapshot), so it cannot see the epoch move backwards. The auditor
/// remembers the last `(instance_id, epoch)` pair it observed and reports
/// [`ViolationKind::EpochRegression`] when the same instance shows a
/// smaller epoch later. Cloned topologies get fresh instance ids, so an
/// auditor can observe a clone without a false regression.
///
/// ```
/// use geogrid_core::audit::TopologyAuditor;
/// use geogrid_core::Topology;
/// use geogrid_geometry::{Point, Space};
///
/// let mut t = Topology::new(Space::paper_evaluation());
/// let n = t.register_node(Point::new(1.0, 1.0), 10.0);
/// t.bootstrap(n).unwrap();
///
/// let mut auditor = TopologyAuditor::new();
/// assert!(auditor.observe(&t).is_empty());
/// ```
#[derive(Debug, Default)]
pub struct TopologyAuditor {
    last: Option<(u64, u64)>,
}

impl TopologyAuditor {
    /// A fresh auditor with no observation history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the full structural audit on `topo` and additionally checks
    /// that its epoch has not regressed since this auditor last observed
    /// the same instance. Returns every violation found.
    pub fn observe(&mut self, topo: &Topology) -> Vec<Violation> {
        let mut violations = topo.audit();
        let current = (topo.instance_id(), topo.epoch());
        if let Some((id, last_epoch)) = self.last {
            if id == current.0 && current.1 < last_epoch {
                violations.push(Violation::new(
                    ViolationKind::EpochRegression {
                        last_seen: last_epoch,
                        observed: current.1,
                    },
                    format!(
                        "instance {id} went from epoch {last_epoch} back to {}",
                        current.1
                    ),
                ));
            }
        }
        self.last = Some(current);
        violations
    }
}
