//! Property tests for the grid spatial index: after an arbitrary sequence
//! of structural mutations, `Topology::locate` must agree with the
//! linear-scan ground truth on every probe point, and
//! `Topology::regions_overlapping` must match the brute-force filter.
//!
//! The mutation driver exercises every path that can touch region
//! geometry or ownership: splits, merges, secondary placement/removal,
//! role swaps (local and cross-region), node departures (including orphan
//! repair), and adoption.

use geogrid_core::topology::Role;
use geogrid_core::{CoreError, RegionId, Topology};
use geogrid_geometry::{Point, Region, Space};
use proptest::prelude::*;

fn space() -> Space {
    Space::paper_evaluation()
}

/// Clamps a probe coordinate into the space (generators emit 0..=64
/// already, but keep the guard local and obvious).
fn probe(x: f64, y: f64) -> Point {
    space().clamp(Point::new(x, y))
}

/// Applies one encoded mutation. `op` selects the kind, `(x, y)` selects
/// the region it targets (via ground-truth scan, so the index under test
/// is never used to drive mutations).
fn apply_op(t: &mut Topology, op: u8, x: f64, y: f64) {
    let p = probe(x, y);
    let Ok(rid) = t.locate_scan(p) else {
        return;
    };
    let entry = t.region(rid).expect("scan returned a live region");
    let primary = entry.primary();
    let secondary = entry.secondary();
    match op % 8 {
        // Grow the network: split the covering region (biased: three
        // opcodes map here so sequences tend to build real topologies).
        0..=2 => {
            let j = t.register_node(p, 10.0);
            if t.split_region(rid, primary, j).is_err() {
                // Primary may sit outside its region after swaps; that is
                // fine for split (keeper gets the low half) — the only
                // expected failure is `give` being assigned, which cannot
                // happen for a fresh node.
                unreachable!("split of a live region with a fresh node");
            }
        }
        // Merge with the first neighbor that re-forms a rectangle.
        3 => {
            let neighbors: Vec<RegionId> = entry.neighbors().to_vec();
            for n in neighbors {
                let Some(ne) = t.region(n) else { continue };
                if t.region(rid)
                    .unwrap()
                    .region()
                    .merge(&ne.region())
                    .is_some()
                {
                    t.merge_regions(rid, n, primary, None)
                        .expect("owners include the kept primary");
                    break;
                }
            }
        }
        // Dual-peer lifecycle on the covering region.
        4 => match secondary {
            None => {
                let s = t.register_node(p, 50.0);
                t.set_secondary(rid, s).expect("region was half-full");
            }
            Some(_) => {
                t.take_secondary(rid).expect("region was full");
            }
        },
        // Within-region role swap, or a primary swap with a neighbor.
        5 => {
            if secondary.is_some() {
                t.swap_roles(rid).expect("region was full");
            } else if let Some(&n) = entry.neighbors().first() {
                t.swap_primaries(rid, n).expect("both regions live");
            }
        }
        // Cross-region: promote a neighbor's secondary into this region.
        6 => {
            let with_secondary = entry
                .neighbors()
                .iter()
                .copied()
                .find(|&n| t.region(n).is_some_and(|e| e.secondary().is_some()));
            if let Some(n) = with_secondary {
                t.switch_primary_with_secondary(rid, n)
                    .expect("neighbor had a secondary");
            }
        }
        // Departure of the primary (fail-over or orphan repair).
        _ => {
            if t.region_count() == 1 && secondary.is_none() {
                return; // keep the network non-empty
            }
            match t.remove_node(primary) {
                Ok(None) => {}
                Ok(Some(orphan)) => {
                    let a = t.register_node(p, 10.0);
                    t.adopt_region(orphan, a).expect("fresh node adopts");
                }
                Err(e) => panic!("remove_node({primary}): {e:?}"),
            }
        }
    }
}

fn build(ops: &[(u8, f64, f64)]) -> Topology {
    let mut t = Topology::new(space());
    let n0 = t.register_node(Point::new(1.0, 1.0), 10.0);
    t.bootstrap(n0).expect("fresh network");
    for &(op, x, y) in ops {
        apply_op(&mut t, op, x, y);
    }
    t
}

/// Probe points that historically hide indexing bugs: space corners and
/// edges (the west/south closure), plus every region's corners — a
/// region's own south-west corner is covered by a *different* region
/// under the half-open rule.
fn adversarial_probes(t: &Topology) -> Vec<Point> {
    let b = space().bounds();
    let mut probes = vec![
        Point::new(b.x(), b.y()),
        Point::new(b.east(), b.north()),
        Point::new(b.x(), b.north()),
        Point::new(b.east(), b.y()),
        Point::new(b.x(), b.north() / 2.0),
        Point::new(b.east() / 2.0, b.y()),
    ];
    for (_, e) in t.regions() {
        let r = e.region();
        probes.push(Point::new(r.x(), r.y()));
        probes.push(Point::new(r.east(), r.north()));
        probes.push(r.center());
    }
    probes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn locate_matches_scan_after_mutations(
        ops in prop::collection::vec((any::<u8>(), 0.0..=64.0, 0.0..=64.0), 1..60),
        raw_probes in prop::collection::vec((0.0..=64.0, 0.0..=64.0), 16),
    ) {
        let t = build(&ops);
        prop_assert!(t.validate().is_ok(), "invalid topology: {:?}", t.validate());
        for (x, y) in raw_probes {
            let p = probe(x, y);
            prop_assert_eq!(t.locate(p).expect("in space"), t.locate_scan(p).expect("in space"), "at {:?}", p);
        }
        for p in adversarial_probes(&t) {
            prop_assert_eq!(t.locate(p).expect("in space"), t.locate_scan(p).expect("in space"), "at {:?}", p);
        }
    }

    #[test]
    fn regions_overlapping_matches_brute_force_after_mutations(
        ops in prop::collection::vec((any::<u8>(), 0.0..=64.0, 0.0..=64.0), 1..60),
        rects in prop::collection::vec((0.0f64..63.0, 0.0f64..63.0, 0.001f64..32.0, 0.001f64..32.0), 12),
    ) {
        let t = build(&ops);
        prop_assert!(t.validate().is_ok(), "invalid topology: {:?}", t.validate());
        for (x, y, w, h) in rects {
            let rect = Region::new(x, y, w.min(64.0 - x), h.min(64.0 - y));
            let got = t.regions_overlapping(&rect);
            let expected: Vec<RegionId> = t
                .regions()
                .filter(|(_, e)| e.region().intersects(&rect))
                .map(|(rid, _)| rid)
                .collect();
            prop_assert_eq!(&got, &expected, "query {:?}", rect);
        }
        // Region-aligned queries stress the shared-edge exclusions.
        for (rid, e) in t.regions().take(8) {
            let got = t.regions_overlapping(&e.region());
            prop_assert!(got.contains(&rid), "{} missing from its own rect query", rid);
            let expected: Vec<RegionId> = t
                .regions()
                .filter(|(_, o)| o.region().intersects(&e.region()))
                .map(|(orid, _)| orid)
                .collect();
            prop_assert_eq!(&got, &expected, "query {:?}", e.region());
        }
    }

    #[test]
    fn assignments_stay_consistent_after_mutations(
        ops in prop::collection::vec((any::<u8>(), 0.0..=64.0, 0.0..=64.0), 1..60),
    ) {
        let t = build(&ops);
        prop_assert!(t.validate().is_ok(), "invalid topology: {:?}", t.validate());
        // Every region's owners resolve back through the assignment map.
        for (rid, e) in t.regions() {
            prop_assert_eq!(t.assignment(e.primary()), Some((rid, Role::Primary)));
            if let Some(s) = e.secondary() {
                prop_assert_eq!(t.assignment(s), Some((rid, Role::Secondary)));
            }
        }
        // And locate never invents out-of-space answers.
        let out_of_space = matches!(
            t.locate(Point::new(-1.0, 1.0)),
            Err(CoreError::OutOfSpace { .. })
        );
        prop_assert!(out_of_space);
    }
}
