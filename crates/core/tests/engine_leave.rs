//! Graceful departure at the protocol level (§2.3 "Node Departure").

use geogrid_core::engine::sim::SimHarness;
use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode, Input};
use geogrid_core::topology::Role;
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region, Space};

fn harness(mode: EngineMode, n: usize, seed: u64) -> SimHarness {
    let mut h = SimHarness::new(
        Space::paper_evaluation(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
        seed,
    );
    let coord = |i: usize| {
        Point::new(
            ((i as f64 + 1.0) * 0.754877666).fract() * 63.0 + 0.5,
            ((i as f64 + 1.0) * 0.569840296).fract() * 63.0 + 0.5,
        )
    };
    h.bootstrap(coord(0), 10.0);
    for i in 1..n {
        h.join(coord(i), 10.0);
        h.run_for(250);
    }
    h.settle();
    h
}

fn primary_area(h: &SimHarness) -> f64 {
    h.owner_views()
        .iter()
        .filter(|(_, v)| v.role == Role::Primary)
        .map(|(_, v)| v.region.area())
        .sum()
}

#[test]
fn secondary_departure_leaves_region_half_full() {
    let mut h = harness(EngineMode::DualPeer, 8, 1);
    let (sec, view) = h
        .owner_views()
        .into_iter()
        .find(|(_, v)| v.role == Role::Secondary)
        .expect("a secondary exists");
    let primary = view.peer.expect("secondary has a peer").id();
    h.inject(sec, Input::Leave);
    h.run_for(1_000);
    assert!(h
        .events_of(sec)
        .iter()
        .any(|e| matches!(e, ClientEvent::Left)));
    // The primary no longer lists a peer.
    let pv = h
        .owner_views()
        .into_iter()
        .find(|(id, _)| *id == primary)
        .map(|(_, v)| v)
        .expect("primary alive");
    assert!(pv.peer.is_none(), "primary still lists the departed peer");
    assert!((primary_area(&h) - 64.0 * 64.0).abs() < 1e-6);
}

#[test]
fn primary_departure_hands_region_to_peer() {
    let mut h = harness(EngineMode::DualPeer, 8, 2);
    let (prim, view) = h
        .owner_views()
        .into_iter()
        .find(|(_, v)| v.role == Role::Primary && v.peer.is_some())
        .expect("a full region exists");
    let peer = view.peer.unwrap().id();
    let region = view.region;
    h.inject(prim, Input::Leave);
    h.run_for(1_000);
    // The old secondary now owns the same region as primary.
    let pv = h
        .owner_views()
        .into_iter()
        .find(|(id, _)| *id == peer)
        .map(|(_, v)| v)
        .expect("peer alive");
    assert_eq!(pv.role, Role::Primary);
    assert_eq!(pv.region, region);
    assert!((primary_area(&h) - 64.0 * 64.0).abs() < 1e-6);
}

#[test]
fn sole_owner_departure_merges_with_sibling() {
    // Two-node basic network: the halves are siblings, so either owner
    // can hand its region to the other.
    let mut h = harness(EngineMode::Basic, 2, 3);
    let leaver = NodeId::new(1);
    h.inject(leaver, Input::Leave);
    h.run_for(1_000);
    let views = h.owner_views();
    // Node 0 owns the whole space again.
    let survivor = views
        .iter()
        .find(|(id, _)| *id == NodeId::new(0))
        .map(|(_, v)| v.clone())
        .expect("survivor");
    assert_eq!(survivor.region, Region::new(0.0, 0.0, 64.0, 64.0));
    assert!(h
        .events_of(leaver)
        .iter()
        .any(|e| matches!(e, ClientEvent::Left)));
}

#[test]
fn departure_chain_keeps_coverage() {
    // Drain a basic network one node at a time; when a leave is deferred
    // (no mergeable sibling), the node stays — coverage must hold either
    // way.
    let mut h = harness(EngineMode::Basic, 8, 4);
    for i in (1..8u64).rev() {
        h.inject(NodeId::new(i), Input::Leave);
        h.run_for(1_200);
        let area = primary_area(&h);
        assert!(
            (area - 64.0 * 64.0).abs() < 1e-6,
            "coverage broken after leave of n{i}: {area}"
        );
    }
}
