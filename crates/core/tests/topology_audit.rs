//! Model-explorer property tests for the structural auditor
//! (`Topology::audit` / `TopologyAuditor`).
//!
//! Two properties, each over randomized interleavings of the paper's
//! structural operations (joins that split, merges, fail-overs with
//! repair, and ownership hand-offs):
//!
//! 1. **The auditor stays silent on legal histories.** After every single
//!    operation the full audit reports no violation — except the one legal
//!    transient, [`ViolationKind::OrphanedOwner`], which may appear only
//!    between `remove_node` returning an orphan and its repair, and must
//!    name exactly that orphan. Since the audit now recomputes every
//!    express-link finger against the finger selection rule and sweeps the
//!    reverse index, this property also proves the incremental finger
//!    maintenance at each split/merge/fail-over/hand-off leaves zero
//!    dangling, mis-scaled, or asymmetric fingers.
//! 2. **Tessellation completeness.** The live regions always partition
//!    the space: areas sum to the space's area, no two regions overlap
//!    with positive area, every sampled point is covered by exactly one
//!    region, and neighbor links are symmetric edge-adjacencies.
//!
//! Together the two proptest blocks run 320 cases (≥ the 256 the audit
//! issue requires).

use geogrid_core::audit::{TopologyAuditor, ViolationKind};
use geogrid_core::{join, RegionId, Topology};
use geogrid_geometry::{Point, Space};
use proptest::prelude::*;

fn space() -> Space {
    Space::paper_evaluation()
}

fn probe(x: f64, y: f64) -> Point {
    space().clamp(Point::new(x, y))
}

/// Applies one encoded structural operation and audits around it.
///
/// Every path observes the topology afterwards and fails the test on any
/// violation; the explicit fail-over arm (`remove_node` + adopt) also
/// checks the orphan-transient contract mid-flight.
fn apply_audited(t: &mut Topology, auditor: &mut TopologyAuditor, op: u8, x: f64, y: f64) {
    let p = probe(x, y);
    let Ok(rid) = t.locate_scan(p) else {
        return;
    };
    let entry = t.region(rid).expect("scan returned a live region");
    let primary = entry.primary();
    let secondary = entry.secondary();
    match op % 8 {
        // Join protocols (both split a region somewhere).
        0 => {
            let _ = join::join_basic(t, rid, p, 10.0).expect("basic join over a live entry");
        }
        1..=2 => {
            let _ = join::join_dual(t, rid, p, 25.0).expect("dual join over a live entry");
        }
        // Merge with the first neighbor that re-forms a rectangle.
        3 => {
            let neighbors: Vec<RegionId> = entry.neighbors().to_vec();
            for n in neighbors {
                let Some(ne) = t.region(n) else { continue };
                if t.region(rid)
                    .unwrap()
                    .region()
                    .merge(&ne.region())
                    .is_some()
                {
                    t.merge_regions(rid, n, primary, None)
                        .expect("owners include the kept primary");
                    break;
                }
            }
        }
        // Dual-peer lifecycle and hand-offs.
        4 => match secondary {
            None => {
                let s = t.register_node(p, 50.0);
                t.set_secondary(rid, s).expect("region was half-full");
            }
            Some(_) => {
                t.swap_roles(rid).expect("region was full");
            }
        },
        5 => {
            let with_secondary = entry
                .neighbors()
                .iter()
                .copied()
                .find(|&n| t.region(n).is_some_and(|e| e.secondary().is_some()));
            if let Some(n) = with_secondary {
                t.switch_primary_with_secondary(rid, n)
                    .expect("neighbor had a secondary");
            } else if let Some(&n) = entry.neighbors().first() {
                t.swap_primaries(rid, n).expect("both regions live");
            }
        }
        // Graceful departure / failure: repair happens inside.
        6 => {
            if t.region_count() > 1 || secondary.is_some() {
                let victim = secondary.unwrap_or(primary);
                join::fail(t, victim).expect("repairable departure");
            }
        }
        // Raw fail-over: remove_node may orphan the region; the audit in
        // between must report exactly that transient and nothing else.
        _ => {
            if t.region_count() == 1 && secondary.is_none() {
                return; // keep the network non-empty
            }
            match t.remove_node(primary).expect("primary was registered") {
                None => {}
                Some(orphan) => {
                    let mid = auditor.observe(t);
                    assert!(
                        !mid.is_empty()
                            && mid.iter().all(|v| matches!(
                                v.kind,
                                ViolationKind::OrphanedOwner(_, r) if r == orphan
                            )),
                        "between orphaning and repair the audit must report only \
                         the orphan transient for {orphan}, got {mid:?}"
                    );
                    let a = t.register_node(p, 10.0);
                    t.adopt_region(orphan, a).expect("fresh node adopts");
                }
            }
        }
    }
    let violations = auditor.observe(t);
    assert!(
        violations.is_empty(),
        "audit after op {op} at {p:?}: {violations:?}"
    );
}

fn build_audited(ops: &[(u8, f64, f64)]) -> Topology {
    let mut t = Topology::new(space());
    let n0 = t.register_node(Point::new(1.0, 1.0), 10.0);
    t.bootstrap(n0).expect("fresh network");
    let mut auditor = TopologyAuditor::new();
    assert!(auditor.observe(&t).is_empty(), "bootstrap must audit clean");
    for &(op, x, y) in ops {
        apply_audited(&mut t, &mut auditor, op, x, y);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interleaved split/merge/fail-over/hand-off sequences keep every
    /// structural invariant, observed after each individual operation.
    #[test]
    fn model_explorer_stays_audit_clean(
        ops in prop::collection::vec((any::<u8>(), 0.0..=64.0, 0.0..=64.0), 1..32),
    ) {
        let t = build_audited(&ops);
        // And the summary view agrees with the typed audit.
        prop_assert!(t.validate().is_ok(), "validate: {:?}", t.validate());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The live regions tessellate the space after any legal history.
    #[test]
    fn tessellation_stays_complete(
        ops in prop::collection::vec((any::<u8>(), 0.0..=64.0, 0.0..=64.0), 1..32),
        samples in prop::collection::vec((0.0..=64.0, 0.0..=64.0), 24),
    ) {
        let t = build_audited(&ops);
        let regions: Vec<_> = t.regions().collect();

        // Areas sum to the space's area.
        let sum: f64 = regions.iter().map(|(_, e)| e.region().area()).sum();
        prop_assert!(
            (sum - space().bounds().area()).abs() < 1e-6,
            "area sum {sum} != space area {}",
            space().bounds().area()
        );

        // No pairwise positive-area overlap.
        for (i, (ra, ea)) in regions.iter().enumerate() {
            for (rb, eb) in regions.iter().skip(i + 1) {
                prop_assert!(
                    !ea.region().intersects(&eb.region()),
                    "{ra} and {rb} overlap: {:?} vs {:?}",
                    ea.region(),
                    eb.region()
                );
            }
        }

        // Every sampled point is covered by exactly one region (the
        // half-open rule plus boundary closure make this exact, not
        // "at least one").
        for &(x, y) in &samples {
            let p = probe(x, y);
            let covering: Vec<RegionId> = regions
                .iter()
                .filter(|(_, e)| e.covers(p, t.space()))
                .map(|(rid, _)| *rid)
                .collect();
            prop_assert!(
                covering.len() == 1,
                "{p:?} covered by {covering:?} (want exactly one)"
            );
            prop_assert_eq!(covering[0], t.locate(p).expect("in space"));
        }

        // Neighbor links are symmetric edge-adjacencies between live regions.
        for (rid, e) in &regions {
            for &n in e.neighbors() {
                let ne = t.region(n);
                prop_assert!(ne.is_some(), "{rid} lists dead neighbor {n}");
                let ne = ne.unwrap();
                prop_assert!(
                    e.region().touches_edge(&ne.region()),
                    "{rid} and {n} linked but not edge-adjacent"
                );
                prop_assert!(
                    ne.neighbors().contains(rid),
                    "link {rid} -> {n} not mirrored"
                );
            }
        }
    }
}
