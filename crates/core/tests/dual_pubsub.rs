//! Regression test: user requests entering through a **secondary** owner
//! must be handled by the primary (§2.3 — the primary "handles all the
//! requests"; the secondary only replicates).
//!
//! Reproduces a bug where a secondary covering the publish position
//! stored the record in its local replica, so the primary (and therefore
//! queries routed to it) never saw the data.

use geogrid_core::engine::sim::SimHarness;
use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode, Input};
use geogrid_core::service::{LocationQuery, LocationRecord};
use geogrid_core::topology::Role;
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region, Space};

fn harness() -> SimHarness {
    let mut h = SimHarness::new(
        Space::paper_evaluation(),
        EngineConfig {
            mode: EngineMode::DualPeer,
            ..EngineConfig::default()
        },
        5,
    );
    let coords = [
        Point::new(10.0, 10.0),
        Point::new(54.0, 10.0),
        Point::new(10.0, 54.0),
        Point::new(54.0, 54.0),
        Point::new(32.0, 32.0),
        Point::new(20.0, 40.0),
    ];
    let caps = [100.0, 10.0, 10.0, 1.0, 1000.0, 10.0];
    h.bootstrap(coords[0], caps[0]);
    for i in 1..6 {
        h.join(coords[i], caps[i]);
        h.run_for(400);
    }
    h.settle();
    h
}

#[test]
fn publish_through_secondary_reaches_queries() {
    let mut h = harness();
    // Find a secondary whose region covers the lot.
    let lot = Point::new(52.0, 52.0);
    let space = h.space();
    let via_secondary = h
        .owner_views()
        .into_iter()
        .find(|(_, v)| v.role == Role::Secondary && space.region_covers(&v.region, lot))
        .map(|(id, _)| id);
    // Publish through that secondary if one exists (the seed above makes
    // one); otherwise through any node — the assertion still must hold.
    let publisher = via_secondary.unwrap_or(NodeId::new(1));
    h.inject(
        publisher,
        Input::UserPublish {
            record: LocationRecord::new(1, "parking", lot, b"23".to_vec()),
        },
    );
    h.run_for(1_000);

    h.inject(
        NodeId::new(0),
        Input::UserQuery {
            query: LocationQuery::new(Region::new(50.0, 50.0, 4.0, 4.0), NodeId::new(0)),
        },
    );
    h.run_for(1_000);
    let got: usize = h
        .events_of(NodeId::new(0))
        .iter()
        .map(|e| match e {
            ClientEvent::QueryResults { records, .. } => records.len(),
            _ => 0,
        })
        .sum();
    assert!(got > 0, "published record never reached the query");
}

#[test]
fn replicas_receive_periodic_sync() {
    let mut h = harness();
    // Publish somewhere; after a few sync periods every secondary whose
    // region covers the record holds a replica.
    let lot = Point::new(12.0, 12.0);
    h.inject(
        NodeId::new(0),
        Input::UserPublish {
            record: LocationRecord::new(7, "traffic", lot, vec![]),
        },
    );
    h.run_for(2_000); // several 5-tick sync periods
    let space = h.space();
    for (id, v) in h.owner_views() {
        if v.role == Role::Secondary && space.region_covers(&v.region, lot) {
            assert!(
                v.records > 0,
                "secondary {id} covering the record has an empty replica"
            );
        }
    }
}
