//! Regression test for the `u8` visited-stamp generation wrap in
//! [`RouteScratch`]: the generation counter lives in one byte, so query
//! #256 through the same scratch wraps it back past 255. Without the
//! wrap-handling in `next_generation` (clear the stamp array, restart at
//! 1), every region visited 256 queries ago would alias the new
//! generation as "already visited" and silently deform the route.
//!
//! The test drives well over 256 queries — greedy and express — through
//! one long-lived [`Router`] (which owns the scratch), comparing every
//! route hop-for-hop against the allocating
//! [`routing::route_uncached`] reference, and interleaves topology
//! growth so the stamp array is also resized mid-stream.

use geogrid_core::routing::{self, RouteOptions, Router};
use geogrid_core::{RegionId, Topology};
use geogrid_geometry::{Point, Space};

/// Deterministic coordinate stream (Weyl sequence).
fn coord(i: u64) -> Point {
    let x = ((i as f64 * 0.754877666) % 1.0) * 63.0 + 0.5;
    let y = ((i as f64 * 0.569840296) % 1.0) * 63.0 + 0.5;
    Point::new(x, y)
}

fn grow(t: &mut Topology, at: Point) {
    let rid = t.locate_scan(at).expect("in space");
    let primary = t.region(rid).expect("live").primary();
    let j = t.register_node(at, 10.0);
    t.split_region(rid, primary, j).expect("split");
}

#[test]
fn visited_stamps_survive_generation_wraparound() {
    let mut t = Topology::new(Space::paper_evaluation());
    let n0 = t.register_node(Point::new(1.0, 1.0), 10.0);
    t.bootstrap(n0).expect("bootstrap");
    for i in 1..64 {
        grow(&mut t, coord(i));
    }

    let mut router = Router::new();
    let ids: Vec<RegionId> = t.region_ids().collect();
    // 700 routes through ONE router: the u8 generation wraps twice
    // (at queries 256 and 512 of each engine's begin() call pattern).
    // Each query must still match the reference, which allocates a fresh
    // visited set every time and so cannot be affected by the wrap.
    for q in 0..700u64 {
        let from = ids[(q as usize * 7) % ids.len()];
        let target = coord(q * 3 + 1);
        let reference = routing::route_uncached(&t, from, target).expect("reference");

        if q % 2 == 0 {
            let executor = router
                .route(&t, from, target, &RouteOptions::greedy())
                .expect("cached");
            assert_eq!(executor, reference.executor, "query {q}");
            assert_eq!(router.hops(), &reference.hops[..], "query {q}");
        } else {
            let executor = router
                .route(&t, from, target, &RouteOptions::express())
                .expect("express");
            assert_eq!(executor, reference.executor, "query {q}");
            assert!(
                router.hop_count() <= reference.hop_count(),
                "query {q}: express {} hops vs greedy {}",
                router.hop_count(),
                reference.hop_count()
            );
            let handoff = router.hops()[router.express_prefix()];
            let tail = routing::route_uncached(&t, handoff, target).expect("tail reference");
            assert_eq!(
                &router.hops()[router.express_prefix()..],
                &tail.hops[..],
                "query {q}: last mile diverged from the greedy reference"
            );
        }

        // Mid-stream growth right before each wrap boundary: the stamp
        // array must resize AND the stale bytes of the new tail must not
        // alias any generation.
        if q == 250 || q == 500 {
            for i in 0..8 {
                grow(&mut t, coord(1000 + q * 10 + i));
            }
        }
    }
    assert!(t.validate().is_ok(), "final topology invalid");
}
