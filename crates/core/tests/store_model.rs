//! Property test: the production [`RegionStore`] agrees op-for-op with a
//! naive `Vec`-scan reference model.
//!
//! The harness maintains a set of **shards** — (region, store) pairs
//! tiling the 64×64 space, exactly like region owners in the engine —
//! next to a reference model holding plain `Vec`s per shard. Every
//! operation is applied to both sides and the observable outputs are
//! compared:
//!
//! * `publish` → the notified subscriber list (sorted, duplicates kept);
//! * `query` → the matching record ids, per shard;
//! * `unsubscribe` → the "did it exist" bool, per shard;
//! * after **every** op → per-shard live record and subscription sets
//!   (full field equality), so split/merge hand-off provably preserves
//!   every live record and subscription exactly once.
//!
//! The model resolves merge-time duplicate ids by publish sequence
//! (ticks are strictly increasing, so HLC order coincides with publish
//! order), and prunes expiry lazily at comparison time — the store's
//! wheel may sweep earlier or later, but live content at the current
//! tick must match exactly.

use geogrid_core::service::{LocationQuery, LocationRecord, RegionStore, Subscription};
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region, SplitAxis};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Publish {
        id: u64,
        x: f64,
        y: f64,
        topic: u8,
        expiry: Option<u8>,
    },
    Query {
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        topic: Option<u8>,
    },
    Subscribe {
        id: u64,
        subscriber: u64,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        topic: Option<u8>,
        ttl: u8,
    },
    Unsubscribe {
        subscriber: u64,
        id: u64,
    },
    Expire,
    Split {
        shard: usize,
        horizontal: bool,
    },
    Merge {
        a: usize,
        b: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let coord = 0.0..63.9f64;
    let extent = 0.5..20.0f64;
    prop_oneof![
        (
            0..8u64,
            coord.clone(),
            coord.clone(),
            0..3u8,
            proptest::option::of(0..40u8)
        )
            .prop_map(|(id, x, y, topic, expiry)| Op::Publish {
                id,
                x,
                y,
                topic,
                expiry
            }),
        (
            coord.clone(),
            coord.clone(),
            extent.clone(),
            extent.clone(),
            proptest::option::of(0..3u8)
        )
            .prop_map(|(x, y, w, h, topic)| Op::Query { x, y, w, h, topic }),
        (
            0..4u64,
            0..4u64,
            coord.clone(),
            coord.clone(),
            extent.clone(),
            extent,
            proptest::option::of(0..3u8),
            1..60u8
        )
            .prop_map(|(id, subscriber, x, y, w, h, topic, ttl)| Op::Subscribe {
                id,
                subscriber,
                x,
                y,
                w,
                h,
                topic,
                ttl,
            }),
        (0..4u64, 0..4u64).prop_map(|(subscriber, id)| Op::Unsubscribe { subscriber, id }),
        Just(Op::Expire),
        (any::<usize>(), any::<bool>())
            .prop_map(|(shard, horizontal)| Op::Split { shard, horizontal }),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Merge { a, b }),
    ]
}

fn topic_name(t: u8) -> String {
    format!("t{t}")
}

/// One reference shard: plain `Vec`s, linear scans, publish-sequence
/// numbers standing in for HLC stamps.
#[derive(Debug, Clone)]
struct ModelShard {
    region: Region,
    records: Vec<(LocationRecord, u64)>,
    subs: Vec<Subscription>,
}

impl ModelShard {
    fn upsert_record(&mut self, record: LocationRecord, seq: u64) {
        self.records.retain(|(r, _)| r.id() != record.id());
        self.records.push((record, seq));
    }

    fn upsert_sub(&mut self, sub: Subscription) {
        self.subs
            .retain(|s| !(s.id() == sub.id() && s.subscriber() == sub.subscriber()));
        self.subs.push(sub);
    }

    fn remove_sub(&mut self, subscriber: NodeId, id: u64) -> bool {
        let before = self.subs.len();
        self.subs
            .retain(|s| !(s.id() == id && s.subscriber() == subscriber));
        self.subs.len() != before
    }
}

type RecordKey = (u64, u64, u64, String, Vec<u8>, Option<u64>);
type SubKey = (u64, u64, u64, u64, u64, u64, u64, Option<String>);

fn record_key(r: &LocationRecord) -> RecordKey {
    (
        r.id(),
        r.position().x.to_bits(),
        r.position().y.to_bits(),
        r.topic().to_string(),
        r.payload().to_vec(),
        r.expires_at(),
    )
}

fn sub_key(s: &Subscription) -> SubKey {
    (
        s.subscriber().as_u64(),
        s.id(),
        s.expires_at(),
        s.area().x().to_bits(),
        s.area().y().to_bits(),
        s.area().width().to_bits(),
        s.area().height().to_bits(),
        s.topic().map(str::to_string),
    )
}

/// Per-shard live content must match the model exactly (expired entries
/// the wheel has not swept yet are invisible; the model prunes lazily).
fn check_shards(
    stores: &[RegionStore],
    model: &[ModelShard],
    now: u64,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(stores.len(), model.len());
    for (i, (store, shard)) in stores.iter().zip(model).enumerate() {
        let mut got: Vec<RecordKey> = store
            .records()
            .filter(|r| !r.is_expired(now))
            .map(record_key)
            .collect();
        got.sort();
        let mut want: Vec<RecordKey> = shard
            .records
            .iter()
            .filter(|(r, _)| !r.is_expired(now))
            .map(|(r, _)| record_key(r))
            .collect();
        want.sort();
        prop_assert_eq!(&got, &want, "record mismatch in shard {} at t={}", i, now);

        let mut got: Vec<SubKey> = store
            .subscriptions()
            .filter(|s| !s.is_expired(now))
            .map(sub_key)
            .collect();
        got.sort();
        let mut want: Vec<SubKey> = shard
            .subs
            .iter()
            .filter(|s| !s.is_expired(now))
            .map(sub_key)
            .collect();
        want.sort();
        prop_assert_eq!(
            &got,
            &want,
            "subscription mismatch in shard {} at t={}",
            i,
            now
        );
    }
    Ok(())
}

fn run_ops(ops: Vec<Op>) -> Result<(), TestCaseError> {
    let space = Region::new(0.0, 0.0, 64.0, 64.0);
    let mut stores = vec![RegionStore::new()];
    stores[0].set_node(1);
    let mut model = vec![ModelShard {
        region: space,
        records: Vec::new(),
        subs: Vec::new(),
    }];
    let mut now = 0u64;

    for op in ops {
        // Strictly increasing ticks: publish order and HLC order coincide,
        // so the model's sequence numbers predict every LWW resolution.
        now += 1;
        match op {
            Op::Publish {
                id,
                x,
                y,
                topic,
                expiry,
            } => {
                let pos = Point::new(x, y);
                let mut record = LocationRecord::new(id, topic_name(topic), pos, vec![id as u8]);
                if let Some(e) = expiry {
                    record = record.with_expiry(now + e as u64);
                }
                // Exactly one shard covers the position (half-open tiling).
                let i = model
                    .iter()
                    .position(|s| s.region.contains(pos))
                    .expect("shards tile the space");
                let notified = stores[i].publish(record.clone(), now);
                let mut want: Vec<NodeId> = model[i]
                    .subs
                    .iter()
                    .filter(|s| s.matches(pos, record.topic(), now))
                    .map(Subscription::subscriber)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(notified, want, "notify mismatch at t={}", now);
                if record.is_expired(now) {
                    model[i].records.retain(|(r, _)| r.id() != id);
                } else {
                    model[i].upsert_record(record, now);
                }
            }
            Op::Query { x, y, w, h, topic } => {
                let mut q = LocationQuery::new(Region::new(x, y, w, h), NodeId::new(99));
                if let Some(t) = topic {
                    q = q.with_topic(topic_name(t));
                }
                for (store, shard) in stores.iter().zip(&model) {
                    let got: Vec<u64> = store.query(&q, now).iter().map(|r| r.id()).collect();
                    let mut want: Vec<u64> = shard
                        .records
                        .iter()
                        .filter(|(r, _)| !r.is_expired(now) && q.matches(r.position(), r.topic()))
                        .map(|(r, _)| r.id())
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "query mismatch at t={}", now);
                }
            }
            Op::Subscribe {
                id,
                subscriber,
                x,
                y,
                w,
                h,
                topic,
                ttl,
            } => {
                let mut sub = Subscription::new(
                    id,
                    Region::new(x, y, w, h),
                    NodeId::new(subscriber),
                    now + ttl as u64,
                );
                if let Some(t) = topic {
                    sub = sub.with_topic(topic_name(t));
                }
                // Flooded to every overlapping shard, like the engine.
                for (store, shard) in stores.iter_mut().zip(&mut model) {
                    if sub.area().intersects(&shard.region) {
                        store.subscribe(sub.clone(), now);
                        if sub.is_expired(now) {
                            shard.remove_sub(sub.subscriber(), sub.id());
                        } else {
                            shard.upsert_sub(sub.clone());
                        }
                    }
                }
            }
            Op::Unsubscribe { subscriber, id } => {
                for (store, shard) in stores.iter_mut().zip(&mut model) {
                    let was_live = shard.subs.iter().any(|s| {
                        s.id() == id
                            && s.subscriber() == NodeId::new(subscriber)
                            && !s.is_expired(now)
                    });
                    let had_any = shard.remove_sub(NodeId::new(subscriber), id);
                    let got = store.unsubscribe(NodeId::new(subscriber), id);
                    // The bool is only well-defined for live subscriptions:
                    // an expired one may or may not have been swept already,
                    // so the store is free to answer either way there.
                    if was_live {
                        prop_assert!(got, "live unsubscribe returned false at t={}", now);
                    } else if !had_any {
                        prop_assert!(!got, "phantom unsubscribe returned true at t={}", now);
                    }
                }
            }
            Op::Expire => {
                for store in &mut stores {
                    store.expire(now);
                }
            }
            Op::Split { shard, horizontal } => {
                let i = shard % stores.len();
                let region = model[i].region;
                if region.width() < 1.0 || region.height() < 1.0 {
                    continue; // at the extent floor: refuse, like the engine
                }
                let axis = if horizontal {
                    SplitAxis::Latitude
                } else {
                    SplitAxis::Longitude
                };
                let (own, other) = region.split(axis);
                let new_store = stores[i].split_for(&own, &other);
                stores.push(new_store);
                // Model: records partition by position; subscriptions
                // duplicate into every half they overlap.
                let old = std::mem::replace(
                    &mut model[i],
                    ModelShard {
                        region: own,
                        records: Vec::new(),
                        subs: Vec::new(),
                    },
                );
                let mut new_shard = ModelShard {
                    region: other,
                    records: Vec::new(),
                    subs: Vec::new(),
                };
                for (r, seq) in old.records {
                    if other.contains(r.position()) {
                        new_shard.records.push((r, seq));
                    } else {
                        model[i].records.push((r, seq));
                    }
                }
                for s in old.subs {
                    let in_other = s.area().intersects(&other);
                    let in_own = s.area().intersects(&own);
                    if in_other {
                        new_shard.subs.push(s.clone());
                    }
                    if in_own || !in_other {
                        model[i].subs.push(s);
                    }
                }
                model.push(new_shard);
            }
            Op::Merge { a, b } => {
                if stores.len() < 2 {
                    continue;
                }
                let ia = a % stores.len();
                let ib = b % stores.len();
                if ia == ib {
                    continue;
                }
                let Some(merged) = model[ia].region.merge(&model[ib].region) else {
                    continue; // not adjacent same-extent rectangles
                };
                let absorbed_store = stores.swap_remove(ib);
                let absorbed_model = model.swap_remove(ib);
                // swap_remove may have moved shard `ia`.
                let ia = if ia == stores.len() { ib } else { ia };
                stores[ia].absorb(absorbed_store);
                model[ia].region = merged;
                for (r, seq) in absorbed_model.records {
                    match model[ia].records.iter_mut().find(|(x, _)| x.id() == r.id()) {
                        Some(existing) => {
                            // Ticks are unique per publish, so sequence
                            // order is exactly HLC order.
                            if seq > existing.1 {
                                *existing = (r, seq);
                            }
                        }
                        None => model[ia].records.push((r, seq)),
                    }
                }
                for s in absorbed_model.subs {
                    match model[ia]
                        .subs
                        .iter_mut()
                        .find(|x| x.id() == s.id() && x.subscriber() == s.subscriber())
                    {
                        Some(existing) => {
                            // Later-expiring registration wins; ties keep
                            // the existing one.
                            if s.expires_at() > existing.expires_at() {
                                *existing = s;
                            }
                        }
                        None => model[ia].subs.push(s),
                    }
                }
            }
        }
        check_shards(&stores, &model, now)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        run_ops(ops)?;
    }
}
