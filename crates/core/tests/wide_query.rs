//! Wide-area queries: a query rectangle spanning many regions must reach
//! every overlapping region through the deduplicated fan-out flood, not
//! just the executor's immediate neighbors.

use geogrid_core::engine::sim::SimHarness;
use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode, Input};
use geogrid_core::service::{LocationQuery, LocationRecord};
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region, Space};

fn harness(n: usize) -> SimHarness {
    let mut h = SimHarness::new(
        Space::paper_evaluation(),
        EngineConfig {
            mode: EngineMode::Basic,
            ..EngineConfig::default()
        },
        9,
    );
    let coord = |i: usize| {
        Point::new(
            ((i as f64 + 1.0) * 0.754877666).fract() * 63.0 + 0.5,
            ((i as f64 + 1.0) * 0.569840296).fract() * 63.0 + 0.5,
        )
    };
    h.bootstrap(coord(0), 10.0);
    for i in 1..n {
        h.join(coord(i), 10.0);
        h.run_for(250);
    }
    h.settle();
    h
}

#[test]
fn space_wide_query_reaches_every_region() {
    let mut h = harness(16);
    // Publish one record per node, each at its own coordinate (so the
    // records spread over many regions).
    let positions: Vec<Point> = (0..16)
        .map(|i| {
            Point::new(
                ((i as f64 + 1.0) * 0.754877666_f64).fract() * 63.0 + 0.5,
                ((i as f64 + 1.0) * 0.569840296_f64).fract() * 63.0 + 0.5,
            )
        })
        .collect();
    for (i, p) in positions.iter().enumerate() {
        h.inject(
            NodeId::new(i as u64),
            Input::UserPublish {
                record: LocationRecord::new(i as u64, "poi", *p, vec![]),
            },
        );
        h.run_for(150);
    }
    h.run_for(1_000);

    // One query covering (almost) the whole space from node 0.
    let asker = NodeId::new(0);
    h.inject(
        asker,
        Input::UserQuery {
            query: LocationQuery::new(Region::new(0.1, 0.1, 63.8, 63.8), asker),
        },
    );
    h.run_for(2_000);

    // Gather all records across the fan-out replies of the last query.
    let mut got: Vec<u64> = h
        .events_of(asker)
        .iter()
        .filter_map(|e| match e {
            ClientEvent::QueryResults { records, .. } => Some(records),
            _ => None,
        })
        .flatten()
        .map(|r| r.id())
        .collect();
    got.sort();
    got.dedup();
    assert_eq!(
        got.len(),
        16,
        "wide query found only {} of 16 records: {got:?}",
        got.len()
    );
}

#[test]
fn flood_does_not_duplicate_answers() {
    let mut h = harness(12);
    let spot = Point::new(30.0, 30.0);
    h.inject(
        NodeId::new(3),
        Input::UserPublish {
            record: LocationRecord::new(1, "poi", spot, vec![]),
        },
    );
    h.run_for(800);
    let asker = NodeId::new(7);
    h.inject(
        asker,
        Input::UserQuery {
            query: LocationQuery::new(Region::new(10.0, 10.0, 40.0, 40.0), asker),
        },
    );
    h.run_for(2_000);
    // The record lives in exactly one region; the flood must deliver it
    // exactly once.
    let copies: usize = h
        .events_of(asker)
        .iter()
        .filter_map(|e| match e {
            ClientEvent::QueryResults { records, .. } => Some(records),
            _ => None,
        })
        .flatten()
        .filter(|r| r.id() == 1)
        .count();
    assert_eq!(copies, 1, "record delivered {copies} times");
}
