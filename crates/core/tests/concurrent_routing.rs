//! Concurrent-routing stress: ≥ 8 reader threads route lock-free against
//! epoch-published [`TopologySnapshot`]s while a writer thread storms the
//! live [`Topology`] with splits and merges.
//!
//! Each reader holds its own [`SnapshotReader`] (steady state: one atomic
//! load per query) and [`Router`] (per-thread scratch + caches), and on
//! every iteration checks the two properties the RCU design promises:
//!
//! 1. **Epoch coherence** — the snapshots a reader observes come from the
//!    one published instance and their epochs never move backwards, and
//!    after the writer finishes every reader converges to the writer's
//!    final epoch.
//! 2. **Routing parity under churn** — a greedy [`Router::route`] on the
//!    pinned snapshot is hop-for-hop identical to the allocating
//!    [`routing::route_uncached`] reference *on that same snapshot*, no
//!    matter how far the live topology has moved on; the express engine
//!    reaches the same executor in no more hops with a greedy last mile.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use geogrid_core::routing::{self, RouteOptions, Router};
use geogrid_core::snapshot::TopologySnapshot;
use geogrid_core::{RegionId, Topology};
use geogrid_geometry::{Point, Space};

const READERS: usize = 8;
const WRITER_OPS: u64 = 300;

/// Deterministic coordinate stream (Weyl sequence), decorrelated by seed.
/// `k` stays small so the `fract()` keeps full fractional precision.
fn coord(seed: u64, i: u64) -> Point {
    let k = (seed * 100_000 + i) as f64;
    let x = (k * 0.754877666).fract() * 63.0 + 0.5;
    let y = (k * 0.569840296).fract() * 63.0 + 0.5;
    Point::new(x, y)
}

fn grow(t: &mut Topology, at: Point) {
    let rid = t.locate_scan(at).expect("in space");
    let primary = t.region(rid).expect("live").primary();
    let j = t.register_node(at, 10.0);
    t.split_region(rid, primary, j).expect("split");
}

/// Merges the region covering `at` with its first rectangle-compatible
/// neighbor, if any (same driver as the route-cache property test).
fn shrink(t: &mut Topology, at: Point) {
    let Ok(rid) = t.locate_scan(at) else { return };
    let entry = t.region(rid).expect("live");
    let primary = entry.primary();
    let neighbors: Vec<RegionId> = entry.neighbors().to_vec();
    for n in neighbors {
        let Some(ne) = t.region(n) else { continue };
        if t.region(rid)
            .expect("live")
            .region()
            .merge(&ne.region())
            .is_some()
        {
            t.merge_regions(rid, n, primary, None)
                .expect("owners include the kept primary");
            return;
        }
    }
}

/// One reader iteration: greedy parity hop-for-hop against the uncached
/// reference on the same snapshot, then the express contract (same
/// executor, greedy last mile). Returns `(greedy_hops, express_hops)` so
/// the caller can assert the aggregate hop bound — a single express query
/// may overshoot greedy by a finger hop, but the workload total must not
/// (the same contract `routing_bench` enforces).
fn check_parity(
    snap: &TopologySnapshot,
    router: &mut Router,
    from: RegionId,
    target: Point,
) -> (usize, usize) {
    let reference = routing::route_uncached(snap, from, target).expect("reference");
    let executor = router
        .route(snap, from, target, &RouteOptions::greedy())
        .expect("greedy on snapshot");
    assert_eq!(executor, reference.executor, "greedy executor diverged");
    assert_eq!(
        router.hops(),
        &reference.hops[..],
        "greedy hops diverged on a pinned snapshot"
    );

    let executor = router
        .route(snap, from, target, &RouteOptions::express())
        .expect("express on snapshot");
    assert_eq!(executor, reference.executor, "express executor diverged");
    let handoff = router.hops()[router.express_prefix()];
    let tail = routing::route_uncached(snap, handoff, target).expect("tail reference");
    assert_eq!(
        &router.hops()[router.express_prefix()..],
        &tail.hops[..],
        "express last mile diverged from the greedy reference"
    );
    (reference.hop_count(), router.hop_count())
}

#[test]
fn readers_route_coherently_under_writer_storm() {
    // ~512-region network before the storm starts.
    let mut t = Topology::new(Space::paper_evaluation());
    let n0 = t.register_node(Point::new(1.0, 1.0), 10.0);
    t.bootstrap(n0).expect("bootstrap");
    for i in 1..512 {
        grow(&mut t, coord(0, i));
    }
    let cell = t.publish_handle();
    let instance = t.instance_id();

    let done = AtomicBool::new(false);
    let start = Barrier::new(READERS + 1);
    // (iterations, distinct epochs, last epoch) per reader.
    let stats: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for reader_id in 0..READERS as u64 {
            let mut reader = cell.reader();
            let (done, start) = (&done, &start);
            handles.push(s.spawn(move || {
                let mut router = Router::new();
                let mut last_epoch = 0u64;
                let mut distinct = 0u64;
                let mut iters = 0u64;
                let (mut greedy_total, mut express_total) = (0usize, 0usize);
                start.wait();
                // Keep routing until the writer signals done, then one
                // more iteration so the final published epoch is observed.
                let mut finish = false;
                while !finish {
                    finish = done.load(Ordering::Acquire);
                    let snap = Arc::clone(reader.current());
                    assert_eq!(snap.instance_id(), instance, "foreign snapshot");
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch moved backwards: {} after {last_epoch}",
                        snap.epoch()
                    );
                    if snap.epoch() != last_epoch {
                        distinct += 1;
                        last_epoch = snap.epoch();
                    }
                    // Route between snapshot-live regions; the writer may
                    // be many epochs ahead by now — parity is against the
                    // pinned snapshot, not the live topology.
                    let ids: Vec<RegionId> = snap.region_ids().collect();
                    let from = ids[(iters as usize * 13) % ids.len()];
                    let target = coord(reader_id + 1, iters);
                    let (g, e) = check_parity(&snap, &mut router, from, target);
                    greedy_total += g;
                    express_total += e;
                    iters += 1;
                }
                assert!(
                    express_total <= greedy_total,
                    "express walked {express_total} total hops vs greedy {greedy_total}"
                );
                (iters, distinct, last_epoch)
            }));
        }

        // Writer: split/merge storm, republishing on every mutation.
        start.wait();
        for i in 0..WRITER_OPS {
            if i % 3 == 2 {
                shrink(&mut t, coord(7, i));
            } else {
                grow(&mut t, coord(11, i));
            }
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);

        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });

    // Every reader converged to the final published geometry...
    let final_epoch = t.epoch();
    assert_eq!(cell.load().epoch(), final_epoch, "final publish missing");
    for &(iters, _, last) in &stats {
        assert!(iters > 0);
        assert_eq!(last, final_epoch, "reader stopped on a stale epoch");
    }
    // ...and the storm was actually observed mid-flight: across all
    // readers, more than one distinct epoch was seen.
    let total_distinct: u64 = stats.iter().map(|&(_, d, _)| d).sum();
    assert!(
        total_distinct > READERS as u64,
        "readers only ever saw one epoch each: {stats:?}"
    );
    // The live topology survived the storm intact.
    assert!(t.validate().is_ok(), "{:?}", t.validate());
    assert!(t.audit().is_empty(), "{:?}", t.audit());
}

/// A pinned snapshot keeps routing identically forever: grab one, let the
/// writer churn 100 epochs, and re-check parity on the *old* snapshot —
/// `Arc` reclamation means it lives until the last reader drops it.
#[test]
fn pinned_snapshot_survives_later_epochs() {
    let mut t = Topology::new(Space::paper_evaluation());
    let n0 = t.register_node(Point::new(1.0, 1.0), 10.0);
    t.bootstrap(n0).expect("bootstrap");
    for i in 1..64 {
        grow(&mut t, coord(0, i));
    }
    let cell = t.publish_handle();
    let pinned = cell.load();
    let pinned_epoch = pinned.epoch();

    // Record reference routes on the pinned snapshot before the churn.
    let mut router = Router::new();
    let ids: Vec<RegionId> = pinned.region_ids().collect();
    let before: Vec<(RegionId, Vec<RegionId>)> = (0..32u64)
        .map(|q| {
            let from = ids[(q as usize * 7) % ids.len()];
            let executor = router
                .route(&*pinned, from, coord(3, q), &RouteOptions::greedy())
                .expect("routable");
            (executor, router.hops().to_vec())
        })
        .collect();

    for i in 0..100 {
        grow(&mut t, coord(5, i));
    }
    assert!(cell.load().epoch() > pinned_epoch, "churn did not publish");
    assert_eq!(pinned.epoch(), pinned_epoch, "pinned snapshot mutated");

    // The same queries on the pinned snapshot still walk the same paths.
    for (q, (executor, hops)) in before.iter().enumerate() {
        let from = ids[(q * 7) % ids.len()];
        let again = router
            .route(&*pinned, from, coord(3, q as u64), &RouteOptions::greedy())
            .expect("routable");
        assert_eq!(again, *executor, "query {q}");
        assert_eq!(router.hops(), &hops[..], "query {q}");
    }
}
