//! Message-level load-balance adaptation: the engine's workload-statistics
//! exchange and the distributed execution of mechanisms (a)/(e).
//!
//! Scenario: a weak primary's region sits under a query hot spot while a
//! neighbor region holds a strong, idle secondary. After a few statistics
//! windows the weak primary must trigger (its measured index exceeds √2×
//! the neighborhood minimum) and trade places with the strong secondary —
//! entirely through protocol messages.

use geogrid_core::engine::sim::SimHarness;
use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode, Input};
use geogrid_core::service::LocationQuery;
use geogrid_core::topology::Role;
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region, Space};

/// Builds the two-region scenario:
/// * south half: weak primary (n2, cap 2) + secondary (n0, cap 1);
/// * north half: strong primary (n1, cap 100) + strong secondary (n3, cap 100).
fn harness() -> SimHarness {
    let mut h = SimHarness::new(
        Space::paper_evaluation(),
        EngineConfig {
            mode: EngineMode::DualPeer,
            ..EngineConfig::default()
        },
        11,
    );
    h.bootstrap(Point::new(10.0, 10.0), 1.0); // n0
    h.join(Point::new(50.0, 50.0), 100.0); // n1: stronger -> primary
    h.run_for(400);
    h.join(Point::new(40.0, 20.0), 2.0); // n2: forces the split
    h.run_for(400);
    h.join(Point::new(50.0, 55.0), 100.0); // n3: fills the north half
    h.run_for(400);
    h.settle();
    h
}

fn south_primary(h: &SimHarness) -> Option<(NodeId, f64)> {
    h.owner_views()
        .into_iter()
        .find(|(_, v)| {
            v.role == Role::Primary && h.space().region_covers(&v.region, Point::new(30.0, 10.0))
        })
        .map(|(id, v)| {
            let cap = v.peer.map(|_| 0.0).unwrap_or(0.0);
            let _ = cap;
            (id, 0.0)
        })
}

#[test]
fn hot_weak_primary_swaps_with_strong_remote_secondary() {
    let mut h = harness();
    // Sanity: the south half is owned by the weak node n2.
    let (weak, _) = south_primary(&h).expect("south primary exists");
    assert_eq!(weak, NodeId::new(2), "setup produced unexpected owner");

    // Drive a query hot spot into the south half through the north
    // primary (n1): every query is served by the south primary.
    let asker = NodeId::new(1);
    let hot = Point::new(30.0, 10.0);
    for _ in 0..40 {
        h.inject(
            asker,
            Input::UserQuery {
                query: LocationQuery::new(Region::new(hot.x - 0.5, hot.y - 0.5, 1.0, 1.0), asker),
            },
        );
        h.run_for(150);
    }
    h.run_for(3_000);

    // The south region's primary must now be one of the strong nodes.
    let (new_primary, _) = south_primary(&h).expect("south primary exists");
    assert_ne!(new_primary, NodeId::new(2), "weak primary never relieved");

    // Someone reported executing mechanism (a) or (e).
    let adapted = (0..4).any(|i| {
        h.events_of(NodeId::new(i)).iter().any(|e| {
            matches!(
                e,
                ClientEvent::AdaptationExecuted {
                    mechanism: 'a' | 'e'
                }
            )
        })
    });
    assert!(adapted, "no adaptation event observed");
}

#[test]
fn balance_can_be_disabled() {
    let mut h = SimHarness::new(
        Space::paper_evaluation(),
        EngineConfig {
            mode: EngineMode::DualPeer,
            balance_enabled: false,
            ..EngineConfig::default()
        },
        11,
    );
    h.bootstrap(Point::new(10.0, 10.0), 1.0);
    h.join(Point::new(50.0, 50.0), 100.0);
    h.run_for(400);
    h.join(Point::new(40.0, 20.0), 2.0);
    h.run_for(400);
    h.join(Point::new(50.0, 55.0), 100.0);
    h.run_for(400);
    h.settle();
    let asker = NodeId::new(1);
    let hot = Point::new(30.0, 10.0);
    for _ in 0..30 {
        h.inject(
            asker,
            Input::UserQuery {
                query: LocationQuery::new(Region::new(hot.x - 0.5, hot.y - 0.5, 1.0, 1.0), asker),
            },
        );
        h.run_for(150);
    }
    h.run_for(2_000);
    let adapted = (0..4).any(|i| {
        h.events_of(NodeId::new(i))
            .iter()
            .any(|e| matches!(e, ClientEvent::AdaptationExecuted { .. }))
    });
    assert!(!adapted, "adaptation ran despite being disabled");
}

#[test]
fn sustained_load_never_forks_ownership() {
    // Regression for three hand-off races found under load: (1) a
    // promoted secondary dropping its whole (stale-timed) neighbor table,
    // (2) a granted-away secondary timing out its silent ex-primary and
    // promoting, (3) an inherited secondary keeping its peer link on the
    // displaced primary. Symptom in every case: two primaries owning
    // overlapping regions.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    for seed in [4002u64, 7777, 31] {
        let space = Space::paper_evaluation();
        let mut h = SimHarness::new(
            space,
            EngineConfig {
                mode: EngineMode::DualPeer,
                ..EngineConfig::default()
            },
            seed,
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coord = || Point::new(rng.random_range(0.2..63.8), rng.random_range(0.2..63.8));
        let caps = [1.0, 10.0, 100.0, 1000.0, 10.0];
        h.bootstrap(coord(), 10.0);
        for i in 1..60 {
            h.join(coord(), caps[i % caps.len()]);
            h.run_for(250);
        }
        h.settle();
        let asker = NodeId::new(0);
        for _ in 0..60 {
            let p = coord();
            h.inject(
                asker,
                Input::UserQuery {
                    query: LocationQuery::new(Region::new(p.x - 0.5, p.y - 0.5, 1.0, 1.0), asker),
                },
            );
            h.run_for(60);
        }
        h.run_for(2_000);
        // Primaries must tile without overlap.
        let views = h.owner_views();
        let primaries: Vec<_> = views
            .iter()
            .filter(|(_, v)| v.role == Role::Primary)
            .collect();
        let area: f64 = primaries.iter().map(|(_, v)| v.region.area()).sum();
        assert!(
            (area - 64.0 * 64.0).abs() < 1e-6,
            "seed {seed}: coverage {area}"
        );
        for (i, (ida, va)) in primaries.iter().enumerate() {
            for (idb, vb) in primaries.iter().skip(i + 1) {
                assert!(
                    !va.region.intersects(&vb.region),
                    "seed {seed}: fork {ida} {} vs {idb} {}",
                    va.region,
                    vb.region
                );
            }
        }
    }
}

#[test]
fn quiet_networks_never_adapt() {
    // No queries at all: indexes stay at zero, the trigger never fires,
    // and ownership is stable.
    let mut h = harness();
    let before: Vec<_> = h
        .owner_views()
        .into_iter()
        .map(|(id, v)| (id, v.role, v.region))
        .collect();
    h.run_for(5_000);
    let after: Vec<_> = h
        .owner_views()
        .into_iter()
        .map(|(id, v)| (id, v.role, v.region))
        .collect();
    assert_eq!(before, after, "idle network changed ownership");
}
