//! Property test for the cached routing engine: after every structural
//! mutation in an arbitrary sequence — splits, merges, secondary
//! placement/removal, role swaps, primary departures with fail-over or
//! orphan repair — a greedy [`Router::route`] through one long-lived
//! [`Router`] must be hop-for-hop identical to the uncached reference
//! [`routing::route_uncached`].
//!
//! The router (and the scratch it owns) is deliberately *not* reset
//! between mutations: its next-hop cache carries entries from every
//! earlier geometry epoch, and the queries repeatedly target one hot
//! point so those entries are actually consulted. Any stale entry that
//! leaked across an epoch bump (or a missing bump at a mutation site)
//! shows up as a diverging path.
//!
//! Every query additionally runs through the two-phase express engine
//! ([`RouteOptions::express`]) with the same router, so the express-link
//! maintenance at each mutation site is interleaved with the structural
//! churn: express routes must terminate at the same region as the
//! uncached reference, never exceed its hop count, and finish with a
//! last mile that is hop-for-hop the greedy reference from the handoff.

use geogrid_core::routing::{self, RouteOptions, Router};
use geogrid_core::{RegionId, Topology};
use geogrid_geometry::{Point, Space};
use proptest::prelude::*;

fn space() -> Space {
    Space::paper_evaluation()
}

fn probe(x: f64, y: f64) -> Point {
    space().clamp(Point::new(x, y))
}

/// Applies one encoded mutation, same driver as the grid-index property
/// tests: `op` selects the kind, `(x, y)` the region it targets (via the
/// ground-truth scan).
fn apply_op(t: &mut Topology, op: u8, x: f64, y: f64) {
    let p = probe(x, y);
    let Ok(rid) = t.locate_scan(p) else {
        return;
    };
    let entry = t.region(rid).expect("scan returned a live region");
    let primary = entry.primary();
    let secondary = entry.secondary();
    match op % 8 {
        // Grow the network (biased: three opcodes map here).
        0..=2 => {
            let j = t.register_node(p, 10.0);
            t.split_region(rid, primary, j)
                .expect("split of a live region with a fresh node");
        }
        // Merge with the first neighbor that re-forms a rectangle.
        3 => {
            let neighbors: Vec<RegionId> = entry.neighbors().to_vec();
            for n in neighbors {
                let Some(ne) = t.region(n) else { continue };
                if t.region(rid)
                    .unwrap()
                    .region()
                    .merge(&ne.region())
                    .is_some()
                {
                    t.merge_regions(rid, n, primary, None)
                        .expect("owners include the kept primary");
                    break;
                }
            }
        }
        // Dual-peer lifecycle on the covering region.
        4 => match secondary {
            None => {
                let s = t.register_node(p, 50.0);
                t.set_secondary(rid, s).expect("region was half-full");
            }
            Some(_) => {
                t.take_secondary(rid).expect("region was full");
            }
        },
        // Within-region role swap, or a primary swap with a neighbor
        // (ownership handoffs: must NOT invalidate the route cache).
        5 => {
            if secondary.is_some() {
                t.swap_roles(rid).expect("region was full");
            } else if let Some(&n) = entry.neighbors().first() {
                t.swap_primaries(rid, n).expect("both regions live");
            }
        }
        // Cross-region: promote a neighbor's secondary into this region.
        6 => {
            let with_secondary = entry
                .neighbors()
                .iter()
                .copied()
                .find(|&n| t.region(n).is_some_and(|e| e.secondary().is_some()));
            if let Some(n) = with_secondary {
                t.switch_primary_with_secondary(rid, n)
                    .expect("neighbor had a secondary");
            }
        }
        // Departure of the primary (fail-over or orphan repair).
        _ => {
            if t.region_count() == 1 && secondary.is_none() {
                return; // keep the network non-empty
            }
            match t.remove_node(primary) {
                Ok(None) => {}
                Ok(Some(orphan)) => {
                    let a = t.register_node(p, 10.0);
                    t.adopt_region(orphan, a).expect("fresh node adopts");
                }
                Err(e) => panic!("remove_node({primary}): {e:?}"),
            }
        }
    }
}

/// Routes `from → target` through both engines and describes any
/// divergence (None = identical executor and hop trace).
fn divergence(t: &Topology, router: &mut Router, from: RegionId, target: Point) -> Option<String> {
    let reference = routing::route_uncached(t, from, target).expect("reference route");
    let executor = router
        .route(t, from, target, &RouteOptions::greedy())
        .expect("cached route");
    if executor != reference.executor {
        return Some(format!(
            "executor diverged: cached {executor} vs reference {} ({from} -> {target:?})",
            reference.executor
        ));
    }
    if router.hops() != &reference.hops[..] {
        return Some(format!(
            "hops diverged: cached {:?} vs reference {:?} ({from} -> {target:?})",
            router.hops(),
            reference.hops
        ));
    }
    None
}

/// Routes `from → target` through the two-phase express engine (same
/// long-lived router — its express slabs carry entries across mutations)
/// and checks the express contract against the uncached reference: same
/// executor, never more hops, and a last-mile segment that is hop-for-hop
/// the greedy reference from the handoff region.
fn express_divergence(
    t: &Topology,
    router: &mut Router,
    from: RegionId,
    target: Point,
) -> Option<String> {
    let reference = routing::route_uncached(t, from, target).expect("reference route");
    let executor = router
        .route(t, from, target, &RouteOptions::express())
        .expect("express route");
    if executor != reference.executor {
        return Some(format!(
            "express executor diverged: {executor} vs reference {} ({from} -> {target:?})",
            reference.executor
        ));
    }
    if router.hop_count() > reference.hop_count() {
        return Some(format!(
            "express route longer than greedy: {} vs {} hops ({from} -> {target:?}, prefix {})",
            router.hop_count(),
            reference.hop_count(),
            router.express_prefix()
        ));
    }
    let handoff = router.hops()[router.express_prefix()];
    let tail = routing::route_uncached(t, handoff, target).expect("tail reference");
    if router.hops()[router.express_prefix()..] != tail.hops[..] {
        return Some(format!(
            "express last mile diverged from greedy reference at handoff {handoff}: \
             {:?} vs {:?} ({from} -> {target:?})",
            &router.hops()[router.express_prefix()..],
            tail.hops
        ));
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cached_routing_never_diverges_from_uncached_reference(
        ops in prop::collection::vec((any::<u8>(), 0.0..=64.0, 0.0..=64.0), 1..40),
        (hx, hy) in (0.0..=64.0, 0.0..=64.0),
    ) {
        let mut t = Topology::new(space());
        let n0 = t.register_node(Point::new(1.0, 1.0), 10.0);
        t.bootstrap(n0).expect("fresh network");
        // The hot destination every interleaved query batch targets: its
        // cache entries are re-consulted across every geometry epoch.
        let hot = probe(hx, hy);
        let mut router = Router::new();
        for &(op, x, y) in &ops {
            apply_op(&mut t, op, x, y);
            let from_a = t.first_region().expect("non-empty");
            let from_b = t.locate_scan(probe(x, y)).expect("in space");
            // Twice toward the hot point from the same source: the second
            // query must hit the cache warmed by the first, then queries
            // from/to the mutation site stress the just-changed geometry.
            for (from, target) in [
                (from_a, hot),
                (from_a, hot),
                (from_b, hot),
                (from_b, probe(x, y)),
                (from_a, probe(64.0 - x, 64.0 - y)),
            ] {
                if let Some(d) = divergence(&t, &mut router, from, target) {
                    prop_assert!(false, "after op {} at ({}, {}): {}", op, x, y, d);
                }
                // The express engine shares the router's scratch (and its
                // cached express slabs) with the greedy queries above, so
                // every mutation's finger rewiring is exercised while
                // stale express entries from earlier epochs are resident.
                if let Some(d) = express_divergence(&t, &mut router, from, target) {
                    prop_assert!(false, "after op {} at ({}, {}): {}", op, x, y, d);
                }
            }
        }
        prop_assert!(t.validate().is_ok(), "invalid topology: {:?}", t.validate());
    }
}
