//! End-to-end tests: real GeoGrid nodes on localhost TCP.
//!
//! Requires the `live` feature (tokio runtime); see crates/transport/Cargo.toml.
#![cfg(feature = "live")]

use std::time::Duration;

use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode};
use geogrid_core::service::{LocationQuery, LocationRecord, Subscription};
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region, Space};
use geogrid_transport::{BootstrapClient, BootstrapServer, NodeRuntime, RuntimeConfig};

fn config(mode: EngineMode) -> RuntimeConfig {
    RuntimeConfig {
        engine: EngineConfig {
            mode,
            heartbeat_interval: 50,
            peer_timeout: 250,
            neighbor_timeout: 1_000,
            max_hops: 64,
            ..EngineConfig::default()
        },
        listen: "127.0.0.1:0".parse().unwrap(),
        tick_interval: Duration::from_millis(50),
    }
}

async fn settle() {
    tokio::time::sleep(Duration::from_millis(400)).await;
}

#[tokio::test]
async fn four_node_overlay_forms_and_serves_queries() {
    let space = Space::paper_evaluation();
    let coords = [
        Point::new(10.0, 10.0),
        Point::new(50.0, 10.0),
        Point::new(10.0, 50.0),
        Point::new(50.0, 50.0),
    ];
    let mut handles = Vec::new();
    for (i, c) in coords.iter().enumerate() {
        let h = NodeRuntime::start(
            NodeId::new(i as u64),
            *c,
            10.0,
            space,
            config(EngineMode::Basic),
        )
        .await
        .expect("start node");
        handles.push(h);
    }
    handles[0].bootstrap().await;
    settle().await;
    for i in 1..4 {
        let entry = handles[0].info().id();
        let addr = handles[0].local_addr();
        handles[i].join(entry, addr).await;
        settle().await;
    }
    // All four own a region; primaries tile the space.
    let mut area = 0.0;
    for h in &handles {
        let view = h.owner_view().await.expect("owner view");
        area += view.region.area();
    }
    assert!((area - space.bounds().area()).abs() < 1e-6, "area {area}");

    // Publish at node 1's corner from node 2, query it from node 3.
    let spot = Point::new(50.0, 10.0);
    handles[2]
        .publish(LocationRecord::new(1, "traffic", spot, b"jam".to_vec()))
        .await;
    settle().await;
    handles[3]
        .query(LocationQuery::new(
            Region::new(spot.x - 1.0, spot.y - 1.0, 2.0, 2.0),
            handles[3].info().id(),
        ))
        .await;
    let mut found = false;
    for _ in 0..20 {
        match handles[3]
            .next_event_timeout(Duration::from_millis(500))
            .await
        {
            Some(ClientEvent::QueryResults { records, .. }) if !records.is_empty() => {
                assert_eq!(records[0].topic(), "traffic");
                found = true;
                break;
            }
            Some(_) => continue,
            None => break,
        }
    }
    assert!(found, "query results never arrived");
    for h in &handles {
        h.shutdown().await;
    }
}

#[tokio::test]
async fn dual_peer_overlay_pairs_and_fails_over() {
    let space = Space::paper_evaluation();
    let h0 = NodeRuntime::start(
        NodeId::new(0),
        Point::new(10.0, 10.0),
        10.0,
        space,
        config(EngineMode::DualPeer),
    )
    .await
    .unwrap();
    h0.bootstrap().await;
    settle().await;
    let mut h1 = NodeRuntime::start(
        NodeId::new(1),
        Point::new(50.0, 50.0),
        5.0,
        space,
        config(EngineMode::DualPeer),
    )
    .await
    .unwrap();
    h1.join(h0.info().id(), h0.local_addr()).await;
    settle().await;
    // Node 1 became the secondary of node 0's region.
    let v1 = h1.owner_view().await.expect("joined");
    assert_eq!(v1.region, space.bounds());
    assert_eq!(v1.peer.unwrap().id(), NodeId::new(0));

    // Kill the primary; the secondary must promote.
    h0.shutdown().await;
    let mut promoted = false;
    for _ in 0..40 {
        match h1.next_event_timeout(Duration::from_millis(500)).await {
            Some(ClientEvent::PromotedToPrimary { .. }) => {
                promoted = true;
                break;
            }
            Some(_) => continue,
            None => break,
        }
    }
    assert!(promoted, "secondary never promoted");
    h1.shutdown().await;
}

#[tokio::test]
async fn subscription_notifies_across_nodes() {
    let space = Space::paper_evaluation();
    let h0 = NodeRuntime::start(
        NodeId::new(0),
        Point::new(10.0, 10.0),
        10.0,
        space,
        config(EngineMode::Basic),
    )
    .await
    .unwrap();
    h0.bootstrap().await;
    settle().await;
    let mut h1 = NodeRuntime::start(
        NodeId::new(1),
        Point::new(50.0, 50.0),
        10.0,
        space,
        config(EngineMode::Basic),
    )
    .await
    .unwrap();
    h1.join(h0.info().id(), h0.local_addr()).await;
    settle().await;

    // Node 1 subscribes to an area owned by node 0; node 0 publishes.
    let area = Region::new(5.0, 5.0, 4.0, 4.0);
    h1.subscribe(Subscription::new(1, area, NodeId::new(1), u64::MAX))
        .await;
    settle().await;
    h0.publish(LocationRecord::new(
        9,
        "parking",
        Point::new(6.0, 6.0),
        vec![],
    ))
    .await;
    let mut notified = false;
    for _ in 0..20 {
        match h1.next_event_timeout(Duration::from_millis(500)).await {
            Some(ClientEvent::Notified { record }) => {
                assert_eq!(record.id(), 9);
                notified = true;
                break;
            }
            Some(_) => continue,
            None => break,
        }
    }
    assert!(notified, "subscriber never notified");
    h0.shutdown().await;
    h1.shutdown().await;
}

#[tokio::test]
async fn bootstrap_directory_round_trip() {
    let server = BootstrapServer::bind("127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let client = BootstrapClient::new(server.local_addr());
    for i in 0..5u64 {
        client
            .register(
                NodeId::new(i),
                format!("127.0.0.1:{}", 7000 + i).parse().unwrap(),
            )
            .await
            .unwrap();
    }
    let listed = client.list().await.unwrap();
    assert_eq!(listed.len(), 5);
}
