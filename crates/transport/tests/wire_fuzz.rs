//! Property/fuzz tests for the wire codec.
//!
//! Two invariants a hand-rolled codec must never lose:
//! 1. decode(encode(m)) == m for every well-formed envelope;
//! 2. decode never panics on arbitrary bytes — corrupt or hostile input
//!    yields `Err`, not UB or a crash.

use geogrid_core::engine::{Message, NeighborInfo};
use geogrid_core::service::{LocationQuery, LocationRecord, RegionStore, Subscription};
use geogrid_core::{NodeId, NodeInfo};
use geogrid_geometry::{Point, Region};
use geogrid_transport::Envelope;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e6..1e6, -1e6..1e6).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_node_info() -> impl Strategy<Value = NodeInfo> {
    (any::<u64>(), arb_point(), 1e-3..1e6)
        .prop_map(|(id, p, cap)| NodeInfo::new(NodeId::new(id), p, cap))
}

fn arb_region() -> impl Strategy<Value = Region> {
    (-1e6..1e6, -1e6..1e6, 1e-3..1e6, 1e-3..1e6).prop_map(|(x, y, w, h)| Region::new(x, y, w, h))
}

fn arb_neighbor() -> impl Strategy<Value = NeighborInfo> {
    (
        arb_node_info(),
        proptest::option::of(arb_node_info()),
        arb_region(),
    )
        .prop_map(|(primary, secondary, region)| NeighborInfo {
            primary,
            secondary,
            region,
        })
}

fn arb_record() -> impl Strategy<Value = LocationRecord> {
    (
        any::<u64>(),
        "[a-z]{1,12}",
        arb_point(),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::option::of(any::<u64>()),
    )
        .prop_map(|(id, topic, pos, payload, expiry)| {
            let r = LocationRecord::new(id, topic, pos, payload);
            match expiry {
                Some(t) => r.with_expiry(t),
                None => r,
            }
        })
}

fn arb_subscription() -> impl Strategy<Value = Subscription> {
    (
        any::<u64>(),
        arb_region(),
        any::<u64>(),
        any::<u64>(),
        proptest::option::of("[a-z]{1,12}"),
    )
        .prop_map(|(id, area, sub, exp, topic)| {
            let s = Subscription::new(id, area, NodeId::new(sub), exp);
            match topic {
                Some(t) => s.with_topic(t),
                None => s,
            }
        })
}

fn arb_store() -> impl Strategy<Value = Box<RegionStore>> {
    (
        proptest::collection::vec(arb_record(), 0..8),
        proptest::collection::vec(arb_subscription(), 0..8),
    )
        .prop_map(|(records, subs)| {
            let mut store = RegionStore::new();
            for s in subs {
                store.subscribe(s, 0);
            }
            for r in records {
                store.publish(r, 0);
            }
            Box::new(store)
        })
}

fn arb_query() -> impl Strategy<Value = LocationQuery> {
    (
        arb_region(),
        any::<u64>(),
        proptest::option::of("[a-z]{1,12}"),
    )
        .prop_map(|(area, issuer, topic)| {
            let q = LocationQuery::new(area, NodeId::new(issuer));
            match topic {
                Some(t) => q.with_topic(t),
                None => q,
            }
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (arb_node_info(), any::<u32>())
            .prop_map(|(joiner, hops)| Message::JoinRequest { joiner, hops }),
        arb_node_info().prop_map(|joiner| Message::JoinDirected { joiner }),
        (
            arb_region(),
            proptest::collection::vec(arb_neighbor(), 0..4),
            arb_store()
        )
            .prop_map(|(region, neighbors, store)| Message::JoinSplit {
                region,
                neighbors,
                store
            }),
        (
            arb_region(),
            arb_node_info(),
            arb_store(),
            proptest::collection::vec(arb_neighbor(), 0..4)
        )
            .prop_map(
                |(region, primary, store, neighbors)| Message::JoinAsSecondary {
                    region,
                    primary,
                    store,
                    neighbors
                }
            ),
        arb_neighbor().prop_map(|info| Message::NeighborUpdate { info }),
        (
            arb_query(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(query, qid, reply, hops, fanout)| Message::Query {
                query,
                query_id: qid,
                reply_to: NodeId::new(reply),
                hops,
                fanout
            }),
        (any::<u64>(), proptest::collection::vec(arb_record(), 0..6))
            .prop_map(|(query_id, records)| Message::QueryReply { query_id, records }),
        (arb_record(), any::<u32>()).prop_map(|(record, hops)| Message::Publish { record, hops }),
        (arb_subscription(), any::<u32>(), any::<bool>())
            .prop_map(|(sub, hops, fanout)| Message::Subscribe { sub, hops, fanout }),
        arb_record().prop_map(|record| Message::Notify { record }),
        (arb_neighbor(), 0.0..1e9).prop_map(|(info, index)| Message::Heartbeat { info, index }),
        (arb_node_info(), 0.0..1e9, any::<bool>()).prop_map(|(requester, index, swap)| {
            Message::StealSecondaryRequest {
                requester,
                index,
                swap,
            }
        }),
        (arb_node_info(), arb_region(), any::<bool>()).prop_map(
            |(secondary, donor_region, swap)| Message::StealSecondaryGrant {
                secondary,
                donor_region,
                swap
            }
        ),
        Just(Message::StealSecondaryDeny),
        Just(Message::LeaveNotice),
        Just(Message::Detached),
        arb_region().prop_map(|region| Message::WhoOwns { region }),
        arb_neighbor().prop_map(|info| Message::OwnerIs { info }),
        (
            arb_region(),
            arb_store(),
            proptest::collection::vec(arb_neighbor(), 0..4)
        )
            .prop_map(|(region, store, neighbors)| Message::MergeRegions {
                region,
                store,
                neighbors
            }),
        (
            arb_region(),
            arb_store(),
            proptest::collection::vec(arb_neighbor(), 0..4),
            proptest::option::of(arb_node_info())
        )
            .prop_map(|(region, store, neighbors, new_secondary)| {
                Message::TakeOverRegion {
                    region,
                    store,
                    neighbors,
                    new_secondary,
                }
            }),
    ]
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        arb_node_info(),
        proptest::collection::vec((any::<u64>(), 1024u16..u16::MAX), 0..4),
        arb_message(),
    )
        .prop_map(|(sender, addrs, message)| Envelope {
            sender,
            sender_addr: "127.0.0.1:7000".parse().expect("literal"),
            addrs: addrs
                .into_iter()
                .map(|(id, port)| {
                    (
                        NodeId::new(id),
                        format!("127.0.0.1:{port}").parse().expect("valid"),
                    )
                })
                .collect(),
            message,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(env)) round-trips every message shape exactly.
    #[test]
    fn round_trip_arbitrary_envelopes(env in arb_envelope()) {
        let bytes = env.encode();
        let back = Envelope::decode(&bytes).expect("well-formed input decodes");
        prop_assert_eq!(back, env);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Envelope::decode(&bytes); // Err is fine; panicking is not
    }

    /// Single-byte corruption of a valid envelope never panics (it may
    /// still decode if the flipped byte lands in a payload).
    #[test]
    fn decode_survives_single_byte_corruption(
        env in arb_envelope(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255
    ) {
        let mut bytes = env.encode().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        let _ = Envelope::decode(&bytes);
    }

    /// Truncation at any point never panics and never yields Ok.
    #[test]
    fn decode_rejects_all_truncations(env in arb_envelope(), cut_seed in any::<usize>()) {
        let bytes = env.encode();
        let cut = cut_seed % bytes.len();
        prop_assert!(Envelope::decode(&bytes[..cut]).is_err());
    }
}
