//! The async node runtime: one engine, one listener, one address book.
//!
//! [`NodeRuntime::start`] spawns an actor that owns a
//! [`geogrid_core::engine::NodeEngine`] and drives it from
//! three sources: inbound TCP frames, a periodic tick, and local commands
//! from the [`RuntimeHandle`]. Every outbound message is wrapped in an
//! [`Envelope`] carrying the sender's listen address plus address-book
//! entries for every node id the message references, so receivers can
//! always resolve the ids they learn.
//!
//! Connections are short-lived (one frame per connection): GeoGrid
//! management traffic is sparse and neighbor sets churn with every split,
//! so a connection cache buys little at this scale and a per-message
//! connect keeps failure handling trivial — a refused connect simply
//! drops the message, which the protocol already tolerates (heartbeats
//! re-announce state).

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use geogrid_core::engine::{
    ClientEvent, Effect, EngineConfig, Input, Message, NodeEngine, OwnerView,
};
use geogrid_core::service::{LocationQuery, LocationRecord, Subscription};
use geogrid_core::{NodeId, NodeInfo};
use geogrid_geometry::{Point, Space};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, oneshot};
use tokio::time::Instant;

use crate::frame::{read_frame, write_frame};
use crate::wire::{referenced_nodes, Envelope};

/// Events surfaced to the embedding application.
pub type RuntimeEvent = ClientEvent;

/// Configuration for a [`NodeRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Engine (protocol) configuration.
    pub engine: EngineConfig,
    /// Address to listen on (`127.0.0.1:0` for tests).
    pub listen: SocketAddr,
    /// Wall-clock tick driving heartbeats.
    pub tick_interval: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            listen: "127.0.0.1:0".parse().expect("valid literal"),
            tick_interval: Duration::from_millis(100),
        }
    }
}

enum Command {
    Bootstrap,
    Join { entry: NodeId, addr: SocketAddr },
    Leave,
    Query(LocationQuery),
    Publish(LocationRecord),
    Subscribe(Subscription),
    View(oneshot::Sender<Option<OwnerView>>),
    AddressOf(NodeId, oneshot::Sender<Option<SocketAddr>>),
    Shutdown,
}

/// Handle to a running node: issue commands, consume events.
#[derive(Debug)]
pub struct RuntimeHandle {
    info: NodeInfo,
    local_addr: SocketAddr,
    commands: mpsc::Sender<Command>,
    events: mpsc::Receiver<RuntimeEvent>,
}

impl RuntimeHandle {
    /// This node's descriptor.
    pub fn info(&self) -> NodeInfo {
        self.info
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Becomes the first node of a new GeoGrid (owns the whole space).
    pub async fn bootstrap(&self) {
        let _ = self.commands.send(Command::Bootstrap).await;
    }

    /// Joins an existing GeoGrid through the given entry node.
    pub async fn join(&self, entry: NodeId, addr: SocketAddr) {
        let _ = self.commands.send(Command::Join { entry, addr }).await;
    }

    /// Gracefully leaves the overlay (§2.3); a [`ClientEvent::Left`] or
    /// [`ClientEvent::LeaveDeferred`] event follows.
    pub async fn leave(&self) {
        let _ = self.commands.send(Command::Leave).await;
    }

    /// Issues a location query; results arrive as
    /// [`ClientEvent::QueryResults`] events.
    pub async fn query(&self, query: LocationQuery) {
        let _ = self.commands.send(Command::Query(query)).await;
    }

    /// Publishes a location record.
    pub async fn publish(&self, record: LocationRecord) {
        let _ = self.commands.send(Command::Publish(record)).await;
    }

    /// Registers a subscription; matches arrive as
    /// [`ClientEvent::Notified`] events.
    pub async fn subscribe(&self, sub: Subscription) {
        let _ = self.commands.send(Command::Subscribe(sub)).await;
    }

    /// Snapshot of the node's owner state.
    pub async fn owner_view(&self) -> Option<OwnerView> {
        let (tx, rx) = oneshot::channel();
        if self.commands.send(Command::View(tx)).await.is_err() {
            return None;
        }
        rx.await.ok().flatten()
    }

    /// The learned address of another node, if known.
    pub async fn address_of(&self, id: NodeId) -> Option<SocketAddr> {
        let (tx, rx) = oneshot::channel();
        if self
            .commands
            .send(Command::AddressOf(id, tx))
            .await
            .is_err()
        {
            return None;
        }
        rx.await.ok().flatten()
    }

    /// Receives the next client event (None once the runtime stopped).
    pub async fn next_event(&mut self) -> Option<RuntimeEvent> {
        self.events.recv().await
    }

    /// Receives the next event within `timeout`.
    pub async fn next_event_timeout(&mut self, timeout: Duration) -> Option<RuntimeEvent> {
        tokio::time::timeout(timeout, self.events.recv())
            .await
            .ok()
            .flatten()
    }

    /// Stops the runtime.
    pub async fn shutdown(&self) {
        let _ = self.commands.send(Command::Shutdown).await;
    }
}

/// Factory for running GeoGrid nodes on real sockets.
#[derive(Debug)]
pub struct NodeRuntime;

impl NodeRuntime {
    /// Starts a node: binds the listener and spawns the actor.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the listen address is unavailable.
    pub async fn start(
        id: NodeId,
        coord: Point,
        capacity: f64,
        space: Space,
        config: RuntimeConfig,
    ) -> io::Result<RuntimeHandle> {
        let listener = TcpListener::bind(config.listen).await?;
        let local_addr = listener.local_addr()?;
        let info = NodeInfo::new(id, coord, capacity);
        let engine = NodeEngine::new(info, space, config.engine);

        let (cmd_tx, cmd_rx) = mpsc::channel(64);
        let (event_tx, event_rx) = mpsc::channel(256);
        let (inbound_tx, inbound_rx) = mpsc::channel::<Envelope>(256);

        tokio::spawn(accept_loop(listener, inbound_tx));
        tokio::spawn(actor(
            engine,
            local_addr,
            config.tick_interval,
            cmd_rx,
            inbound_rx,
            event_tx,
        ));

        Ok(RuntimeHandle {
            info,
            local_addr,
            commands: cmd_tx,
            events: event_rx,
        })
    }
}

async fn accept_loop(listener: TcpListener, inbound: mpsc::Sender<Envelope>) {
    loop {
        let Ok((stream, _)) = listener.accept().await else {
            break;
        };
        let inbound = inbound.clone();
        tokio::spawn(async move {
            let mut stream = stream;
            while let Ok(Some(frame)) = read_frame(&mut stream).await {
                match Envelope::decode(&frame) {
                    Ok(env) => {
                        if inbound.send(env).await.is_err() {
                            return;
                        }
                    }
                    Err(_) => return, // corrupt peer: drop connection
                }
            }
        });
    }
}

struct Actor {
    engine: NodeEngine,
    local_addr: SocketAddr,
    book: HashMap<NodeId, SocketAddr>,
    pending: HashMap<NodeId, Vec<Message>>,
    events: mpsc::Sender<RuntimeEvent>,
    epoch: Instant,
}

async fn actor(
    engine: NodeEngine,
    local_addr: SocketAddr,
    tick_interval: Duration,
    mut commands: mpsc::Receiver<Command>,
    mut inbound: mpsc::Receiver<Envelope>,
    events: mpsc::Sender<RuntimeEvent>,
) {
    let mut state = Actor {
        engine,
        local_addr,
        book: HashMap::new(),
        pending: HashMap::new(),
        events,
        epoch: Instant::now(),
    };
    let mut ticker = tokio::time::interval(tick_interval);
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
    loop {
        tokio::select! {
            cmd = commands.recv() => {
                let Some(cmd) = cmd else { break };
                if !state.handle_command(cmd).await {
                    break;
                }
            }
            env = inbound.recv() => {
                let Some(env) = env else { break };
                state.handle_envelope(env).await;
            }
            _ = ticker.tick() => {
                let now = state.now();
                let effects = state.engine.handle(now, Input::Tick);
                state.apply(effects).await;
            }
        }
    }
}

impl Actor {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    async fn handle_command(&mut self, cmd: Command) -> bool {
        let now = self.now();
        match cmd {
            Command::Bootstrap => {
                let fx = self.engine.handle(now, Input::BootstrapAsFirst);
                self.apply(fx).await;
            }
            Command::Join { entry, addr } => {
                self.learn(entry, addr).await;
                let fx = self.engine.handle(now, Input::Join { entry });
                self.apply(fx).await;
            }
            Command::Leave => {
                let fx = self.engine.handle(now, Input::Leave);
                self.apply(fx).await;
            }
            Command::Query(query) => {
                let fx = self.engine.handle(now, Input::UserQuery { query });
                self.apply(fx).await;
            }
            Command::Publish(record) => {
                let fx = self.engine.handle(now, Input::UserPublish { record });
                self.apply(fx).await;
            }
            Command::Subscribe(sub) => {
                let fx = self.engine.handle(now, Input::UserSubscribe { sub });
                self.apply(fx).await;
            }
            Command::View(reply) => {
                let _ = reply.send(self.engine.owner_view());
            }
            Command::AddressOf(id, reply) => {
                let _ = reply.send(self.book.get(&id).copied());
            }
            Command::Shutdown => return false,
        }
        true
    }

    async fn handle_envelope(&mut self, env: Envelope) {
        self.learn(env.sender.id(), env.sender_addr).await;
        let addrs = env.addrs.clone();
        for (id, addr) in addrs {
            self.learn(id, addr).await;
        }
        let now = self.now();
        let effects = self.engine.handle(
            now,
            Input::Message {
                from: env.sender.id(),
                message: env.message,
            },
        );
        self.apply(effects).await;
    }

    /// Records an address and flushes messages that were waiting for it.
    async fn learn(&mut self, id: NodeId, addr: SocketAddr) {
        if id == self.engine.info().id() {
            return;
        }
        let known = self.book.insert(id, addr);
        if known != Some(addr) {
            if let Some(queued) = self.pending.remove(&id) {
                for message in queued {
                    self.transmit(id, message).await;
                }
            }
        }
    }

    async fn apply(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, message } => {
                    if self.book.contains_key(&to) {
                        self.transmit(to, message).await;
                    } else {
                        // Address unknown yet: park it (bounded).
                        let queue = self.pending.entry(to).or_default();
                        if queue.len() < 64 {
                            queue.push(message);
                        }
                    }
                }
                Effect::Client(event) => {
                    let _ = self.events.send(event).await;
                }
            }
        }
    }

    async fn transmit(&self, to: NodeId, message: Message) {
        let Some(&addr) = self.book.get(&to) else {
            return;
        };
        let mut attach = Vec::new();
        for id in referenced_nodes(&message) {
            if let Some(&a) = self.book.get(&id) {
                attach.push((id, a));
            }
        }
        let env = Envelope {
            sender: self.engine.info(),
            sender_addr: self.local_addr,
            addrs: attach,
            message,
        };
        let bytes = env.encode();
        // Fire-and-forget: one frame per connection; failures are dropped
        // like lost datagrams (the protocol heartbeats re-announce state).
        tokio::spawn(async move {
            if let Ok(mut stream) = TcpStream::connect(addr).await {
                let _ = write_frame(&mut stream, &bytes).await;
            }
        });
    }
}
