//! `geogrid-node` — run one GeoGrid proxy node from the command line.
//!
//! ```text
//! # terminal 1: a bootstrap directory + the first node
//! geogrid-node --first --listen 127.0.0.1:7100 --coord 10,10 --capacity 100 \
//!              --serve-bootstrap 127.0.0.1:7000
//!
//! # terminal 2+: join through the directory
//! geogrid-node --bootstrap 127.0.0.1:7000 --listen 127.0.0.1:7101 \
//!              --coord 50,50 --capacity 10
//! ```
//!
//! Once running, the node accepts line commands on stdin:
//!
//! ```text
//! view                             show region / role / peer / neighbors
//! publish <topic> <x> <y> <text>   publish a location record
//! query <x> <y> <r> [topic]        circular location query
//! subscribe <x> <y> <r> <ms> [t]   standing subscription
//! leave                            graceful departure (then quit)
//! quit
//! ```
//!
//! Client events (query results, notifications, promotions) print as they
//! arrive.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode};
use geogrid_core::service::{LocationQuery, LocationRecord, Subscription};
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Space};
use geogrid_transport::{
    load_host_cache, save_host_cache, BootstrapClient, BootstrapServer, NodeRuntime, RuntimeConfig,
    RuntimeHandle,
};
use tokio::io::{AsyncBufReadExt, BufReader};

#[derive(Debug)]
struct Args {
    listen: SocketAddr,
    coord: Point,
    capacity: f64,
    space_side: f64,
    id: Option<u64>,
    first: bool,
    basic: bool,
    bootstrap: Option<SocketAddr>,
    serve_bootstrap: Option<SocketAddr>,
    host_cache: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: geogrid-node --coord X,Y [--listen ADDR] [--capacity C] [--space SIDE]\n\
         \x20                  [--id N] [--first] [--basic] [--bootstrap ADDR]\n\
         \x20                  [--serve-bootstrap ADDR] [--host-cache FILE]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Args> {
    let mut args = Args {
        listen: "127.0.0.1:0".parse().expect("literal"),
        coord: Point::new(0.0, 0.0),
        capacity: 10.0,
        space_side: 64.0,
        id: None,
        first: false,
        basic: false,
        bootstrap: None,
        serve_bootstrap: None,
        host_cache: None,
    };
    let mut coord_seen = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--first" => args.first = true,
            "--basic" => args.basic = true,
            _ => {
                let value = it.next()?;
                match flag.as_str() {
                    "--listen" => args.listen = value.parse().ok()?,
                    "--coord" => {
                        let (x, y) = value.split_once(',')?;
                        args.coord = Point::new(x.parse().ok()?, y.parse().ok()?);
                        coord_seen = true;
                    }
                    "--capacity" => args.capacity = value.parse().ok()?,
                    "--space" => args.space_side = value.parse().ok()?,
                    "--id" => args.id = Some(value.parse().ok()?),
                    "--bootstrap" => args.bootstrap = Some(value.parse().ok()?),
                    "--serve-bootstrap" => args.serve_bootstrap = Some(value.parse().ok()?),
                    "--host-cache" => args.host_cache = Some(PathBuf::from(value)),
                    _ => return None,
                }
            }
        }
    }
    coord_seen.then_some(args)
}

fn print_event(event: &ClientEvent) {
    match event {
        ClientEvent::Joined { region, role } => println!("<- joined {region} as {role}"),
        ClientEvent::PromotedToPrimary { region } => {
            println!("<- promoted to primary of {region}")
        }
        ClientEvent::PeerLost { region } => println!("<- dual peer lost for {region}"),
        ClientEvent::QueryResults { records, .. } => {
            println!("<- {} result(s)", records.len());
            for r in records {
                println!(
                    "   [{}] at {}: {}",
                    r.topic(),
                    r.position(),
                    String::from_utf8_lossy(r.payload())
                );
            }
        }
        ClientEvent::Notified { record } => {
            println!(
                "<- notification [{}] at {}: {}",
                record.topic(),
                record.position(),
                String::from_utf8_lossy(record.payload())
            );
        }
        ClientEvent::AdaptationExecuted { mechanism } => {
            println!("<- executed load-balance mechanism ({mechanism})")
        }
        ClientEvent::Left => println!("<- left the overlay"),
        ClientEvent::LeaveDeferred => {
            println!("<- cannot leave yet (no peer or mergeable neighbor); retry later")
        }
    }
}

async fn handle_command(handle: &RuntimeHandle, line: &str, next_sub: &mut u64) -> bool {
    let mut parts = line.split_whitespace();
    let me = handle.info().id();
    match parts.next() {
        Some("quit") | Some("exit") => return false,
        Some("leave") => {
            handle.leave().await;
            println!("-> leave requested");
        }
        Some("view") => match handle.owner_view().await {
            Some(v) => {
                println!(
                    "region {} role {:?} peer {:?}",
                    v.region,
                    v.role,
                    v.peer.map(|p| p.id().to_string())
                );
                for n in &v.neighbors {
                    println!("  neighbor {} owned by {}", n.region, n.primary.id());
                }
            }
            None => println!("not an owner yet"),
        },
        Some("publish") => {
            let (Some(topic), Some(x), Some(y)) = (parts.next(), parts.next(), parts.next()) else {
                println!("usage: publish <topic> <x> <y> <text...>");
                return true;
            };
            let (Ok(x), Ok(y)) = (x.parse(), y.parse()) else {
                println!("bad coordinates");
                return true;
            };
            let payload: String = parts.collect::<Vec<_>>().join(" ");
            let id = rand_id();
            handle
                .publish(LocationRecord::new(
                    id,
                    topic,
                    Point::new(x, y),
                    payload.into_bytes(),
                ))
                .await;
            println!("-> published record #{id}");
        }
        Some("query") => {
            let (Some(x), Some(y), Some(r)) = (parts.next(), parts.next(), parts.next()) else {
                println!("usage: query <x> <y> <radius> [topic]");
                return true;
            };
            let (Ok(x), Ok(y), Ok(r)) = (x.parse(), y.parse(), r.parse::<f64>()) else {
                println!("bad numbers");
                return true;
            };
            let mut q = LocationQuery::circular(Point::new(x, y), r.max(1e-6), me);
            if let Some(topic) = parts.next() {
                q = q.with_topic(topic);
            }
            handle.query(q).await;
            println!("-> query sent");
        }
        Some("subscribe") => {
            let (Some(x), Some(y), Some(r), Some(ms)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                println!("usage: subscribe <x> <y> <radius> <ttl_ms> [topic]");
                return true;
            };
            let (Ok(x), Ok(y), Ok(r), Ok(ms)) =
                (x.parse(), y.parse(), r.parse::<f64>(), ms.parse::<u64>())
            else {
                println!("bad numbers");
                return true;
            };
            *next_sub += 1;
            let area =
                geogrid_geometry::Circle::new(Point::new(x, y), r.max(1e-6)).bounding_region();
            let mut sub = Subscription::new(*next_sub, area, me, now_ms() + ms);
            if let Some(topic) = parts.next() {
                sub = sub.with_topic(topic);
            }
            handle.subscribe(sub).await;
            println!("-> subscription #{next_sub} registered");
        }
        Some(other) => {
            println!("unknown command {other:?} (view/publish/query/subscribe/leave/quit)")
        }
        None => {}
    }
    true
}

fn rand_id() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1)
}

fn now_ms() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[tokio::main]
async fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let space = Space::square(args.space_side);
    let id = NodeId::new(args.id.unwrap_or_else(rand_id));

    // Optionally host the bootstrap directory ourselves.
    let server = match args.serve_bootstrap {
        Some(addr) => match BootstrapServer::bind(addr).await {
            Ok(s) => {
                println!("bootstrap directory serving on {}", s.local_addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("cannot bind bootstrap directory: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let config = RuntimeConfig {
        engine: EngineConfig {
            mode: if args.basic {
                EngineMode::Basic
            } else {
                EngineMode::DualPeer
            },
            ..EngineConfig::default()
        },
        listen: args.listen,
        tick_interval: Duration::from_millis(100),
    };
    let mut handle = match NodeRuntime::start(id, args.coord, args.capacity, space, config).await {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start node: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "node {} listening on {} (coord {}, capacity {})",
        handle.info().id(),
        handle.local_addr(),
        args.coord,
        args.capacity
    );

    // Entry discovery: bootstrap server, then host cache.
    let directory = args
        .bootstrap
        .or(server.as_ref().map(|s| s.local_addr()))
        .map(BootstrapClient::new);
    let mut known: Vec<(NodeId, SocketAddr)> = Vec::new();
    if let Some(dir) = &directory {
        if let Err(e) = dir.register(handle.info().id(), handle.local_addr()).await {
            eprintln!("bootstrap registration failed: {e}");
        }
        match dir.list().await {
            Ok(list) => known = list,
            Err(e) => eprintln!("bootstrap listing failed: {e}"),
        }
    }
    if known.is_empty() {
        if let Some(cache) = &args.host_cache {
            // File IO runs on the blocking pool so the async entry task
            // (which already services transport events) is never stalled.
            let path = cache.clone();
            if let Ok(Ok(list)) = tokio::task::spawn_blocking(move || load_host_cache(&path)).await
            {
                println!(
                    "using {} cached host(s) from {}",
                    list.len(),
                    cache.display()
                );
                known = list;
            }
        }
    }

    if args.first {
        handle.bootstrap().await;
        println!("bootstrapped: this node owns the whole space");
    } else {
        let me = handle.info().id();
        match known.iter().find(|(id, _)| *id != me) {
            Some(&(entry, addr)) => {
                println!("joining via {entry} at {addr}");
                handle.join(entry, addr).await;
            }
            None => {
                eprintln!(
                    "no entry node found (use --first for the first node, or provide \
                     --bootstrap/--host-cache)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(cache) = &args.host_cache {
        let mut entries = known.clone();
        entries.retain(|(id, _)| *id != handle.info().id());
        entries.push((handle.info().id(), handle.local_addr()));
        let path = cache.clone();
        match tokio::task::spawn_blocking(move || save_host_cache(&path, &entries)).await {
            Ok(Err(e)) => eprintln!("could not write host cache: {e}"),
            Err(e) => eprintln!("host cache writer panicked: {e}"),
            Ok(Ok(())) => {}
        }
    }

    // REPL: stdin commands + async events.
    let stdin = BufReader::new(tokio::io::stdin());
    let mut lines = stdin.lines();
    let mut next_sub = 0u64;
    loop {
        tokio::select! {
            line = lines.next_line() => {
                match line {
                    Ok(Some(line)) => {
                        if !handle_command(&handle, line.trim(), &mut next_sub).await {
                            break;
                        }
                    }
                    _ => break, // EOF
                }
            }
            event = handle.next_event() => {
                match event {
                    Some(event) => print_event(&event),
                    None => break,
                }
            }
        }
    }
    handle.shutdown().await;
    println!("bye");
    ExitCode::SUCCESS
}
