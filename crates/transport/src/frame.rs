//! Length-prefixed framing over async byte streams.
//!
//! Each frame is a little-endian `u32` length followed by that many bytes
//! (one encoded [`Envelope`](crate::wire::Envelope)). Frames above
//! [`MAX_FRAME`] are rejected on both sides.

use std::io;

use bytes::Bytes;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Largest accepted frame (32 MiB).
pub const MAX_FRAME: usize = 32 * 1024 * 1024;

/// Writes one frame.
///
/// # Errors
///
/// I/O errors from the underlying writer, or `InvalidInput` if the
/// payload exceeds [`MAX_FRAME`].
pub async fn write_frame<W: AsyncWrite + Unpin>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds limit", payload.len()),
        ));
    }
    writer
        .write_all(&(payload.len() as u32).to_le_bytes())
        .await?;
    writer.write_all(payload).await?;
    writer.flush().await
}

/// Reads one frame. Returns `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors, `UnexpectedEof` inside a frame, or `InvalidData` for an
/// oversized length prefix.
pub async fn read_frame<R: AsyncRead + Unpin>(reader: &mut R) -> io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf).await {
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).await?;
    Ok(Some(Bytes::from(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn round_trips_frames() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        write_frame(&mut a, b"hello").await.unwrap();
        write_frame(&mut a, b"").await.unwrap();
        write_frame(&mut a, b"world!").await.unwrap();
        drop(a);
        assert_eq!(read_frame(&mut b).await.unwrap().unwrap(), &b"hello"[..]);
        assert_eq!(read_frame(&mut b).await.unwrap().unwrap(), &b""[..]);
        assert_eq!(read_frame(&mut b).await.unwrap().unwrap(), &b"world!"[..]);
        assert!(read_frame(&mut b).await.unwrap().is_none());
    }

    #[tokio::test]
    async fn eof_mid_frame_is_an_error() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        a.write_all(&10u32.to_le_bytes()).await.unwrap();
        a.write_all(b"abc").await.unwrap();
        drop(a);
        let err = read_frame(&mut b).await.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[tokio::test]
    async fn oversized_length_rejected() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        a.write_all(&(u32::MAX).to_le_bytes()).await.unwrap();
        let err = read_frame(&mut b).await.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[tokio::test]
    async fn oversized_write_rejected() {
        let (mut a, _b) = tokio::io::duplex(64);
        let big = vec![0u8; MAX_FRAME + 1];
        let err = write_frame(&mut a, &big).await.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
