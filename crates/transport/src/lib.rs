//! Live deployment substrate for GeoGrid.
//!
//! The paper's proxies are end systems exchanging GeoGrid middleware
//! messages over TCP/IP. This crate provides that deployment path for the
//! sans-io engine in `geogrid-core`:
//!
//! * [`wire`] — a hand-rolled, versioned binary codec for every protocol
//!   message (no serialization framework: the format is part of the
//!   protocol and kept explicit),
//! * [`frame`] — length-prefixed framing over any tokio
//!   `AsyncRead`/`AsyncWrite`,
//! * [`runtime`] — [`runtime::NodeRuntime`]: owns one
//!   [`NodeEngine`](geogrid_core::engine::NodeEngine), a TCP listener, an
//!   outbound connection pool, and the `NodeId → SocketAddr` address book
//!   learned from message envelopes,
//! * [`bootstrap`] — the bootstrap server §2.1 assumes: a directory nodes
//!   register with and fetch entry points from.
//!
//! The engine logic is identical to what runs under the simulator — this
//! crate only moves bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The async deployment path (tokio) is gated behind the off-by-default
// `live` feature: the offline build environment cannot fetch tokio, so
// only the pure wire codec builds unconditionally. See Cargo.toml for
// what enabling `live` requires.
#[cfg(feature = "live")]
pub mod bootstrap;
#[cfg(feature = "live")]
pub mod frame;
#[cfg(feature = "live")]
pub mod runtime;
pub mod wire;

#[cfg(feature = "live")]
pub use bootstrap::{load_host_cache, save_host_cache, BootstrapClient, BootstrapServer};
#[cfg(feature = "live")]
pub use runtime::{NodeRuntime, RuntimeConfig, RuntimeEvent, RuntimeHandle};
pub use wire::{Envelope, WireError};
