//! The binary wire format.
//!
//! Hand-rolled, explicit, and versioned: every GeoGrid protocol message
//! encodes to a tagged binary body. Numbers are little-endian; strings and
//! byte blobs are length-prefixed with `u32`. The first byte of every
//! encoded envelope is the wire version ([`WIRE_VERSION`]).

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use geogrid_core::engine::{Message, NeighborInfo};
use geogrid_core::service::{Hlc, LocationQuery, LocationRecord, RegionStore, Subscription};
use geogrid_core::{NodeId, NodeInfo};
use geogrid_geometry::{Point, Region};

/// Current wire protocol version.
pub const WIRE_VERSION: u8 = 1;

/// Maximum accepted string/blob length (16 MiB) — guards against corrupt
/// or hostile length prefixes.
const MAX_BLOB: usize = 16 * 1024 * 1024;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes while a field was expected.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown message/field tag.
    BadTag(u8),
    /// A length prefix exceeded sanity bounds.
    BadLength(usize),
    /// A decoded string was not UTF-8.
    BadUtf8,
    /// A decoded socket address failed to parse.
    BadAddr,
    /// A decoded float was not finite where finiteness is required.
    BadFloat,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::BadLength(n) => write!(f, "length {n} exceeds limits"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::BadAddr => write!(f, "invalid socket address"),
            WireError::BadFloat => write!(f, "non-finite float where finite required"),
        }
    }
}

impl Error for WireError {}

/// The unit the transport moves: a message plus the routing metadata the
/// receiver needs (who sent it, where peers can be reached).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The sending node.
    pub sender: NodeInfo,
    /// The sender's listening address.
    pub sender_addr: SocketAddr,
    /// Address book entries for every node id referenced by `message`,
    /// so the receiver can contact them.
    pub addrs: Vec<(NodeId, SocketAddr)>,
    /// The protocol message.
    pub message: Message,
}

// ---------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        if self.buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        if self.buf.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        Ok(self.buf.get_u64_le())
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        Ok(self.buf.get_f64_le())
    }

    fn finite_f64(&mut self) -> Result<f64, WireError> {
        let v = self.f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(WireError::BadFloat)
        }
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_BLOB {
            return Err(WireError::BadLength(len));
        }
        if self.buf.remaining() < len {
            return Err(WireError::Truncated);
        }
        let mut out = vec![0u8; len];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }

    fn done(&self) -> bool {
        !self.buf.has_remaining()
    }
}

fn put_bytes(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

// ---------------------------------------------------------------------
// Domain encoders/decoders
// ---------------------------------------------------------------------

fn put_point(buf: &mut BytesMut, p: Point) {
    buf.put_f64_le(p.x);
    buf.put_f64_le(p.y);
}

fn get_point(r: &mut Reader<'_>) -> Result<Point, WireError> {
    Ok(Point::new(r.finite_f64()?, r.finite_f64()?))
}

fn put_region(buf: &mut BytesMut, region: Region) {
    buf.put_f64_le(region.x());
    buf.put_f64_le(region.y());
    buf.put_f64_le(region.width());
    buf.put_f64_le(region.height());
}

fn get_region(r: &mut Reader<'_>) -> Result<Region, WireError> {
    let x = r.finite_f64()?;
    let y = r.finite_f64()?;
    let w = r.finite_f64()?;
    let h = r.finite_f64()?;
    if w <= 0.0 || h <= 0.0 {
        return Err(WireError::BadFloat);
    }
    Ok(Region::new(x, y, w, h))
}

fn put_node_info(buf: &mut BytesMut, info: NodeInfo) {
    buf.put_u64_le(info.id().as_u64());
    put_point(buf, info.coord());
    buf.put_f64_le(info.capacity());
}

fn get_node_info(r: &mut Reader<'_>) -> Result<NodeInfo, WireError> {
    let id = NodeId::new(r.u64()?);
    let coord = get_point(r)?;
    let cap = r.finite_f64()?;
    if cap <= 0.0 {
        return Err(WireError::BadFloat);
    }
    Ok(NodeInfo::new(id, coord, cap))
}

fn put_opt_node_info(buf: &mut BytesMut, info: Option<NodeInfo>) {
    match info {
        Some(i) => {
            buf.put_u8(1);
            put_node_info(buf, i);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_node_info(r: &mut Reader<'_>) -> Result<Option<NodeInfo>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_node_info(r)?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_neighbor(buf: &mut BytesMut, n: &NeighborInfo) {
    put_node_info(buf, n.primary);
    put_opt_node_info(buf, n.secondary);
    put_region(buf, n.region);
}

fn get_neighbor(r: &mut Reader<'_>) -> Result<NeighborInfo, WireError> {
    Ok(NeighborInfo {
        primary: get_node_info(r)?,
        secondary: get_opt_node_info(r)?,
        region: get_region(r)?,
    })
}

fn put_neighbors(buf: &mut BytesMut, ns: &[NeighborInfo]) {
    buf.put_u32_le(ns.len() as u32);
    for n in ns {
        put_neighbor(buf, n);
    }
}

fn get_neighbors(r: &mut Reader<'_>) -> Result<Vec<NeighborInfo>, WireError> {
    let n = r.u32()? as usize;
    if n > 1_000_000 {
        return Err(WireError::BadLength(n));
    }
    (0..n).map(|_| get_neighbor(r)).collect()
}

fn put_record(buf: &mut BytesMut, rec: &LocationRecord) {
    buf.put_u64_le(rec.id());
    put_string(buf, rec.topic());
    put_point(buf, rec.position());
    put_bytes(buf, rec.payload());
    match rec.expires_at() {
        Some(t) => {
            buf.put_u8(1);
            buf.put_u64_le(t);
        }
        None => buf.put_u8(0),
    }
}

fn get_record(r: &mut Reader<'_>) -> Result<LocationRecord, WireError> {
    let id = r.u64()?;
    let topic = r.string()?;
    if topic.is_empty() {
        return Err(WireError::BadLength(0));
    }
    let position = get_point(r)?;
    let payload = r.bytes()?;
    let rec = LocationRecord::new(id, topic, position, payload);
    Ok(match r.u8()? {
        0 => rec,
        1 => rec.with_expiry(r.u64()?),
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_subscription(buf: &mut BytesMut, sub: &Subscription) {
    buf.put_u64_le(sub.id());
    put_region(buf, sub.area());
    buf.put_u64_le(sub.subscriber().as_u64());
    buf.put_u64_le(sub.expires_at());
    match sub.topic() {
        Some(t) => {
            buf.put_u8(1);
            put_string(buf, t);
        }
        None => buf.put_u8(0),
    }
}

fn get_subscription(r: &mut Reader<'_>) -> Result<Subscription, WireError> {
    let id = r.u64()?;
    let area = get_region(r)?;
    let subscriber = NodeId::new(r.u64()?);
    let expires = r.u64()?;
    let sub = Subscription::new(id, area, subscriber, expires);
    Ok(match r.u8()? {
        0 => sub,
        1 => sub.with_topic(r.string()?),
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_store(buf: &mut BytesMut, store: &RegionStore) {
    // Records travel with their HLC stamps: the receiver installs them as
    // replicas, so last-write-wins stays coherent across the hand-off.
    buf.put_u32_le(store.record_count() as u32);
    for (rec, stamp) in store.records_with_stamps() {
        put_record(buf, rec);
        buf.put_u64_le(stamp.physical());
        buf.put_u32_le(stamp.logical());
        buf.put_u64_le(stamp.node());
    }
    buf.put_u32_le(store.subscription_count() as u32);
    for sub in store.subscriptions() {
        put_subscription(buf, sub);
    }
}

fn get_store(r: &mut Reader<'_>) -> Result<RegionStore, WireError> {
    let mut store = RegionStore::new();
    let n = r.u32()? as usize;
    if n > 10_000_000 {
        return Err(WireError::BadLength(n));
    }
    for _ in 0..n {
        let rec = get_record(r)?;
        let stamp = Hlc::new(r.u64()?, r.u32()?, r.u64()?);
        store.insert_replica(rec, stamp);
    }
    let m = r.u32()? as usize;
    if m > 10_000_000 {
        return Err(WireError::BadLength(m));
    }
    for _ in 0..m {
        store.insert_sub_replica(get_subscription(r)?);
    }
    Ok(store)
}

fn put_query(buf: &mut BytesMut, q: &LocationQuery) {
    put_region(buf, q.area());
    buf.put_u64_le(q.issuer().as_u64());
    match q.topic() {
        Some(t) => {
            buf.put_u8(1);
            put_string(buf, t);
        }
        None => buf.put_u8(0),
    }
}

fn get_query(r: &mut Reader<'_>) -> Result<LocationQuery, WireError> {
    let area = get_region(r)?;
    let issuer = NodeId::new(r.u64()?);
    let q = LocationQuery::new(area, issuer);
    Ok(match r.u8()? {
        0 => q,
        1 => q.with_topic(r.string()?),
        t => return Err(WireError::BadTag(t)),
    })
}

// ---------------------------------------------------------------------
// Message encoding
// ---------------------------------------------------------------------

const TAG_JOIN_REQUEST: u8 = 1;
const TAG_JOIN_DIRECTED: u8 = 2;
const TAG_JOIN_SPLIT: u8 = 3;
const TAG_JOIN_AS_SECONDARY: u8 = 4;
const TAG_SPLIT_TAKEOVER: u8 = 5;
const TAG_NEIGHBOR_UPDATE: u8 = 6;
const TAG_QUERY: u8 = 7;
const TAG_QUERY_REPLY: u8 = 8;
const TAG_PUBLISH: u8 = 9;
const TAG_SUBSCRIBE: u8 = 10;
const TAG_NOTIFY: u8 = 11;
const TAG_HEARTBEAT: u8 = 12;
const TAG_SYNC_STATE: u8 = 13;
const TAG_STEAL_REQUEST: u8 = 14;
const TAG_STEAL_GRANT: u8 = 15;
const TAG_STEAL_DENY: u8 = 16;
const TAG_TAKE_OVER: u8 = 17;
const TAG_LEAVE_NOTICE: u8 = 18;
const TAG_MERGE_REGIONS: u8 = 19;
const TAG_WHO_OWNS: u8 = 20;
const TAG_OWNER_IS: u8 = 21;
const TAG_DETACHED: u8 = 22;

fn put_message(buf: &mut BytesMut, message: &Message) {
    match message {
        Message::JoinRequest { joiner, hops } => {
            buf.put_u8(TAG_JOIN_REQUEST);
            put_node_info(buf, *joiner);
            buf.put_u32_le(*hops);
        }
        Message::JoinDirected { joiner } => {
            buf.put_u8(TAG_JOIN_DIRECTED);
            put_node_info(buf, *joiner);
        }
        Message::JoinSplit {
            region,
            neighbors,
            store,
        } => {
            buf.put_u8(TAG_JOIN_SPLIT);
            put_region(buf, *region);
            put_neighbors(buf, neighbors);
            put_store(buf, store);
        }
        Message::JoinAsSecondary {
            region,
            primary,
            store,
            neighbors,
        } => {
            buf.put_u8(TAG_JOIN_AS_SECONDARY);
            put_region(buf, *region);
            put_node_info(buf, *primary);
            put_store(buf, store);
            put_neighbors(buf, neighbors);
        }
        Message::SplitTakeover {
            region,
            neighbors,
            store,
        } => {
            buf.put_u8(TAG_SPLIT_TAKEOVER);
            put_region(buf, *region);
            put_neighbors(buf, neighbors);
            put_store(buf, store);
        }
        Message::NeighborUpdate { info } => {
            buf.put_u8(TAG_NEIGHBOR_UPDATE);
            put_neighbor(buf, info);
        }
        Message::Query {
            query,
            query_id,
            reply_to,
            hops,
            fanout,
        } => {
            buf.put_u8(TAG_QUERY);
            put_query(buf, query);
            buf.put_u64_le(*query_id);
            buf.put_u64_le(reply_to.as_u64());
            buf.put_u32_le(*hops);
            buf.put_u8(*fanout as u8);
        }
        Message::QueryReply { query_id, records } => {
            buf.put_u8(TAG_QUERY_REPLY);
            buf.put_u64_le(*query_id);
            buf.put_u32_le(records.len() as u32);
            for rec in records {
                put_record(buf, rec);
            }
        }
        Message::Publish { record, hops } => {
            buf.put_u8(TAG_PUBLISH);
            put_record(buf, record);
            buf.put_u32_le(*hops);
        }
        Message::Subscribe { sub, hops, fanout } => {
            buf.put_u8(TAG_SUBSCRIBE);
            put_subscription(buf, sub);
            buf.put_u32_le(*hops);
            buf.put_u8(*fanout as u8);
        }
        Message::Notify { record } => {
            buf.put_u8(TAG_NOTIFY);
            put_record(buf, record);
        }
        Message::Heartbeat { info, index } => {
            buf.put_u8(TAG_HEARTBEAT);
            put_neighbor(buf, info);
            buf.put_f64_le(*index);
        }
        Message::SyncState { store, neighbors } => {
            buf.put_u8(TAG_SYNC_STATE);
            put_store(buf, store);
            put_neighbors(buf, neighbors);
        }
        Message::StealSecondaryRequest {
            requester,
            index,
            swap,
        } => {
            buf.put_u8(TAG_STEAL_REQUEST);
            put_node_info(buf, *requester);
            buf.put_f64_le(*index);
            buf.put_u8(*swap as u8);
        }
        Message::StealSecondaryGrant {
            secondary,
            donor_region,
            swap,
        } => {
            buf.put_u8(TAG_STEAL_GRANT);
            put_node_info(buf, *secondary);
            put_region(buf, *donor_region);
            buf.put_u8(*swap as u8);
        }
        Message::StealSecondaryDeny => {
            buf.put_u8(TAG_STEAL_DENY);
        }
        Message::TakeOverRegion {
            region,
            store,
            neighbors,
            new_secondary,
        } => {
            buf.put_u8(TAG_TAKE_OVER);
            put_region(buf, *region);
            put_store(buf, store);
            put_neighbors(buf, neighbors);
            put_opt_node_info(buf, *new_secondary);
        }
        Message::LeaveNotice => {
            buf.put_u8(TAG_LEAVE_NOTICE);
        }
        Message::MergeRegions {
            region,
            store,
            neighbors,
        } => {
            buf.put_u8(TAG_MERGE_REGIONS);
            put_region(buf, *region);
            put_store(buf, store);
            put_neighbors(buf, neighbors);
        }
        Message::Detached => {
            buf.put_u8(TAG_DETACHED);
        }
        Message::WhoOwns { region } => {
            buf.put_u8(TAG_WHO_OWNS);
            put_region(buf, *region);
        }
        Message::OwnerIs { info } => {
            buf.put_u8(TAG_OWNER_IS);
            put_neighbor(buf, info);
        }
    }
}

fn get_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(WireError::BadTag(t)),
    }
}

fn get_message(r: &mut Reader<'_>) -> Result<Message, WireError> {
    match r.u8()? {
        TAG_JOIN_REQUEST => Ok(Message::JoinRequest {
            joiner: get_node_info(r)?,
            hops: r.u32()?,
        }),
        TAG_JOIN_DIRECTED => Ok(Message::JoinDirected {
            joiner: get_node_info(r)?,
        }),
        TAG_JOIN_SPLIT => Ok(Message::JoinSplit {
            region: get_region(r)?,
            neighbors: get_neighbors(r)?,
            store: Box::new(get_store(r)?),
        }),
        TAG_JOIN_AS_SECONDARY => Ok(Message::JoinAsSecondary {
            region: get_region(r)?,
            primary: get_node_info(r)?,
            store: Box::new(get_store(r)?),
            neighbors: get_neighbors(r)?,
        }),
        TAG_SPLIT_TAKEOVER => Ok(Message::SplitTakeover {
            region: get_region(r)?,
            neighbors: get_neighbors(r)?,
            store: Box::new(get_store(r)?),
        }),
        TAG_NEIGHBOR_UPDATE => Ok(Message::NeighborUpdate {
            info: get_neighbor(r)?,
        }),
        TAG_QUERY => Ok(Message::Query {
            query: get_query(r)?,
            query_id: r.u64()?,
            reply_to: NodeId::new(r.u64()?),
            hops: r.u32()?,
            fanout: get_bool(r)?,
        }),
        TAG_QUERY_REPLY => {
            let query_id = r.u64()?;
            let n = r.u32()? as usize;
            if n > 10_000_000 {
                return Err(WireError::BadLength(n));
            }
            let records = (0..n).map(|_| get_record(r)).collect::<Result<_, _>>()?;
            Ok(Message::QueryReply { query_id, records })
        }
        TAG_PUBLISH => Ok(Message::Publish {
            record: get_record(r)?,
            hops: r.u32()?,
        }),
        TAG_SUBSCRIBE => Ok(Message::Subscribe {
            sub: get_subscription(r)?,
            hops: r.u32()?,
            fanout: get_bool(r)?,
        }),
        TAG_NOTIFY => Ok(Message::Notify {
            record: get_record(r)?,
        }),
        TAG_HEARTBEAT => Ok(Message::Heartbeat {
            info: get_neighbor(r)?,
            index: {
                let v = r.f64()?;
                if v.is_finite() && v >= 0.0 {
                    v
                } else {
                    return Err(WireError::BadFloat);
                }
            },
        }),
        TAG_SYNC_STATE => Ok(Message::SyncState {
            store: Box::new(get_store(r)?),
            neighbors: get_neighbors(r)?,
        }),
        TAG_STEAL_REQUEST => Ok(Message::StealSecondaryRequest {
            requester: get_node_info(r)?,
            index: {
                let v = r.f64()?;
                if v.is_finite() && v >= 0.0 {
                    v
                } else {
                    return Err(WireError::BadFloat);
                }
            },
            swap: get_bool(r)?,
        }),
        TAG_STEAL_GRANT => Ok(Message::StealSecondaryGrant {
            secondary: get_node_info(r)?,
            donor_region: get_region(r)?,
            swap: get_bool(r)?,
        }),
        TAG_STEAL_DENY => Ok(Message::StealSecondaryDeny),
        TAG_TAKE_OVER => Ok(Message::TakeOverRegion {
            region: get_region(r)?,
            store: Box::new(get_store(r)?),
            neighbors: get_neighbors(r)?,
            new_secondary: get_opt_node_info(r)?,
        }),
        TAG_LEAVE_NOTICE => Ok(Message::LeaveNotice),
        TAG_MERGE_REGIONS => Ok(Message::MergeRegions {
            region: get_region(r)?,
            store: Box::new(get_store(r)?),
            neighbors: get_neighbors(r)?,
        }),
        TAG_DETACHED => Ok(Message::Detached),
        TAG_WHO_OWNS => Ok(Message::WhoOwns {
            region: get_region(r)?,
        }),
        TAG_OWNER_IS => Ok(Message::OwnerIs {
            info: get_neighbor(r)?,
        }),
        t => Err(WireError::BadTag(t)),
    }
}

impl Envelope {
    /// Encodes the envelope to bytes (without the outer length prefix —
    /// [`crate::frame`] adds that).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(128);
        buf.put_u8(WIRE_VERSION);
        put_node_info(&mut buf, self.sender);
        put_string(&mut buf, &self.sender_addr.to_string());
        buf.put_u32_le(self.addrs.len() as u32);
        for (id, addr) in &self.addrs {
            buf.put_u64_le(id.as_u64());
            put_string(&mut buf, &addr.to_string());
        }
        put_message(&mut buf, &self.message);
        buf.freeze()
    }

    /// Decodes an envelope from bytes.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input; trailing bytes are rejected
    /// as [`WireError::BadLength`].
    pub fn decode(bytes: &[u8]) -> Result<Envelope, WireError> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let sender = get_node_info(&mut r)?;
        let sender_addr: SocketAddr = r.string()?.parse().map_err(|_| WireError::BadAddr)?;
        let n = r.u32()? as usize;
        if n > 1_000_000 {
            return Err(WireError::BadLength(n));
        }
        let mut addrs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let id = NodeId::new(r.u64()?);
            let addr: SocketAddr = r.string()?.parse().map_err(|_| WireError::BadAddr)?;
            addrs.push((id, addr));
        }
        let message = get_message(&mut r)?;
        if !r.done() {
            return Err(WireError::BadLength(bytes.len()));
        }
        Ok(Envelope {
            sender,
            sender_addr,
            addrs,
            message,
        })
    }
}

/// Every node id referenced inside a message — the set the sender must
/// attach addresses for so the receiver can reach them.
pub fn referenced_nodes(message: &Message) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut push_info = |i: &NodeInfo| out.push(i.id());
    match message {
        Message::JoinRequest { joiner, .. } | Message::JoinDirected { joiner } => push_info(joiner),
        Message::JoinSplit { neighbors, .. } | Message::SplitTakeover { neighbors, .. } => {
            for n in neighbors {
                push_info(&n.primary);
                if let Some(s) = &n.secondary {
                    push_info(s);
                }
            }
        }
        Message::JoinAsSecondary {
            primary, neighbors, ..
        } => {
            push_info(primary);
            for n in neighbors {
                push_info(&n.primary);
                if let Some(s) = &n.secondary {
                    push_info(s);
                }
            }
        }
        Message::NeighborUpdate { info } | Message::Heartbeat { info, .. } => {
            push_info(&info.primary);
            if let Some(s) = &info.secondary {
                push_info(s);
            }
        }
        Message::StealSecondaryRequest { requester, .. } => push_info(requester),
        Message::StealSecondaryGrant { secondary, .. } => push_info(secondary),
        Message::StealSecondaryDeny
        | Message::LeaveNotice
        | Message::Detached
        | Message::WhoOwns { .. } => {}
        Message::OwnerIs { info } => {
            push_info(&info.primary);
            if let Some(sec) = &info.secondary {
                push_info(sec);
            }
        }
        Message::MergeRegions { neighbors, .. } => {
            for n in neighbors {
                push_info(&n.primary);
                if let Some(s) = &n.secondary {
                    push_info(s);
                }
            }
        }
        Message::TakeOverRegion {
            neighbors,
            new_secondary,
            ..
        } => {
            for n in neighbors {
                push_info(&n.primary);
                if let Some(s) = &n.secondary {
                    push_info(s);
                }
            }
            if let Some(s) = new_secondary {
                push_info(s);
            }
        }
        Message::Query { reply_to, .. } => out.push(*reply_to),
        Message::Subscribe { sub, .. } => out.push(sub.subscriber()),
        Message::SyncState { neighbors, .. } => {
            for n in neighbors {
                push_info(&n.primary);
                if let Some(s) = &n.secondary {
                    push_info(s);
                }
            }
        }
        Message::QueryReply { .. } | Message::Publish { .. } | Message::Notify { .. } => {}
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64) -> NodeInfo {
        NodeInfo::new(NodeId::new(id), Point::new(1.5, 2.5), 10.0)
    }

    fn envelope(message: Message) -> Envelope {
        Envelope {
            sender: node(1),
            sender_addr: "127.0.0.1:9000".parse().unwrap(),
            addrs: vec![(NodeId::new(2), "127.0.0.1:9001".parse().unwrap())],
            message,
        }
    }

    fn round_trip(message: Message) {
        let env = envelope(message);
        let bytes = env.encode();
        let back = Envelope::decode(&bytes).expect("decode");
        assert_eq!(back, env);
    }

    #[test]
    fn round_trips_every_message_kind() {
        let region = Region::new(0.0, 0.0, 32.0, 16.0);
        let neighbor = NeighborInfo {
            primary: node(3),
            secondary: Some(node(4)),
            region,
        };
        let record =
            LocationRecord::new(9, "traffic", Point::new(3.0, 4.0), b"x".to_vec()).with_expiry(777);
        let sub = Subscription::new(5, region, NodeId::new(6), 1_000).with_topic("parking");
        let mut store = RegionStore::new();
        store.subscribe(sub.clone(), 0);
        store.publish(record.clone(), 0);
        let query = LocationQuery::new(region, NodeId::new(7)).with_topic("traffic");

        let messages = vec![
            Message::JoinRequest {
                joiner: node(2),
                hops: 3,
            },
            Message::JoinDirected { joiner: node(2) },
            Message::JoinSplit {
                region,
                neighbors: vec![neighbor.clone()],
                store: Box::new(store.clone()),
            },
            Message::JoinAsSecondary {
                region,
                primary: node(1),
                store: Box::new(store.clone()),
                neighbors: vec![neighbor.clone()],
            },
            Message::SplitTakeover {
                region,
                neighbors: vec![neighbor.clone()],
                store: Box::new(store.clone()),
            },
            Message::NeighborUpdate {
                info: neighbor.clone(),
            },
            Message::Query {
                query: query.clone(),
                query_id: 77,
                reply_to: NodeId::new(8),
                hops: 2,
                fanout: true,
            },
            Message::QueryReply {
                query_id: 77,
                records: vec![record.clone()],
            },
            Message::Publish {
                record: record.clone(),
                hops: 1,
            },
            Message::Subscribe {
                sub,
                hops: 0,
                fanout: false,
            },
            Message::Notify { record },
            Message::Heartbeat {
                info: neighbor.clone(),
                index: 0.25,
            },
            Message::SyncState {
                store: Box::new(store.clone()),
                neighbors: Vec::new(),
            },
            Message::StealSecondaryRequest {
                requester: node(2),
                index: 1.5,
                swap: true,
            },
            Message::StealSecondaryGrant {
                secondary: node(4),
                donor_region: region,
                swap: false,
            },
            Message::StealSecondaryDeny,
            Message::LeaveNotice,
            Message::Detached,
            Message::WhoOwns { region },
            Message::OwnerIs {
                info: neighbor.clone(),
            },
            Message::MergeRegions {
                region,
                store: Box::new(store.clone()),
                neighbors: vec![neighbor.clone()],
            },
            Message::TakeOverRegion {
                region,
                store: Box::new(store),
                neighbors: vec![neighbor],
                new_secondary: Some(node(9)),
            },
        ];
        for m in messages {
            round_trip(m);
        }
    }

    #[test]
    fn rejects_bad_version() {
        let env = envelope(Message::JoinDirected { joiner: node(2) });
        let mut bytes = env.encode().to_vec();
        bytes[0] = 99;
        assert_eq!(Envelope::decode(&bytes), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let env = envelope(Message::JoinSplit {
            region: Region::new(0.0, 0.0, 1.0, 1.0),
            neighbors: vec![NeighborInfo::new(node(3), Region::new(0.0, 0.0, 2.0, 2.0))],
            store: Box::new(RegionStore::new()),
        });
        let bytes = env.encode();
        for cut in 0..bytes.len() {
            assert!(
                Envelope::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let env = envelope(Message::JoinDirected { joiner: node(2) });
        let mut bytes = env.encode().to_vec();
        bytes.push(0);
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn rejects_non_finite_floats() {
        let env = envelope(Message::JoinDirected { joiner: node(2) });
        let mut bytes = env.encode().to_vec();
        // sender NodeInfo coord starts right after version + id.
        let nan = f64::NAN.to_le_bytes();
        bytes[9..17].copy_from_slice(&nan);
        assert_eq!(Envelope::decode(&bytes), Err(WireError::BadFloat));
    }

    #[test]
    fn referenced_nodes_covers_neighbors() {
        let region = Region::new(0.0, 0.0, 1.0, 1.0);
        let m = Message::JoinSplit {
            region,
            neighbors: vec![
                NeighborInfo {
                    primary: node(3),
                    secondary: Some(node(4)),
                    region,
                },
                NeighborInfo::new(node(5), region),
            ],
            store: Box::new(RegionStore::new()),
        };
        let ids = referenced_nodes(&m);
        assert_eq!(ids, vec![NodeId::new(3), NodeId::new(4), NodeId::new(5)]);
    }

    #[test]
    fn referenced_nodes_dedups() {
        let m = Message::Query {
            query: LocationQuery::new(Region::new(0.0, 0.0, 1.0, 1.0), NodeId::new(2)),
            query_id: 1,
            reply_to: NodeId::new(2),
            hops: 0,
            fanout: false,
        };
        assert_eq!(referenced_nodes(&m), vec![NodeId::new(2)]);
    }
}
