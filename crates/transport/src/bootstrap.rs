//! The bootstrap directory.
//!
//! §2.1: a joining node "obtains a list of existing nodes in GeoGrid from
//! a bootstrapping server or a local host cache" and picks a random entry
//! node. This module implements that server and its client.
//!
//! Protocol (framed like the node protocol, 1 request frame → 1 response
//! frame per connection):
//!
//! * `R <id> <addr>` — register a node; response `OK`.
//! * `L` — list registered nodes; response `<id> <addr>` per line.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use geogrid_core::NodeId;
use parking_lot::Mutex;
use tokio::net::{TcpListener, TcpStream};

use crate::frame::{read_frame, write_frame};

/// A running bootstrap server.
///
/// # Examples
///
/// ```no_run
/// # async fn demo() -> std::io::Result<()> {
/// use geogrid_transport::{BootstrapClient, BootstrapServer};
/// use geogrid_core::NodeId;
///
/// let server = BootstrapServer::bind("127.0.0.1:0".parse().unwrap()).await?;
/// let client = BootstrapClient::new(server.local_addr());
/// client.register(NodeId::new(1), "127.0.0.1:9000".parse().unwrap()).await?;
/// let nodes = client.list().await?;
/// assert_eq!(nodes.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BootstrapServer {
    local_addr: SocketAddr,
    nodes: Arc<Mutex<BTreeMap<NodeId, SocketAddr>>>,
}

impl BootstrapServer {
    /// Binds and starts serving.
    ///
    /// # Errors
    ///
    /// The bind error, if any.
    pub async fn bind(addr: SocketAddr) -> io::Result<BootstrapServer> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let nodes: Arc<Mutex<BTreeMap<NodeId, SocketAddr>>> = Arc::default();
        let shared = Arc::clone(&nodes);
        tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else {
                    break;
                };
                let shared = Arc::clone(&shared);
                tokio::spawn(async move {
                    let _ = serve_one(stream, shared).await;
                });
            }
        });
        Ok(BootstrapServer { local_addr, nodes })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Registered nodes (for inspection).
    pub fn registered(&self) -> Vec<(NodeId, SocketAddr)> {
        self.nodes.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }
}

async fn serve_one(
    mut stream: TcpStream,
    nodes: Arc<Mutex<BTreeMap<NodeId, SocketAddr>>>,
) -> io::Result<()> {
    while let Some(frame) = read_frame(&mut stream).await? {
        let text = String::from_utf8_lossy(&frame).into_owned();
        let reply = handle_request(&text, &nodes);
        write_frame(&mut stream, reply.as_bytes()).await?;
    }
    Ok(())
}

fn handle_request(text: &str, nodes: &Mutex<BTreeMap<NodeId, SocketAddr>>) -> String {
    let mut parts = text.split_whitespace();
    match parts.next() {
        Some("R") => {
            let Some(id) = parts.next().and_then(|s| s.parse::<u64>().ok()) else {
                return "ERR bad id".to_string();
            };
            let Some(addr) = parts.next().and_then(|s| s.parse::<SocketAddr>().ok()) else {
                return "ERR bad addr".to_string();
            };
            nodes.lock().insert(NodeId::new(id), addr);
            "OK".to_string()
        }
        Some("L") => {
            let nodes = nodes.lock();
            let mut out = String::new();
            for (id, addr) in nodes.iter() {
                out.push_str(&format!("{} {}\n", id.as_u64(), addr));
            }
            out
        }
        _ => "ERR unknown".to_string(),
    }
}

/// Client for the bootstrap protocol.
#[derive(Debug, Clone)]
pub struct BootstrapClient {
    server: SocketAddr,
}

impl BootstrapClient {
    /// Creates a client targeting `server`.
    pub fn new(server: SocketAddr) -> Self {
        Self { server }
    }

    /// Registers a node with the directory.
    ///
    /// # Errors
    ///
    /// Connection/IO errors, or `InvalidData` if the server rejects the
    /// request.
    pub async fn register(&self, id: NodeId, addr: SocketAddr) -> io::Result<()> {
        let mut stream = TcpStream::connect(self.server).await?;
        write_frame(
            &mut stream,
            format!("R {} {}", id.as_u64(), addr).as_bytes(),
        )
        .await?;
        let reply = read_frame(&mut stream)
            .await?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no reply"))?;
        if &reply[..] == b"OK" {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                String::from_utf8_lossy(&reply).into_owned(),
            ))
        }
    }

    /// Fetches all registered nodes.
    ///
    /// # Errors
    ///
    /// Connection/IO errors, or `InvalidData` on a malformed listing.
    pub async fn list(&self) -> io::Result<Vec<(NodeId, SocketAddr)>> {
        let mut stream = TcpStream::connect(self.server).await?;
        write_frame(&mut stream, b"L").await?;
        let reply = read_frame(&mut stream)
            .await?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no reply"))?;
        let text = String::from_utf8_lossy(&reply);
        let mut out = Vec::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let id = parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad id"))?;
            let addr = parts
                .next()
                .and_then(|s| s.parse::<SocketAddr>().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad addr"))?;
            out.push((NodeId::new(id), addr));
        }
        Ok(out)
    }
}

/// Writes a host cache file: one `<id> <addr>` line per known node.
///
/// §2.1's bootstrap alternative: a node may use "a local host cache
/// carried from its last session of activity" instead of the server.
///
/// # Errors
///
/// Any I/O error from creating parent directories or writing the file.
pub fn save_host_cache(path: &std::path::Path, nodes: &[(NodeId, SocketAddr)]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    for (id, addr) in nodes {
        out.push_str(&format!("{} {}\n", id.as_u64(), addr));
    }
    std::fs::write(path, out)
}

/// Reads a host cache file written by [`save_host_cache`]. Unparseable
/// lines are skipped (a stale cache should degrade, not fail).
///
/// # Errors
///
/// Only the I/O error of reading the file itself.
pub fn load_host_cache(path: &std::path::Path) -> io::Result<Vec<(NodeId, SocketAddr)>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let (Some(id), Some(addr)) = (parts.next(), parts.next()) else {
            continue;
        };
        let (Ok(id), Ok(addr)) = (id.parse::<u64>(), addr.parse::<SocketAddr>()) else {
            continue;
        };
        out.push((NodeId::new(id), addr));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cache_round_trips_and_skips_garbage() {
        let dir = std::env::temp_dir().join("geogrid_host_cache_test");
        let path = dir.join("hosts.txt");
        let nodes = vec![
            (NodeId::new(1), "127.0.0.1:7001".parse().unwrap()),
            (NodeId::new(2), "127.0.0.1:7002".parse().unwrap()),
        ];
        save_host_cache(&path, &nodes).unwrap();
        // Append a garbage line; loading must skip it.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not a line\n3 alsobad\n");
        std::fs::write(&path, text).unwrap();
        let back = load_host_cache(&path).unwrap();
        assert_eq!(back, nodes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[tokio::test]
    async fn register_and_list() {
        let server = BootstrapServer::bind("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let client = BootstrapClient::new(server.local_addr());
        assert!(client.list().await.unwrap().is_empty());
        client
            .register(NodeId::new(7), "127.0.0.1:9999".parse().unwrap())
            .await
            .unwrap();
        client
            .register(NodeId::new(3), "127.0.0.1:8888".parse().unwrap())
            .await
            .unwrap();
        let nodes = client.list().await.unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].0, NodeId::new(3)); // BTreeMap order
        assert_eq!(server.registered().len(), 2);
    }

    #[tokio::test]
    async fn reregistration_updates_address() {
        let server = BootstrapServer::bind("127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        let client = BootstrapClient::new(server.local_addr());
        client
            .register(NodeId::new(1), "127.0.0.1:1000".parse().unwrap())
            .await
            .unwrap();
        client
            .register(NodeId::new(1), "127.0.0.1:2000".parse().unwrap())
            .await
            .unwrap();
        let nodes = client.list().await.unwrap();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].1, "127.0.0.1:2000".parse().unwrap());
    }

    #[test]
    fn malformed_requests_get_errors() {
        let nodes = Mutex::new(BTreeMap::new());
        assert!(handle_request("R x y", &nodes).starts_with("ERR"));
        assert!(handle_request("R 1 nonsense", &nodes).starts_with("ERR"));
        assert!(handle_request("Z", &nodes).starts_with("ERR"));
        assert_eq!(handle_request("R 1 127.0.0.1:80", &nodes), "OK");
    }
}
