//! Criterion microbenches for the wire codec: encode/decode throughput of
//! representative GeoGrid messages.

use criterion::{criterion_group, criterion_main, Criterion};
use geogrid_core::engine::{Message, NeighborInfo};
use geogrid_core::service::{LocationRecord, RegionStore};
use geogrid_core::{NodeId, NodeInfo};
use geogrid_geometry::{Point, Region};
use geogrid_transport::Envelope;
use std::hint::black_box;

fn node(id: u64) -> NodeInfo {
    NodeInfo::new(NodeId::new(id), Point::new(1.0, 2.0), 10.0)
}

fn heartbeat_envelope() -> Envelope {
    Envelope {
        sender: node(1),
        sender_addr: "127.0.0.1:9000".parse().unwrap(),
        addrs: vec![(NodeId::new(2), "127.0.0.1:9001".parse().unwrap())],
        message: Message::Heartbeat {
            info: NeighborInfo::new(node(1), Region::new(0.0, 0.0, 32.0, 32.0)),
            index: 0.25,
        },
    }
}

fn join_split_envelope(neighbors: usize, records: usize) -> Envelope {
    let region = Region::new(0.0, 0.0, 32.0, 32.0);
    let mut store = RegionStore::new();
    for i in 0..records {
        store.publish(
            LocationRecord::new(
                i as u64,
                "traffic",
                Point::new(1.0 + i as f64 * 0.01, 2.0),
                vec![0u8; 64],
            ),
            0,
        );
    }
    Envelope {
        sender: node(1),
        sender_addr: "127.0.0.1:9000".parse().unwrap(),
        addrs: Vec::new(),
        message: Message::JoinSplit {
            region,
            neighbors: (0..neighbors)
                .map(|i| NeighborInfo::new(node(10 + i as u64), region))
                .collect(),
            store: Box::new(store),
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let heartbeat = heartbeat_envelope();
    c.bench_function("encode_heartbeat", |b| {
        b.iter(|| black_box(heartbeat.encode()))
    });
    let hb_bytes = heartbeat.encode();
    c.bench_function("decode_heartbeat", |b| {
        b.iter(|| black_box(Envelope::decode(&hb_bytes).unwrap()))
    });

    let split = join_split_envelope(8, 100);
    c.bench_function("encode_join_split_8n_100r", |b| {
        b.iter(|| black_box(split.encode()))
    });
    let split_bytes = split.encode();
    c.bench_function("decode_join_split_8n_100r", |b| {
        b.iter(|| black_box(Envelope::decode(&split_bytes).unwrap()))
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
