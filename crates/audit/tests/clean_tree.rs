//! Regression gate: the workspace's own sources must stay lint-clean.
//!
//! Every rule's positive/negative behavior is covered by the unit
//! self-tests in `src/lib.rs`; this test pins the other half of the
//! contract — `cargo lint-all` exits 0 on the real tree — so a change
//! that re-introduces debt (an undocumented `expect`, an inline epoch
//! write, an unmarked geometry-rewrite site) fails `cargo test-all`
//! even before CI runs the binary.

#![forbid(unsafe_code)]

use std::path::Path;

use geogrid_audit::{find_workspace_root, lint_workspace};

fn workspace_root() -> std::path::PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(manifest).expect("crates/audit lives inside the workspace")
}

#[test]
fn workspace_tree_is_lint_clean() {
    let root = workspace_root();
    let findings = lint_workspace(&root).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "cargo lint-all must be clean, got {} finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_root_discovery_finds_the_real_root() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").is_file());
    // The discovered root is the workspace manifest, not a member's.
    let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
    assert!(manifest.contains("[workspace]"));
}
