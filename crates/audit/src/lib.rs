//! `geogrid-audit`: an offline, dependency-light static-analysis pass over
//! the workspace's own Rust sources, run as `cargo lint-all`.
//!
//! The overlay's fast paths (PRs 1–2) created *coupled* mutation sites:
//! every geometry rewrite must update the grid spatial index, the 64-byte
//! slot-geometry mirror, and the route-cache epoch in lockstep, and the
//! routing hot path must stay allocation-free. Those rules are invisible
//! to the type system, so this crate machine-checks them with a
//! hand-rolled token scanner (no `syn` — the build environment has no
//! registry access, and a lossy-but-honest lexer is all these rules
//! need).
//!
//! # Rule catalog
//!
//! | ID | Rule |
//! |-------|------|
//! | GG000 | marker hygiene: every `// audit:` marker uses a known family, attaches to a function, and carries required arguments |
//! | GG001 | functions marked `// audit: geometry-rewrite` must call every required callee group (epoch bump + grid/mirror rewrite), and nothing unmarked may call those mutators |
//! | GG002 | no allocation (`Vec::new`, `vec!`, `.clone()`, `.to_vec()`, `.collect()`, …) inside `#[hot_path]`-marked functions |
//! | GG003 | no `.unwrap()` in non-test `crates/core` code; `.expect(...)` only with an `"invariant: ..."` message |
//! | GG004 | `#![forbid(unsafe_code)]` present in every first-party crate root |
//! | GG005 | the geometry epoch field is written only inside `bump_epoch` |
//! | GG006 | the snapshot publication primitives (`publish_snapshot`, `install_snapshot`) are called only from `// audit: geometry-rewrite` / `// audit: snapshot-publish` marked functions, and every `snapshot-publish` marker is live |
//! | GG007 | the store hand-off primitives (`split_for`, `absorb`) are called only from `// audit: store-handoff` marked functions, and every marked function actually calls one |
//! | GG008 | `#[hot_path]` purity is transitive: no allocation, blocking, or panicking construct reachable through helper calls (escape: `// audit: hot-path-exempt(reason)`) |
//! | GG009 | the wire decode surface (`decode*`/`read_frame` in `crates/transport`) reaches no indexing, unwrap, or unchecked arithmetic |
//! | GG010 | every `Message` enum variant appears in the encode, decode, and engine-handler match sites |
//! | GG011 | no blocking call (`std::thread::sleep`, `std::sync::Mutex::lock`, `std::fs`/`std::net` IO) reachable from an `async fn` in `crates/transport` |
//!
//! GG001–GG007 are *lexical* (per-function token patterns). GG008–GG011
//! are *reachability* rules: the [`graph`] module links every function
//! definition and call site into an approximate workspace call graph and
//! walks it (see that module's docs for the resolution strategy and its
//! known false-negative classes).
//!
//! Every rule has a fix-it hint ([`hint`]) and seeded-violation self-tests
//! (this file's test module) proving it catches the mistake it exists
//! for. DESIGN.md §7 maps each structural invariant to its enforcing rule
//! or runtime auditor check.
//!
//! The scanner is *lossy by design*: it lexes identifiers, operators,
//! strings and comments exactly (so markers in comments and banned calls
//! in code are never confused with string contents), but it does not
//! build an AST. Function bodies are recovered by brace matching, test
//! code by `#[cfg(test)]`/`#[test]` attribute tracking. That is enough
//! for rules keyed on call-shaped token patterns, and it keeps the tool
//! running in milliseconds with zero dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

pub mod graph;

pub use graph::{analyze_files, analyze_workspace, Analysis, UnresolvedCall};

// ---------------------------------------------------------------------------
// Rule metadata
// ---------------------------------------------------------------------------

/// One lint rule: machine-readable id, summary, and fix-it hint.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Machine-readable rule id (`GG001` …).
    pub id: &'static str,
    /// One-line description of what the rule enforces.
    pub summary: &'static str,
    /// How to fix a violation.
    pub hint: &'static str,
}

/// The full rule catalog, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "GG000",
        summary: "marker hygiene: every `// audit:` marker uses a known family, \
                  attaches to a function, and carries required arguments",
        hint: "use one of the known marker families (geometry-rewrite, \
               snapshot-publish, store-handoff, hot-path-exempt), place the \
               marker directly above a function, and give hot-path-exempt a \
               parenthesized reason",
    },
    RuleInfo {
        id: "GG001",
        summary: "geometry-rewrite three-site coherence: marked functions must \
                  update the grid index + slot mirror and bump the epoch; \
                  unmarked functions must not call those mutators",
        hint: "mark the function with `// audit: geometry-rewrite` and make it \
               call bump_epoch plus one of rewrite_geometry/alloc_slot/free_slot, \
               or move the mutation into an already-marked site",
    },
    RuleInfo {
        id: "GG002",
        summary: "no allocation or copying calls inside #[hot_path] functions",
        hint: "hoist the allocation into an unmarked cold-path helper or reuse \
               a scratch buffer (see RouteScratch)",
    },
    RuleInfo {
        id: "GG003",
        summary: "no .unwrap(), and only invariant-documented .expect(), in \
                  non-test geogrid-core code",
        hint: "return a typed CoreError (`ok_or`/`map_err`) or document why \
               failure is impossible: `.expect(\"invariant: ...\")`",
    },
    RuleInfo {
        id: "GG004",
        summary: "#![forbid(unsafe_code)] present in every first-party crate root",
        hint: "add `#![forbid(unsafe_code)]` to the crate root (src/lib.rs or \
               src/main.rs)",
    },
    RuleInfo {
        id: "GG005",
        summary: "the geometry epoch field is written only inside bump_epoch",
        hint: "route every epoch change through Topology::bump_epoch so \
               epoch-keyed route caches observe all geometry versions",
    },
    RuleInfo {
        id: "GG006",
        summary: "snapshot publication primitives (publish_snapshot, \
                  install_snapshot) are called only from marked publication \
                  sites, so readers observe one snapshot per geometry epoch",
        hint: "publish through the geometry-rewrite sites (which call \
               publish_snapshot beside bump_epoch), or mark a deliberate new \
               publication site with `// audit: snapshot-publish`",
    },
    RuleInfo {
        id: "GG007",
        summary: "store hand-off primitives (split_for, absorb) are called only \
                  from `// audit: store-handoff` marked functions, so records \
                  and subscriptions migrate exactly once per geometry rewrite",
        hint: "route the hand-off through a marked engine site (split/merge/\
               join acceptance), or mark a deliberate new hand-off site with \
               `// audit: store-handoff` and make it call split_for or absorb",
    },
    RuleInfo {
        id: "GG008",
        summary: "transitive #[hot_path] purity: no allocation, blocking, or \
                  panicking construct reachable from a hot function through \
                  any chain of resolved helper calls",
        hint: "hoist the offending work out of the call chain (scratch \
               buffers, precomputation), or — if the path is provably cold — \
               mark the helper `// audit: hot-path-exempt(reason)`",
    },
    RuleInfo {
        id: "GG009",
        summary: "wire-decode panic freedom: no `[]` indexing, `.unwrap()`, \
                  undocumented `.expect()`, panic macro, or unchecked `+`/`-`/\
                  `*` arithmetic reachable from decode*/read_frame in \
                  crates/transport",
        hint: "use length-checked Reader accessors, `get(..)`, and \
               checked_add/checked_mul — malformed peer input must surface as \
               a WireError, never a panic",
    },
    RuleInfo {
        id: "GG010",
        summary: "Message-variant exhaustiveness: every variant of the core \
                  `Message` enum appears in the wire encode site, the wire \
                  decode site, and the engine handler match",
        hint: "add the variant to put_message + get_message \
               (crates/transport/src/wire.rs) and handle_message \
               (crates/core/src/engine/node.rs) — a variant missing from any \
               site is silently undeliverable",
    },
    RuleInfo {
        id: "GG011",
        summary: "async purity: no blocking call (std::thread::sleep, \
                  std::sync::Mutex::lock, std::fs / blocking std::net IO) \
                  reachable from an async fn in crates/transport",
        hint: "move the blocking work behind tokio::task::spawn_blocking, or \
               use the tokio equivalent (tokio::time::sleep, tokio::net, \
               parking_lot for brief uncontended locks)",
    },
];

/// The fix-it hint for a rule id.
pub fn hint(rule: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.id == rule)
        .map(|r| r.hint)
        .unwrap_or("see crates/audit/src/lib.rs for the rule catalog")
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's id (`GG001` …).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable description of this specific violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}\n  {}\n  fix: {}",
            self.rule,
            self.path,
            self.line,
            self.message,
            hint(self.rule)
        )
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// A lexed token (comments are captured separately as [`Marker`]s).
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (content only, escapes left as written).
    Str(String),
    /// Operator or punctuation (multi-character operators kept whole).
    Op(String),
    /// Numeric or char literal (content irrelevant to every rule).
    Lit,
    /// Lifetime (`'a`).
    Life,
}

impl Tok {
    fn is(&self, s: &str) -> bool {
        match self {
            Tok::Ident(t) | Tok::Op(t) => t == s,
            _ => false,
        }
    }
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// An `// audit: ...` marker comment.
#[derive(Debug, Clone)]
pub struct Marker {
    /// 1-based line of the comment.
    pub line: u32,
    /// Text after `audit:`, trimmed.
    pub text: String,
}

/// Lexer output: code tokens plus audit marker comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All `// audit:` markers in source order.
    pub markers: Vec<Marker>,
}

const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lexes Rust source into tokens and audit markers. Comments, string and
/// char literals are consumed exactly so rule patterns can never match
/// inside them; everything else is tokenized loosely but safely.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = src[start..i].trim_start_matches('/').trim();
                if let Some(rest) = text.strip_prefix("audit:") {
                    out.markers.push(Marker {
                        line,
                        text: rest.trim().to_string(),
                    });
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (content, ni, nl) = lex_string(src, i, line);
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                });
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (tok, ni, nl) = lex_quote(src, i, line);
                out.tokens.push(Token { tok, line });
                i = ni;
                line = nl;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                // Raw/byte string prefixes: r"", r#""#, b"", br#""#.
                if let Some((content, ni, nl)) = try_raw_or_byte_string(src, i, line) {
                    out.tokens.push(Token {
                        tok: Tok::Str(content),
                        line,
                    });
                    i = ni;
                    line = nl;
                    continue;
                }
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                // Raw identifier `r#name`: keep the bare name.
                let mut text = &src[start..i];
                if text == "r" && b.get(i) == Some(&b'#') {
                    let s2 = i + 1;
                    let mut j = s2;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    if j > s2 {
                        text = &src[s2..j];
                        i = j;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(text.to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    let continues = d == b'_'
                        || d.is_ascii_alphanumeric()
                        || (d == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()))
                        || ((d == b'+' || d == b'-')
                            && matches!(b.get(i - 1), Some(&b'e') | Some(&b'E')));
                    if !continues {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let op = MULTI_OPS.iter().find(|op| rest.starts_with(**op));
                match op {
                    Some(op) => {
                        out.tokens.push(Token {
                            tok: Tok::Op(op.to_string()),
                            line,
                        });
                        i += op.len();
                    }
                    None => {
                        out.tokens.push(Token {
                            tok: Tok::Op((c as char).to_string()),
                            line,
                        });
                        i += 1;
                    }
                }
            }
        }
    }
    out
}

/// Lexes a `"..."` string starting at `i` (the opening quote). Returns
/// (content, next index, next line).
fn lex_string(src: &str, i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut j = i + 1;
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                line += 1;
                j += 1;
            }
            b'"' => return (src[start..j].to_string(), j + 1, line),
            _ => j += 1,
        }
    }
    (src[start..j.min(src.len())].to_string(), j, line)
}

/// Lexes the token starting with `'`: a char literal or a lifetime.
fn lex_quote(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let j = i + 1;
    if j >= b.len() {
        return (Tok::Op("'".to_string()), j, line);
    }
    if b[j] == b'\\' {
        // Escaped char literal: '\n', '\'', '\u{..}', '\x7f'.
        let mut k = j + 1;
        if b.get(k) == Some(&b'u') && b.get(k + 1) == Some(&b'{') {
            while k < b.len() && b[k] != b'}' {
                k += 1;
            }
            k += 1;
        } else if b.get(k) == Some(&b'x') {
            k += 3;
        } else {
            k += 1;
        }
        if b.get(k) == Some(&b'\'') {
            k += 1;
        }
        return (Tok::Lit, k.min(src.len()), line);
    }
    // One char then a closing quote → char literal; otherwise lifetime.
    let mut chars = src[j..].chars();
    if let Some(c0) = chars.next() {
        let after = j + c0.len_utf8();
        if b.get(after) == Some(&b'\'') {
            return (Tok::Lit, after + 1, line);
        }
    }
    let mut k = j;
    while k < b.len() && (b[k] == b'_' || b[k].is_ascii_alphanumeric()) {
        k += 1;
    }
    (Tok::Life, k.max(j + 1), line)
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` starting at ident char
/// `i`; returns `None` if the text there is not a raw/byte string.
fn try_raw_or_byte_string(src: &str, i: usize, mut line: u32) -> Option<(String, usize, u32)> {
    let b = src.as_bytes();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') || (!raw && (hashes > 0 || j == i)) {
        return None;
    }
    if !raw {
        // Plain byte string b"…": same escape rules as a normal string.
        let (s, ni, nl) = lex_string(src, j, line);
        return Some((s, ni, nl));
    }
    j += 1;
    let start = j;
    let closer: String = std::iter::once('"')
        .chain("#".repeat(hashes).chars())
        .collect();
    while j < b.len() {
        if b[j] == b'\n' {
            line += 1;
        }
        if src[j..].starts_with(&closer) {
            return Some((src[start..j].to_string(), j + closer.len(), line));
        }
        j += 1;
    }
    Some((src[start..].to_string(), j, line))
}

// ---------------------------------------------------------------------------
// Item model: functions, attributes, test regions
// ---------------------------------------------------------------------------

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Flattened text of each outer attribute (tokens joined by spaces).
    pub attrs: Vec<String>,
    /// `// audit:` markers attached to this function.
    pub markers: Vec<String>,
    /// Token-index range of the body (between the braces, exclusive).
    pub body: Range<usize>,
    /// Whether the function is test-only (`#[test]`, `#[cfg(test)]`, or
    /// inside a `#[cfg(test)] mod`).
    pub is_test: bool,
    /// Whether the function is declared `async`.
    pub is_async: bool,
}

/// A file's lexed tokens plus the recovered item structure.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// All code tokens.
    pub tokens: Vec<Token>,
    /// Flattened inner attributes (`#![...]`).
    pub inner_attrs: Vec<String>,
    /// Every recovered function.
    pub fns: Vec<FnItem>,
    /// Token ranges of `#[cfg(test)]` items and `#[test]` fn bodies.
    pub test_ranges: Vec<Range<usize>>,
    /// `// audit:` markers not attached to any function (GG000).
    pub stray_markers: Vec<Marker>,
}

impl FileModel {
    /// Whether token index `idx` lies in test-only code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&idx))
    }

    /// The innermost function whose body contains token index `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.end - f.body.start)
    }
}

fn is_cfg_test(attr: &str) -> bool {
    attr.starts_with("cfg") && attr.contains("test")
}

fn is_test_attr(attr: &str) -> bool {
    attr == "test" || is_cfg_test(attr)
}

/// Builds the item model from lexed tokens.
pub fn model(path: &str, lexed: &Lexed) -> FileModel {
    let toks = &lexed.tokens;
    let mut fm = FileModel {
        path: path.to_string(),
        tokens: Vec::new(),
        inner_attrs: Vec::new(),
        fns: Vec::new(),
        test_ranges: Vec::new(),
        stray_markers: Vec::new(),
    };
    let mut marker_cursor = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].tok.is("#") && toks.get(i + 1).is_some_and(|t| t.tok.is("!")) {
            // Inner attribute `#![...]`.
            if let Some((text, end)) = collect_attr(toks, i + 2) {
                fm.inner_attrs.push(text);
                i = end;
                continue;
            }
        }
        if toks[i].tok.is("#") && toks.get(i + 1).is_some_and(|t| t.tok.is("[")) {
            // One or more outer attributes, then the item they decorate.
            let mut attrs = Vec::new();
            let mut j = i;
            while toks.get(j).is_some_and(|t| t.tok.is("#"))
                && toks.get(j + 1).is_some_and(|t| t.tok.is("["))
            {
                match collect_attr(toks, j + 1) {
                    Some((text, end)) => {
                        attrs.push(text);
                        j = end;
                    }
                    None => break,
                }
            }
            j = skip_visibility_and_qualifiers(toks, j);
            if toks.get(j).is_some_and(|t| t.tok.is("fn")) {
                let next = handle_fn(toks, j, attrs, lexed, &mut marker_cursor, &mut fm);
                i = next;
                continue;
            }
            if toks.get(j).is_some_and(|t| t.tok.is("mod")) && attrs.iter().any(|a| is_cfg_test(a))
            {
                // `#[cfg(test)] mod …`: record the body as a test range
                // and keep scanning inside it (fns there are still
                // segmented, flagged as tests via the range).
                if let Some(open) = find_from(toks, j, "{") {
                    if let Some(close) = match_brace(toks, open) {
                        fm.test_ranges.push(open..close + 1);
                    }
                    i = open + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        if toks[i].tok.is("fn") {
            let next = handle_fn(toks, i, Vec::new(), lexed, &mut marker_cursor, &mut fm);
            i = next;
            continue;
        }
        i += 1;
    }
    // Markers the fn scan never attached (e.g. trailing at end of file).
    fm.stray_markers
        .extend(lexed.markers[marker_cursor..].iter().cloned());
    // Re-check test status now that all ranges are known, and keep the
    // token stream for the rules.
    let ranges = fm.test_ranges.clone();
    for f in &mut fm.fns {
        if ranges.iter().any(|r| r.contains(&f.body.start)) {
            f.is_test = true;
        }
    }
    let bodies: Vec<Range<usize>> = fm
        .fns
        .iter()
        .filter(|f| f.attrs.iter().any(|a| is_test_attr(a)))
        .map(|f| f.body.clone())
        .collect();
    fm.test_ranges.extend(bodies);
    fm.tokens = toks.clone();
    fm
}

/// Collects an attribute's tokens starting at the `[` index; returns the
/// flattened text and the index just past the closing `]`.
fn collect_attr(toks: &[Token], open: usize) -> Option<(String, usize)> {
    if !toks.get(open)?.tok.is("[") {
        return None;
    }
    let mut depth = 0i32;
    let mut parts = Vec::new();
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j].tok;
        if t.is("[") {
            depth += 1;
            if depth > 1 {
                parts.push("[".to_string());
            }
        } else if t.is("]") {
            depth -= 1;
            if depth == 0 {
                return Some((parts.join(" "), j + 1));
            }
            parts.push("]".to_string());
        } else {
            parts.push(match t {
                Tok::Ident(s) | Tok::Op(s) => s.clone(),
                Tok::Str(s) => format!("{s:?}"),
                Tok::Lit => "#lit".to_string(),
                Tok::Life => "'_".to_string(),
            });
        }
        j += 1;
    }
    None
}

fn skip_visibility_and_qualifiers(toks: &[Token], mut j: usize) -> usize {
    if toks.get(j).is_some_and(|t| t.tok.is("pub")) {
        j += 1;
        if toks.get(j).is_some_and(|t| t.tok.is("(")) {
            if let Some(close) = match_paren(toks, j) {
                j = close + 1;
            }
        }
    }
    while toks.get(j).is_some_and(|t| {
        t.tok.is("const") || t.tok.is("async") || t.tok.is("unsafe") || t.tok.is("extern")
    }) {
        j += 1;
        if let Some(Tok::Str(_)) = toks.get(j).map(|t| &t.tok) {
            j += 1; // extern "C"
        }
    }
    j
}

fn find_from(toks: &[Token], from: usize, what: &str) -> Option<usize> {
    (from..toks.len()).find(|&k| toks[k].tok.is(what))
}

fn match_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.tok.is("{") {
            depth += 1;
        } else if t.tok.is("}") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn match_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.tok.is("(") {
            depth += 1;
        } else if t.tok.is(")") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Segments the fn starting at token `fn_idx`; returns the index scanning
/// should continue from (past the body, so nested closures/f­ns belong to
/// this item).
fn handle_fn(
    toks: &[Token],
    fn_idx: usize,
    attrs: Vec<String>,
    lexed: &Lexed,
    marker_cursor: &mut usize,
    fm: &mut FileModel,
) -> usize {
    let Some(Tok::Ident(name)) = toks.get(fn_idx + 1).map(|t| &t.tok) else {
        return fn_idx + 1; // `fn(` pointer type — not an item
    };
    let line = toks[fn_idx].line;
    // Body: first `{` at bracket/paren depth 0; a `;` first means no body.
    let mut j = fn_idx + 2;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut open = None;
    while j < toks.len() {
        let t = &toks[j].tok;
        if t.is("(") {
            paren += 1;
        } else if t.is(")") {
            paren -= 1;
        } else if t.is("[") {
            bracket += 1;
        } else if t.is("]") {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is("{") {
                open = Some(j);
                break;
            }
            if t.is(";") {
                break;
            }
        }
        j += 1;
    }
    let Some(open) = open else {
        return j + 1;
    };
    let close = match_brace(toks, open).unwrap_or(toks.len().saturating_sub(1));
    // Attach every unconsumed marker written above this fn.
    let mut markers = Vec::new();
    while *marker_cursor < lexed.markers.len() && lexed.markers[*marker_cursor].line <= line {
        markers.push(lexed.markers[*marker_cursor].text.clone());
        *marker_cursor += 1;
    }
    let is_test = attrs.iter().any(|a| is_test_attr(a));
    fm.fns.push(FnItem {
        name: name.clone(),
        line,
        attrs,
        markers,
        body: open + 1..close,
        is_test,
        is_async: detect_async(toks, fn_idx),
    });
    close + 1
}

/// Whether the `fn` at `fn_idx` carries an `async` qualifier. The
/// qualifiers were already consumed by the caller's scan, so this walks
/// back over the qualifier-shaped tokens (`pub (crate)`, `const`,
/// `unsafe`, `extern "C"`, …) that may precede the keyword.
fn detect_async(toks: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        let t = &toks[j - 1].tok;
        let qualifier = matches!(
            t,
            Tok::Ident(s) if matches!(
                s.as_str(),
                "pub" | "const" | "async" | "unsafe" | "extern" | "crate" | "super" | "self" | "in"
            )
        ) || t.is("(")
            || t.is(")")
            || matches!(t, Tok::Str(_));
        if !qualifier {
            return false;
        }
        if t.is("async") {
            return true;
        }
        j -= 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The private `Topology` helpers that together form one geometry rewrite
/// (epoch bump, grid index + slot mirror, express-finger maintenance).
/// Calling any of them outside a `// audit: geometry-rewrite`-marked
/// function is a GG001 violation. Helpers in this list are exempt as
/// *callers* — the finger routines compose each other freely inside the
/// protected layer.
pub const PROTECTED_CALLEES: &[&str] = &[
    "bump_epoch",
    "rewrite_geometry",
    "alloc_slot",
    "free_slot",
    "rebuild_fingers_of",
    "fingers_after_split",
    "fingers_after_merge",
    "clear_fingers_of",
    "retarget_in_links",
    "recompute_one_finger",
];

/// Default required-callee groups for a geometry-rewrite site: each inner
/// group must have at least one call in the marked function's body.
/// `rewrite_geometry`/`alloc_slot`/`free_slot` all maintain the grid index
/// *and* the slot-geometry mirror, so one call covers both coupled sites;
/// `bump_epoch` is always separately required.
pub const DEFAULT_REQUIRES: &[&[&str]] = &[
    &["bump_epoch"],
    &["rewrite_geometry", "alloc_slot", "free_slot"],
];

/// The snapshot publication primitives: the only way a new
/// `TopologySnapshot` reaches concurrent readers. Calling either outside
/// a `// audit: geometry-rewrite` or `// audit: snapshot-publish` marked
/// function is a GG006 violation — an unmarked publication site could
/// hand readers a snapshot that skips (or duplicates) a geometry epoch.
/// The primitives may call each other (`publish_snapshot` installs into
/// the cell), and test code may install snapshots freely to seed
/// stale/corrupt states for the runtime auditor.
pub const SNAPSHOT_PRIMITIVES: &[&str] = &["publish_snapshot", "install_snapshot"];

/// The store hand-off primitives: the only way records and subscriptions
/// move between `RegionStore`s wholesale. `split_for` partitions a
/// store in place and returns the half for the departing region;
/// `absorb` unions a handed-over store with HLC last-write-wins
/// resolution. Calling either outside a `// audit: store-handoff` marked
/// function is a GG007 violation — an unmarked hand-off site could drop
/// or duplicate live records during a geometry rewrite. Conversely a
/// marked function that never calls a primitive is a dead marker, also
/// flagged. Test code (including integration `tests/` trees) hands
/// stores around freely to probe the primitives themselves.
pub const HANDOFF_PRIMITIVES: &[&str] = &["split_for", "absorb"];

pub(crate) const HOT_BANNED_METHODS: &[&str] =
    &["clone", "to_vec", "collect", "to_owned", "to_string"];
pub(crate) const HOT_BANNED_TYPES: &[&str] = &[
    "Vec", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];
pub(crate) const HOT_BANNED_MACROS: &[&str] = &["vec", "format"];

/// Marker families the audit vocabulary knows; anything else is a GG000
/// violation (most often a typo that would silently disable a rule).
pub const MARKER_FAMILIES: &[&str] = &[
    "geometry-rewrite",
    "snapshot-publish",
    "store-handoff",
    "hot-path-exempt",
];

/// Whether an outer attribute (flattened by [`model`]) is the
/// `#[hot_path]` marker from `geogrid-marks`, however it was imported.
pub(crate) fn is_hot_path_attr(a: &str) -> bool {
    a == "hot_path" || a.ends_with(":: hot_path") || a.starts_with("hot_path (")
}

/// Whether the body range contains a call to `name` (identifier followed
/// by `(`, not a definition).
fn body_calls(toks: &[Token], body: &Range<usize>, name: &str) -> bool {
    for k in body.clone() {
        if toks[k].tok.is(name)
            && toks.get(k + 1).is_some_and(|t| t.tok.is("("))
            && (k == 0 || !toks[k - 1].tok.is("fn"))
        {
            return true;
        }
    }
    false
}

/// Parses a `geometry-rewrite` marker's `requires = a, b|c` clause;
/// falls back to [`DEFAULT_REQUIRES`].
fn parse_requires(marker: &str) -> Vec<Vec<String>> {
    let rest = marker.trim_start_matches("geometry-rewrite").trim();
    if let Some(list) = rest.strip_prefix("requires") {
        let list = list.trim_start().trim_start_matches('=');
        return list
            .split(',')
            .map(|g| g.split('|').map(|a| a.trim().to_string()).collect())
            .filter(|g: &Vec<String>| !g.iter().all(|a| a.is_empty()))
            .collect();
    }
    DEFAULT_REQUIRES
        .iter()
        .map(|g| g.iter().map(|s| s.to_string()).collect())
        .collect()
}

/// Whether `path` is an integration-test or bench tree (`tests/`,
/// `benches/`): item-level `#[cfg(test)]` tracking can't see these, the
/// directory itself is the test marker.
fn is_test_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.split('/').any(|seg| seg == "tests" || seg == "benches")
}

fn is_core_runtime_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.starts_with("crates/core/src/") || p == "crates/core/src"
}

fn is_crate_root(path: &str) -> bool {
    let p = path.replace('\\', "/");
    let parts: Vec<&str> = p.split('/').collect();
    match parts.as_slice() {
        ["src", f] | ["crates", _, "src", f] => *f == "lib.rs" || *f == "main.rs",
        _ => false,
    }
}

/// Runs every rule over one file. `path` must be workspace-relative —
/// the GG003/GG005 scopes and the GG004 crate-root predicate key on it.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let fm = model(path, &lexed);
    let mut out = Vec::new();
    rule_geometry_rewrite(&fm, &mut out);
    rule_hot_path(&fm, &mut out);
    rule_snapshot_publish(&fm, &mut out);
    if !is_test_path(path) {
        rule_store_handoff(&fm, &mut out);
    }
    if is_core_runtime_path(path) {
        rule_core_unwrap(&fm, &mut out);
        rule_epoch_write(&fm, &mut out);
    }
    if is_crate_root(path) {
        rule_forbid_unsafe(&fm, &mut out);
    }
    rule_marker_hygiene(&fm, &mut out);
    out
}

/// The marker family: text up to the first whitespace or `(`.
fn marker_family(text: &str) -> &str {
    let end = text
        .find(|c: char| c.is_whitespace() || c == '(')
        .unwrap_or(text.len());
    &text[..end]
}

/// GG000: marker hygiene. Every `// audit:` marker must (a) name a known
/// family, (b) precede a function so a rule actually consumes it, and
/// (c) for `hot-path-exempt`, carry a non-empty `(reason)`. A marker
/// failing any of these silently disables the rule it was meant to
/// engage, which is worse than no marker at all. (A marker separated
/// from its function by other items still attaches to that function —
/// if the pairing is wrong, the per-family dead-marker checks in
/// GG001/GG006/GG007/GG008 fire instead.)
fn rule_marker_hygiene(fm: &FileModel, out: &mut Vec<Finding>) {
    for f in &fm.fns {
        for m in &f.markers {
            let family = marker_family(m);
            if !MARKER_FAMILIES.contains(&family) {
                out.push(Finding {
                    rule: "GG000",
                    path: fm.path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` carries unknown marker family `audit: {family}` \
                         (known: {})",
                        f.name,
                        MARKER_FAMILIES.join(", "),
                    ),
                });
            } else if family == "hot-path-exempt" {
                let reason = m
                    .trim_start_matches("hot-path-exempt")
                    .trim()
                    .strip_prefix('(')
                    .and_then(|r| r.strip_suffix(')'))
                    .map(str::trim);
                if reason.is_none_or(|r| r.is_empty()) {
                    out.push(Finding {
                        rule: "GG000",
                        path: fm.path.clone(),
                        line: f.line,
                        message: format!(
                            "`{}` has `audit: hot-path-exempt` without a \
                             `(reason)` — exemptions must say why",
                            f.name,
                        ),
                    });
                }
            }
        }
    }
    for m in &fm.stray_markers {
        out.push(Finding {
            rule: "GG000",
            path: fm.path.clone(),
            line: m.line,
            message: format!(
                "stray `audit: {}` marker not attached to any function \
                 (no rule will ever read it)",
                marker_family(&m.text),
            ),
        });
    }
}

/// GG001: geometry-rewrite three-site coherence.
fn rule_geometry_rewrite(fm: &FileModel, out: &mut Vec<Finding>) {
    for f in &fm.fns {
        let marker = f.markers.iter().find(|m| m.starts_with("geometry-rewrite"));
        if let Some(marker) = marker {
            for group in parse_requires(marker) {
                if !group
                    .iter()
                    .any(|callee| body_calls(&fm.tokens, &f.body, callee))
                {
                    out.push(Finding {
                        rule: "GG001",
                        path: fm.path.clone(),
                        line: f.line,
                        message: format!(
                            "`{}` is marked `audit: geometry-rewrite` but never calls {}",
                            f.name,
                            group.join(" | "),
                        ),
                    });
                }
            }
        } else if !f.is_test && !PROTECTED_CALLEES.contains(&f.name.as_str()) {
            for callee in PROTECTED_CALLEES {
                if body_calls(&fm.tokens, &f.body, callee) {
                    out.push(Finding {
                        rule: "GG001",
                        path: fm.path.clone(),
                        line: f.line,
                        message: format!(
                            "`{}` calls `{callee}` without an `audit: geometry-rewrite` marker",
                            f.name,
                        ),
                    });
                }
            }
        }
    }
}

/// GG006: snapshot publication only from marked sites, and no dead markers.
fn rule_snapshot_publish(fm: &FileModel, out: &mut Vec<Finding>) {
    for f in &fm.fns {
        if f.markers.iter().any(|m| m.starts_with("snapshot-publish"))
            && !SNAPSHOT_PRIMITIVES
                .iter()
                .any(|callee| body_calls(&fm.tokens, &f.body, callee))
        {
            out.push(Finding {
                rule: "GG006",
                path: fm.path.clone(),
                line: f.line,
                message: format!(
                    "`{}` is marked `audit: snapshot-publish` but never calls {}",
                    f.name,
                    SNAPSHOT_PRIMITIVES.join(" | "),
                ),
            });
        }
        let marked = f
            .markers
            .iter()
            .any(|m| m.starts_with("geometry-rewrite") || m.starts_with("snapshot-publish"));
        if marked || f.is_test || SNAPSHOT_PRIMITIVES.contains(&f.name.as_str()) {
            continue;
        }
        for callee in SNAPSHOT_PRIMITIVES {
            if body_calls(&fm.tokens, &f.body, callee) {
                out.push(Finding {
                    rule: "GG006",
                    path: fm.path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` calls `{callee}` without an `audit: geometry-rewrite` \
                         or `audit: snapshot-publish` marker",
                        f.name,
                    ),
                });
            }
        }
    }
}

/// GG007: store hand-off only from marked sites, and no dead markers.
fn rule_store_handoff(fm: &FileModel, out: &mut Vec<Finding>) {
    for f in &fm.fns {
        let marked = f.markers.iter().any(|m| m.starts_with("store-handoff"));
        if marked {
            if !HANDOFF_PRIMITIVES
                .iter()
                .any(|callee| body_calls(&fm.tokens, &f.body, callee))
            {
                out.push(Finding {
                    rule: "GG007",
                    path: fm.path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` is marked `audit: store-handoff` but never calls {}",
                        f.name,
                        HANDOFF_PRIMITIVES.join(" | "),
                    ),
                });
            }
            continue;
        }
        if f.is_test || HANDOFF_PRIMITIVES.contains(&f.name.as_str()) {
            continue;
        }
        for callee in HANDOFF_PRIMITIVES {
            if body_calls(&fm.tokens, &f.body, callee) {
                out.push(Finding {
                    rule: "GG007",
                    path: fm.path.clone(),
                    line: f.line,
                    message: format!(
                        "`{}` calls `{callee}` without an `audit: store-handoff` marker",
                        f.name,
                    ),
                });
            }
        }
    }
}

/// GG002: allocation ban inside `#[hot_path]` functions.
fn rule_hot_path(fm: &FileModel, out: &mut Vec<Finding>) {
    for f in &fm.fns {
        if !f.attrs.iter().any(|a| is_hot_path_attr(a)) {
            continue;
        }
        let toks = &fm.tokens;
        for k in f.body.clone() {
            let t = &toks[k].tok;
            let line = toks[k].line;
            let mut flag = |what: String| {
                out.push(Finding {
                    rule: "GG002",
                    path: fm.path.clone(),
                    line,
                    message: format!("`{}` is #[hot_path] but contains {what}", f.name),
                });
            };
            if let Tok::Ident(name) = t {
                if HOT_BANNED_MACROS.contains(&name.as_str())
                    && toks.get(k + 1).is_some_and(|n| n.tok.is("!"))
                {
                    flag(format!("`{name}!` (allocates)"));
                }
                if HOT_BANNED_TYPES.contains(&name.as_str())
                    && toks.get(k + 1).is_some_and(|n| n.tok.is("::"))
                    && toks.get(k + 2).is_some_and(|n| {
                        n.tok.is("new") || n.tok.is("from") || n.tok.is("with_capacity")
                    })
                {
                    let m = match &toks[k + 2].tok {
                        Tok::Ident(m) => m.clone(),
                        _ => String::new(),
                    };
                    flag(format!("`{name}::{m}` (allocates)"));
                }
                if HOT_BANNED_METHODS.contains(&name.as_str())
                    && k > 0
                    && toks[k - 1].tok.is(".")
                    && toks.get(k + 1).is_some_and(|n| n.tok.is("("))
                {
                    flag(format!("`.{name}()` (allocates or copies)"));
                }
            }
        }
    }
}

/// GG003: `.unwrap()` / undocumented `.expect()` in non-test core code.
fn rule_core_unwrap(fm: &FileModel, out: &mut Vec<Finding>) {
    let toks = &fm.tokens;
    for k in 0..toks.len() {
        if fm.in_test(k) {
            continue;
        }
        if !(k > 0 && toks[k - 1].tok.is(".") && toks.get(k + 1).is_some_and(|t| t.tok.is("("))) {
            continue;
        }
        if toks[k].tok.is("unwrap") {
            out.push(Finding {
                rule: "GG003",
                path: fm.path.clone(),
                line: toks[k].line,
                message: "`.unwrap()` in non-test geogrid-core code".to_string(),
            });
        } else if toks[k].tok.is("expect") {
            let documented = matches!(
                toks.get(k + 2).map(|t| &t.tok),
                Some(Tok::Str(s)) if s.starts_with("invariant:")
            );
            if !documented {
                out.push(Finding {
                    rule: "GG003",
                    path: fm.path.clone(),
                    line: toks[k].line,
                    message: "`.expect(...)` without an `\"invariant: ...\"` message in \
                              non-test geogrid-core code"
                        .to_string(),
                });
            }
        }
    }
}

/// GG004: `#![forbid(unsafe_code)]` in crate roots.
fn rule_forbid_unsafe(fm: &FileModel, out: &mut Vec<Finding>) {
    let ok = fm
        .inner_attrs
        .iter()
        .any(|a| a.contains("forbid") && a.contains("unsafe_code"));
    if !ok {
        out.push(Finding {
            rule: "GG004",
            path: fm.path.clone(),
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// GG005: geometry-epoch field writes outside `bump_epoch`.
fn rule_epoch_write(fm: &FileModel, out: &mut Vec<Finding>) {
    let toks = &fm.tokens;
    for k in 1..toks.len() {
        if fm.in_test(k) {
            continue;
        }
        if !toks[k].tok.is("epoch") || !toks[k - 1].tok.is(".") {
            continue;
        }
        let assigns = toks
            .get(k + 1)
            .is_some_and(|t| t.tok.is("=") || t.tok.is("+=") || t.tok.is("-="));
        if !assigns {
            continue;
        }
        let inside_bump = fm.enclosing_fn(k).is_some_and(|f| f.name == "bump_epoch");
        if !inside_bump {
            out.push(Finding {
                rule: "GG005",
                path: fm.path.clone(),
                line: toks[k].line,
                message: "geometry epoch written outside `bump_epoch`".to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Directories never scanned: third-party shims, build output, VCS.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "results"];

/// Collects every first-party `.rs` file under `root` (workspace-relative
/// paths), skipping [`SKIP_DIRS`].
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = std::fs::read_to_string(&path)?;
                out.push((rel, text));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every first-party source file under the workspace root: the
/// per-file lexical rules plus the workspace call-graph rules
/// (GG008–GG011). Back-compat wrapper over [`analyze_workspace`] for
/// callers that only want the findings.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(analyze_workspace(root)?.findings)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded-violation self-tests: every rule must catch the mistake it
// exists for, and must stay quiet on the compliant version.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    const CORE_PATH: &str = "crates/core/src/topology.rs";

    #[test]
    fn gg001_catches_missing_epoch_bump() {
        let src = r#"
            // audit: geometry-rewrite
            pub fn split_region(&mut self) {
                self.rewrite_geometry(rid, &old, new);
            }
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG001"]);
        assert!(f[0].message.contains("bump_epoch"), "{}", f[0].message);
    }

    #[test]
    fn gg001_catches_missing_grid_rewrite() {
        let src = r#"
            // audit: geometry-rewrite
            pub fn merge_regions(&mut self) {
                self.bump_epoch();
            }
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG001"]);
        assert!(f[0].message.contains("rewrite_geometry"));
    }

    #[test]
    fn gg001_catches_unmarked_mutator_call() {
        let src = r#"
            pub fn sneaky(&mut self) {
                self.free_slot(rid);
            }
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG001"]);
        assert!(f[0].message.contains("without"));
    }

    #[test]
    fn gg001_accepts_compliant_rewrite_site() {
        let src = r#"
            // audit: geometry-rewrite
            pub fn split_region(&mut self) {
                self.bump_epoch();
                self.rewrite_geometry(rid, &old, new);
                self.alloc_slot(entry);
            }
        "#;
        assert!(lint_source(CORE_PATH, src).is_empty());
    }

    #[test]
    fn gg001_respects_custom_requires_clause() {
        let src = r#"
            // audit: geometry-rewrite requires = bump_epoch, special_update
            pub fn custom(&mut self) {
                self.bump_epoch();
            }
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG001"]);
        assert!(f[0].message.contains("special_update"));
    }

    #[test]
    fn gg001_ignores_definitions_and_tests() {
        let src = r#"
            fn bump_epoch(&mut self) { self.epoch += 1; }
            fn rewrite_geometry(&mut self) {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn probes_mutators() { t.free_slot(rid); }
            }
        "#;
        assert!(lint_source(CORE_PATH, src).is_empty());
    }

    #[test]
    fn gg006_catches_unmarked_publication() {
        let src = r#"
            pub fn helpful_shortcut(&mut self) {
                self.publish_snapshot();
            }
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG006"]);
        assert!(
            f[0].message.contains("publish_snapshot"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn gg006_catches_unmarked_cell_install() {
        let src = r#"
            pub fn sideload(&mut self, cell: &SnapshotCell) {
                cell.install_snapshot(self.snapshot());
            }
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG006"]);
        assert!(f[0].message.contains("install_snapshot"));
    }

    #[test]
    fn gg006_accepts_marked_sites_primitives_and_tests() {
        let src = r#"
            // audit: snapshot-publish
            fn publish_snapshot(&mut self) {
                if let Some(cell) = &self.publish {
                    cell.install_snapshot(self.snapshot());
                }
            }
            // audit: geometry-rewrite requires = bump_epoch, publish_snapshot
            pub fn split_region(&mut self) {
                self.bump_epoch();
                self.publish_snapshot();
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn seeds_a_stale_snapshot() {
                    cell.install_snapshot(old);
                }
            }
        "#;
        assert!(lint_source(CORE_PATH, src).is_empty());
    }

    #[test]
    fn gg006_catches_dead_snapshot_marker() {
        // The marker engages GG006's site allowance but the body never
        // publishes: a stale marker that would silently bless a future
        // publication added to this function.
        let src = r#"
            // audit: snapshot-publish
            pub fn rebalance(&mut self) {
                self.weights.recompute();
            }
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG006"]);
        assert!(f[0].message.contains("never calls"), "{}", f[0].message);
    }

    #[test]
    fn gg000_catches_unknown_marker_family() {
        let src = r#"
            // audit: hotpath-exempt(typo'd family)
            fn promote(&mut self) {}
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG000"]);
        assert!(f[0].message.contains("unknown marker family"));
    }

    #[test]
    fn gg000_catches_stray_marker() {
        // No function follows this marker, so no rule will ever consume
        // it — the exemption (or site allowance) it promises is dead.
        let src = r#"
            fn promote(&mut self) {}
            // audit: hot-path-exempt(dangling: attached to a const, not a fn)
            const SLAB_SLOTS: usize = 64;
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG000"]);
        assert!(f[0].message.contains("stray"), "{}", f[0].message);
    }

    #[test]
    fn gg000_requires_reason_on_hot_path_exempt() {
        let bare = r#"
            // audit: hot-path-exempt
            fn grow(&mut self) {}
        "#;
        let f = lint_source(CORE_PATH, bare);
        assert_eq!(rules_of(&f), vec!["GG000"]);
        assert!(f[0].message.contains("without a"), "{}", f[0].message);

        let empty = r#"
            // audit: hot-path-exempt(  )
            fn grow(&mut self) {}
        "#;
        assert_eq!(rules_of(&lint_source(CORE_PATH, empty)), vec!["GG000"]);

        let reasoned = r#"
            // audit: hot-path-exempt(one-time lazy growth, capped)
            fn grow(&mut self) {}
        "#;
        assert!(lint_source(CORE_PATH, reasoned).is_empty());
    }

    #[test]
    fn gg007_catches_unmarked_handoff() {
        let src = r#"
            pub fn quick_rebalance(&mut self) {
                let half = self.store.split_for(&kept, &given);
                self.sibling.absorb(half);
            }
        "#;
        let f = lint_source("crates/core/src/engine/node.rs", src);
        assert_eq!(rules_of(&f), vec!["GG007"; 2]);
        assert!(f[0].message.contains("split_for"), "{}", f[0].message);
        assert!(f[1].message.contains("absorb"));
    }

    #[test]
    fn gg007_catches_dead_marker() {
        let src = r#"
            // audit: store-handoff
            pub fn on_merge_regions(&mut self) {
                self.region = merged;
            }
        "#;
        let f = lint_source("crates/core/src/engine/node.rs", src);
        assert_eq!(rules_of(&f), vec!["GG007"]);
        assert!(f[0].message.contains("never calls"));
    }

    #[test]
    fn gg007_accepts_marked_sites_primitives_and_tests() {
        let src = r#"
            // audit: store-handoff
            pub fn on_merge_regions(&mut self) {
                self.store.absorb(other);
            }
            pub fn split_for(&mut self, own: &Region, other: &Region) -> RegionStore {
                self.partition(own, other)
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn hands_off_freely() {
                    let b = a.split_for(&low, &high);
                    a.absorb(b);
                }
            }
        "#;
        assert!(lint_source("crates/core/src/service/store.rs", src).is_empty());
        // Integration-test trees hand stores around without markers.
        let probe = r#"
            fn run_ops(stores: &mut Vec<RegionStore>) {
                let s = stores[0].split_for(&own, &other);
                stores[0].absorb(s);
            }
        "#;
        assert!(lint_source("crates/core/tests/store_model.rs", probe).is_empty());
    }

    #[test]
    fn gg002_catches_hot_path_allocations() {
        let src = r#"
            #[hot_path]
            fn probe(&self) -> Vec<u32> {
                let a = Vec::new();
                let b = self.hops.clone();
                let c: Vec<u32> = it.collect();
                let d = vec![0u8; 4];
                b.to_vec()
            }
        "#;
        let f = lint_source("crates/core/src/routing.rs", src);
        assert_eq!(rules_of(&f), vec!["GG002"; 5]);
    }

    #[test]
    fn gg002_ignores_unmarked_and_cold_helpers() {
        let src = r#"
            fn cold(&self) -> Vec<u32> { self.hops.clone() }
            #[hot_path]
            fn hot(&self, scratch: &mut RouteScratch) -> u32 {
                scratch.grow(self.len());
                self.stamps[slot]
            }
        "#;
        assert!(lint_source("crates/core/src/routing.rs", src).is_empty());
    }

    #[test]
    fn gg003_catches_core_unwrap() {
        let src = r#"
            pub fn locate(&self, p: Point) -> RegionId {
                self.region(rid).unwrap()
            }
        "#;
        let f = lint_source("crates/core/src/join.rs", src);
        assert_eq!(rules_of(&f), vec!["GG003"]);
    }

    #[test]
    fn gg003_requires_invariant_documented_expect() {
        let bad = r#"fn f() { x.expect("candidate"); }"#;
        let good = r#"fn f() { x.expect("invariant: candidates are live regions"); }"#;
        assert_eq!(rules_of(&lint_source(CORE_PATH, bad)), vec!["GG003"]);
        assert!(lint_source(CORE_PATH, good).is_empty());
    }

    #[test]
    fn gg003_skips_tests_comments_strings_and_other_crates() {
        let in_test = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); }
            }
            #[test]
            fn standalone() { y.unwrap(); }
        "#;
        assert!(lint_source(CORE_PATH, in_test).is_empty());
        let disguised = r#"
            /// Call `.unwrap()` at your peril.
            fn f() { let s = ".unwrap()"; } // .unwrap()
        "#;
        assert!(lint_source(CORE_PATH, disguised).is_empty());
        let other_crate = r#"fn f() { x.unwrap(); }"#;
        assert!(lint_source("crates/geometry/src/region.rs", other_crate).is_empty());
    }

    #[test]
    fn gg003_ignores_unwrap_or_family() {
        let src = r#"fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }"#;
        assert!(lint_source(CORE_PATH, src).is_empty());
    }

    #[test]
    fn gg004_catches_missing_forbid() {
        let src = "pub fn f() {}";
        let f = lint_source("crates/core/src/lib.rs", src);
        assert_eq!(rules_of(&f), vec!["GG004"]);
        // Non-root files are exempt.
        assert!(lint_source("crates/core/src/join.rs", src).is_empty());
    }

    #[test]
    fn gg004_accepts_forbid() {
        let src = "#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(lint_source("src/lib.rs", src).is_empty());
    }

    #[test]
    fn gg005_catches_epoch_write_outside_bump() {
        let src = r#"
            fn merge(&mut self) { self.epoch += 1; }
        "#;
        let f = lint_source(CORE_PATH, src);
        assert_eq!(rules_of(&f), vec!["GG005"]);
    }

    #[test]
    fn gg005_accepts_bump_epoch_and_reads() {
        let src = r#"
            fn bump_epoch(&mut self) { self.epoch += 1; }
            fn epoch(&self) -> u64 { self.epoch }
            fn key(&self, t: &Topology) -> (u64, u64) {
                (t.instance_id(), t.epoch())
            }
        "#;
        assert!(lint_source(CORE_PATH, src).is_empty());
    }

    #[test]
    fn lexer_handles_raw_strings_lifetimes_and_chars() {
        let src = r##"
            fn f<'a>(x: &'a str) -> char {
                let s = r#"has ".unwrap()" inside"#;
                let b = b"bytes";
                let c = '\n';
                let d = 'x';
                'outer: loop { break 'outer; }
                c
            }
        "##;
        assert!(lint_source(CORE_PATH, src).is_empty());
    }

    #[test]
    fn rule_table_is_consistent() {
        for r in RULES {
            assert!(r.id.starts_with("GG"));
            assert!(!r.summary.is_empty());
            assert!(!r.hint.is_empty());
            assert_eq!(hint(r.id), r.hint);
        }
    }
}
