//! `geogrid-audit` binary: lints the workspace's own sources and exits
//! non-zero when any project rule is violated. Wired up as the
//! `cargo lint-all` alias (see `.cargo/config.toml`) and run by the CI
//! `lint` job alongside clippy.
//!
//! Exit codes are a stable contract for CI and scripting:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | scan completed, no findings               |
//! | 1    | scan completed, one or more findings      |
//! | 2    | scanner error (bad flags, unreadable root)|

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use geogrid_audit::{analyze_workspace, find_workspace_root, hint, Analysis, RULES};

const USAGE: &str = "\
geogrid-audit: offline static-analysis pass over the GeoGrid workspace

USAGE:
    cargo lint-all [-- OPTIONS]

OPTIONS:
    --root <dir>    lint the workspace rooted at <dir> instead of
                    discovering it from the current directory
    --list-rules    print the rule catalog (ids, summaries, fix-it hints)
    --json          machine-readable report on stdout (exit codes keep
                    their meaning: 0 clean, 1 findings, 2 scanner error)
    --verbose       also print call sites the graph resolver could not
                    link, plus resolution statistics
    -q, --quiet     print findings only, no summary line
    -h, --help      this text
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut json = false;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{}  {}\n       fix: {}", r.id, r.summary, r.hint);
                }
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--verbose" => verbose = true,
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&analysis));
    } else {
        render_text(&analysis, quiet, verbose);
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn render_text(analysis: &Analysis, quiet: bool, verbose: bool) {
    for f in &analysis.findings {
        println!(
            "{} {}:{}\n  {}\n  fix: {}\n",
            f.rule,
            f.path,
            f.line,
            f.message,
            hint(f.rule)
        );
    }
    if verbose {
        println!(
            "call graph: {} function(s), {} resolved edge(s), {} external edge(s), \
             {} unresolved call(s)",
            analysis.functions,
            analysis.edges_resolved,
            analysis.edges_external,
            analysis.unresolved.len()
        );
        for u in &analysis.unresolved {
            println!(
                "  unresolved {}:{} {} -> {}",
                u.path, u.line, u.caller, u.callee
            );
        }
    }
    if analysis.findings.is_empty() {
        if !quiet {
            println!("geogrid-audit: clean ({} rules, 0 findings)", RULES.len());
        }
    } else if !quiet {
        println!("geogrid-audit: {} finding(s)", analysis.findings.len());
    }
}

/// Renders the whole report as a single JSON object. Hand-rolled (the
/// workspace is offline, no serde): only strings need care, and
/// [`json_string`] covers the full escape set.
fn render_json(analysis: &Analysis) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"version\": {},\n",
        json_string(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str(&format!("  \"rules\": {},\n", RULES.len()));
    out.push_str("  \"graph\": {");
    out.push_str(&format!(
        "\"functions\": {}, \"edges_resolved\": {}, \"edges_external\": {}, \
         \"unresolved\": {}",
        analysis.functions,
        analysis.edges_resolved,
        analysis.edges_external,
        analysis.unresolved.len()
    ));
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"finding_count\": {},\n",
        analysis.findings.len()
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"hint\": {}",
            json_string(f.rule),
            json_string(&f.path),
            f.line,
            json_string(&f.message),
            json_string(hint(f.rule))
        ));
        out.push('}');
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
