//! `geogrid-audit` binary: lints the workspace's own sources and exits
//! non-zero when any project rule is violated. Wired up as the
//! `cargo lint-all` alias (see `.cargo/config.toml`) and run by the CI
//! `lint` job alongside clippy.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use geogrid_audit::{find_workspace_root, hint, lint_workspace, RULES};

const USAGE: &str = "\
geogrid-audit: offline static-analysis pass over the GeoGrid workspace

USAGE:
    cargo lint-all [-- OPTIONS]

OPTIONS:
    --root <dir>    lint the workspace rooted at <dir> instead of
                    discovering it from the current directory
    --list-rules    print the rule catalog (ids, summaries, fix-it hints)
    -q, --quiet     print findings only, no summary line
    -h, --help      this text
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{}  {}\n       fix: {}", r.id, r.summary, r.hint);
                }
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "error: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    for f in &findings {
        println!(
            "{} {}:{}\n  {}\n  fix: {}\n",
            f.rule,
            f.path,
            f.line,
            f.message,
            hint(f.rule)
        );
    }
    if findings.is_empty() {
        if !quiet {
            println!("geogrid-audit: clean ({} rules, 0 findings)", RULES.len());
        }
        ExitCode::SUCCESS
    } else {
        if !quiet {
            println!("geogrid-audit: {} finding(s)", findings.len());
        }
        ExitCode::FAILURE
    }
}
