//! Approximate workspace call graph and the reachability rules
//! GG008–GG011.
//!
//! The per-file rules in the crate root check token patterns inside one
//! function body. The rules here need to see *through* helper calls: a
//! `#[hot_path]` function that delegates its allocation to a helper is
//! exactly as slow as one that allocates inline. This module links every
//! function definition and call site in the workspace into a call graph
//! and walks it.
//!
//! # Call resolution (approximate, by design)
//!
//! There is no type information — resolution is a name-based best effort,
//! in tiers:
//!
//! 1. **Same module**: a plain `helper()` call resolves to a function of
//!    that name in the same file, if there is exactly one.
//! 2. **`use`-imported**: `wire::get_message()` and imported plain names
//!    resolve through the file's parsed `use` tree (including nested
//!    groups and `as` renames), then by locating the target crate
//!    (`crate::` / `geogrid_*::`) and module file by stem.
//! 3. **Unique name**: a name defined exactly once in the workspace
//!    resolves to that definition even without an import (methods called
//!    on non-`self` receivers rely on this tier).
//!
//! Anything still ambiguous lands in an explicit **unresolved bucket**
//! ([`Analysis::unresolved`], printed under `--verbose`) rather than
//! being silently dropped — an auditor should know what it could not see.
//! Calls into external crates (`std`, the vendored shims, …) are counted
//! but not traversed.
//!
//! # Known false-negative classes
//!
//! * **Trait dispatch**: a call through `dyn Trait` or a generic bound
//!   resolves to nothing (no type info). Derived / trait-provided methods
//!   (`T::default()`, `.cmp()`) are treated as external.
//! * **Common std method names**: `.get()`, `.insert()`, `.len()`, … are
//!   assumed to be std container methods when not called on `self`; a
//!   first-party method sharing such a name is not traversed.
//! * **Function pointers / closures passed as values** are not edges.
//! * **Cross-crate trust boundary (GG009)**: the decode walk stays inside
//!   `crates/transport`; a panic inside a core type constructor invoked
//!   by decode is out of scope (core input is already validated).
//! * **`std::sync::RwLock`** is not in the GG011 blocking set (the core
//!   topology handle is deliberately RwLock-based and transport never
//!   holds it across `.await`).
//!
//! These are documented in DESIGN.md §7 next to the invariant each rule
//! enforces.

use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::Range;
use std::path::Path;

use crate::{
    collect_sources, is_hot_path_attr, lex, lint_source, match_brace, match_paren, model,
    FileModel, Finding, Tok, Token, HOT_BANNED_MACROS, HOT_BANNED_METHODS, HOT_BANNED_TYPES,
};

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// A call site the resolver could not link to a definition or dismiss as
/// external. Reported under `--verbose` so the approximation is auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnresolvedCall {
    /// Workspace-relative path of the call site.
    pub path: String,
    /// 1-based line of the call.
    pub line: u32,
    /// Name of the calling function.
    pub caller: String,
    /// Rendered callee (`helper`, `.method()`, `a::b::f`).
    pub callee: String,
}

/// Result of a whole-workspace analysis: findings from every rule plus
/// call-graph statistics.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings (per-file lexical rules, then graph rules), in
    /// deterministic order.
    pub findings: Vec<Finding>,
    /// Call sites the resolver could not link (see module docs).
    pub unresolved: Vec<UnresolvedCall>,
    /// Number of function definitions in the graph.
    pub functions: usize,
    /// Number of call edges resolved to a first-party definition.
    pub edges_resolved: usize,
    /// Number of call edges dismissed as external (std / vendored shims).
    pub edges_external: usize,
}

/// Runs the full analysis (per-file rules + call-graph rules) over
/// in-memory sources. `files` holds `(workspace-relative path, text)`
/// pairs, as produced by [`collect_sources`].
pub fn analyze_files(files: &[(String, String)]) -> Analysis {
    let mut findings = Vec::new();
    let mut models = Vec::new();
    for (path, text) in files {
        findings.extend(lint_source(path, text));
        let lexed = lex(text);
        models.push(model(path, &lexed));
    }
    let graph = Graph::build(&models);
    let mut graph_findings = Vec::new();
    graph.rule_hot_transitive(&mut graph_findings);
    graph.rule_decode_panic_free(&mut graph_findings);
    rule_message_exhaustive(&models, &mut graph_findings);
    graph.rule_async_blocking(&mut graph_findings);
    graph_findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    findings.extend(graph_findings);
    Analysis {
        findings,
        unresolved: graph.unresolved,
        functions: graph.nodes.len(),
        edges_resolved: graph.edges.iter().map(Vec::len).sum(),
        edges_external: graph.edges_external,
    }
}

/// Reads every first-party source under `root` and runs [`analyze_files`].
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    Ok(analyze_files(&collect_sources(root)?))
}

// ---------------------------------------------------------------------------
// Graph model
// ---------------------------------------------------------------------------

/// Crates whose paths are never first-party: calls rooted there are
/// external by definition.
const EXTERNAL_ROOTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "tokio",
    "parking_lot",
    "bytes",
    "rand",
    "proptest",
    "criterion",
];

/// Method names assumed to be std-container/iterator/number methods when
/// not called on `self`. Suppressing resolution here trades a documented
/// false-negative class for a graph with no bogus edges.
const STD_METHOD_NAMES: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "clear",
    "drain",
    "extend",
    "append",
    "retain",
    "truncate",
    "resize",
    "reserve",
    "next",
    "peek",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "filter",
    "filter_map",
    "flat_map",
    "find",
    "position",
    "any",
    "all",
    "fold",
    "sum",
    "product",
    "count",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "rev",
    "take",
    "skip",
    "step_by",
    "chain",
    "zip",
    "enumerate",
    "last",
    "nth",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "binary_search",
    "binary_search_by",
    "split",
    "split_at",
    "split_off",
    "join",
    "concat",
    "starts_with",
    "ends_with",
    "trim",
    "parse",
    "chars",
    "bytes",
    "as_str",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "borrow",
    "borrow_mut",
    "into",
    "try_into",
    "to_le_bytes",
    "to_be_bytes",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "abs",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "powi",
    "powf",
    "cmp",
    "partial_cmp",
    "eq",
    "hash",
    "fmt",
];

/// Keywords that look like `name (` in token streams but are not calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "return", "for", "loop", "in", "as", "move", "else", "let", "fn",
    "where", "impl", "use", "mod", "ref", "mut", "dyn", "type", "unsafe", "async", "await", "self",
    "super", "crate",
];

#[derive(Debug, Clone)]
enum CallKind {
    /// `helper(...)`.
    Plain(String),
    /// `recv.name(...)`; `on_self` when the receiver is literally `self`.
    Method { name: String, on_self: bool },
    /// `a::b::name(...)` — `path` excludes the final `name`.
    Qualified { path: Vec<String>, name: String },
}

#[derive(Debug, Clone)]
struct Call {
    kind: CallKind,
    line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FactKind {
    Alloc,
    Panic,
    Index,
    Arith,
    Blocking,
}

#[derive(Debug, Clone)]
struct Fact {
    kind: FactKind,
    line: u32,
    what: String,
}

#[derive(Debug)]
struct FileData {
    path: String,
    stem: String,
    crate_key: String,
    imports: HashMap<String, Vec<String>>,
}

#[derive(Debug)]
struct FnNode {
    file: usize,
    name: String,
    line: u32,
    is_test: bool,
    is_async: bool,
    hot: bool,
    exempt: bool,
    impl_type: Option<String>,
    calls: Vec<Call>,
    facts: Vec<Fact>,
}

struct Graph {
    files: Vec<FileData>,
    nodes: Vec<FnNode>,
    /// Resolved adjacency (node -> callees), sorted + deduped.
    edges: Vec<Vec<usize>>,
    unresolved: Vec<UnresolvedCall>,
    edges_external: usize,
}

enum Resolution {
    Node(usize),
    External,
    Unresolved,
}

/// The crate a workspace-relative path belongs to (`crates/<key>/…`), or
/// `"root"` for the workspace package itself.
fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(key) = parts.next() {
            return key.to_string();
        }
    }
    "root".to_string()
}

/// Module stem used for path-based resolution: the file stem, or the
/// parent directory name for `mod.rs`.
fn module_stem(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    let file = parts.last().copied().unwrap_or_default();
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    if stem == "mod" && parts.len() >= 2 {
        parts[parts.len() - 2].to_string()
    } else {
        stem.to_string()
    }
}

fn starts_uppercase(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

// ---------------------------------------------------------------------------
// Per-file extraction
// ---------------------------------------------------------------------------

/// Parses every `use` declaration in the token stream into a map from
/// locally visible name to full path segments. Handles nested groups,
/// `as` renames, and `self` group members; globs are ignored.
fn parse_imports(toks: &[Token]) -> HashMap<String, Vec<String>> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok.is("use") {
            i = parse_use_tree(toks, i + 1, &[], &mut map);
        } else {
            i += 1;
        }
    }
    map
}

/// Parses one use-tree starting at `i` with `prefix` already consumed;
/// returns the index of the token after the tree (past `;`, or at the
/// `,` / `}` that ends it inside a group).
fn parse_use_tree(
    toks: &[Token],
    mut i: usize,
    prefix: &[String],
    map: &mut HashMap<String, Vec<String>>,
) -> usize {
    let mut segs: Vec<String> = prefix.to_vec();
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) if s == "self" => {
                // `use a::b::{self, ...}`: binds the parent segment.
                if let Some(last) = segs.last().cloned() {
                    map.insert(last, segs.clone());
                }
                i += 1;
            }
            Some(Tok::Ident(s)) => {
                segs.push(s.clone());
                i += 1;
                match toks.get(i).map(|t| &t.tok) {
                    Some(t) if t.is("::") => {
                        i += 1;
                        continue;
                    }
                    Some(Tok::Ident(kw)) if kw == "as" => {
                        if let Some(Tok::Ident(alias)) = toks.get(i + 1).map(|t| &t.tok) {
                            map.insert(alias.clone(), segs.clone());
                        }
                    }
                    _ => {
                        map.insert(s.clone(), segs.clone());
                    }
                }
            }
            Some(t) if t.is("{") => {
                i += 1;
                loop {
                    match toks.get(i).map(|t| &t.tok) {
                        Some(t) if t.is("}") => {
                            i += 1;
                            break;
                        }
                        Some(t) if t.is(",") => i += 1,
                        None => break,
                        _ => i = parse_use_tree(toks, i, &segs, map),
                    }
                }
            }
            _ => {}
        }
        // Consume to the end of this tree.
        loop {
            match toks.get(i).map(|t| &t.tok) {
                Some(t) if t.is(";") => return i + 1,
                Some(t) if t.is(",") || t.is("}") => return i,
                None => return i,
                _ => i += 1,
            }
        }
    }
}

/// `(body-range, type-name)` for every inherent/trait impl block. The
/// type name is the last depth-0 identifier before the opening brace,
/// skipping generic parameters, `for`, `dyn`, and the `where` clause.
fn impl_ranges(toks: &[Token]) -> Vec<(Range<usize>, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].tok.is("impl") {
            i += 1;
            continue;
        }
        // `impl` in type position (`-> impl Future`, `(impl Buf, ...)`)
        // is not an item.
        if i > 0 {
            let prev = &toks[i - 1].tok;
            let type_pos = ["->", "(", ",", ":", "=", "&", "<", "+", "|"]
                .iter()
                .any(|s| prev.is(s));
            if type_pos {
                i += 1;
                continue;
            }
        }
        let mut angle = 0i32;
        let mut j = i + 1;
        let mut last_ident: Option<String> = None;
        let mut after_where = false;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j].tok;
            if t.is("<") {
                angle += 1;
            } else if t.is("<<") {
                angle += 2;
            } else if t.is(">") {
                angle -= 1;
            } else if t.is(">>") {
                angle -= 2;
            } else if angle <= 0 {
                if t.is("{") {
                    open = Some(j);
                    break;
                }
                if t.is(";") {
                    break;
                }
                if t.is("where") {
                    after_where = true;
                }
                if !after_where {
                    if let Tok::Ident(s) = t {
                        if s != "for" && s != "dyn" && s != "where" {
                            last_ident = Some(s.clone());
                        }
                    }
                }
            }
            j += 1;
        }
        if let (Some(open), Some(name)) = (open, last_ident) {
            if let Some(close) = match_brace(toks, open) {
                out.push((open + 1..close, name));
                i = open + 1;
                continue;
            }
        }
        i = j + 1;
    }
    out
}

/// Token ranges inside `spawn_blocking(...)` arguments: code there runs
/// on the blocking pool, so it is detached from the caller for both call
/// edges and facts.
fn detached_ranges(toks: &[Token], body: &Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for k in body.clone() {
        if toks[k].tok.is("spawn_blocking") && toks.get(k + 1).is_some_and(|t| t.tok.is("(")) {
            if let Some(close) = match_paren(toks, k + 1) {
                out.push(k + 2..close);
            }
        }
    }
    out
}

/// Walks back over `ident ::` pairs ending at the call name token `k`,
/// returning the qualifying path segments in source order.
fn qualifier_path(toks: &[Token], k: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut j = k;
    while j >= 2 && toks[j - 1].tok.is("::") {
        if let Tok::Ident(s) = &toks[j - 2].tok {
            segs.push(s.clone());
            j -= 2;
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}

/// Expands the leading path segment through the file's imports.
fn expand_path(imports: &HashMap<String, Vec<String>>, path: &[String]) -> Vec<String> {
    if let Some(first) = path.first() {
        if let Some(exp) = imports.get(first) {
            let mut full = exp.clone();
            full.extend(path[1..].iter().cloned());
            return full;
        }
    }
    path.to_vec()
}

/// Whether an expanded qualified call is a known blocking std call;
/// returns a description if so.
fn blocking_call(full: &[String], name: &str) -> Option<String> {
    if full.first().map(String::as_str) != Some("std") {
        return None;
    }
    match full.get(1).map(String::as_str) {
        Some("thread") if name == "sleep" => {
            Some("`std::thread::sleep` (blocks the executor thread)".to_string())
        }
        Some("fs") => Some(format!("`std::fs::{name}` (blocking file IO)")),
        Some("net") => {
            let ty = full.get(2).map(String::as_str)?;
            if ["TcpStream", "TcpListener", "UdpSocket"].contains(&ty) {
                Some(format!("`std::net::{ty}::{name}` (blocking socket IO)"))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Extracts call sites and danger facts from one function body.
fn extract(
    toks: &[Token],
    body: &Range<usize>,
    imports: &HashMap<String, Vec<String>>,
    transport: bool,
) -> (Vec<Call>, Vec<Fact>) {
    let detached = detached_ranges(toks, body);
    let is_detached = |k: usize| detached.iter().any(|r| r.contains(&k));
    let std_mutex = imports.get("Mutex").is_some_and(|p| {
        p.first().map(String::as_str) == Some("std") && p.get(1).map(String::as_str) == Some("sync")
    });
    let mut calls = Vec::new();
    let mut facts = Vec::new();
    for k in body.clone() {
        if is_detached(k) {
            continue;
        }
        let line = toks[k].line;
        match &toks[k].tok {
            Tok::Ident(name) => {
                let next_open = toks.get(k + 1).is_some_and(|t| t.tok.is("("));
                let next_bang = toks.get(k + 1).is_some_and(|t| t.tok.is("!"));
                let prev_dot = k > 0 && toks[k - 1].tok.is(".");
                let prev_path = k > 0 && toks[k - 1].tok.is("::");

                // Macro facts.
                if next_bang {
                    if HOT_BANNED_MACROS.contains(&name.as_str()) {
                        facts.push(Fact {
                            kind: FactKind::Alloc,
                            line,
                            what: format!("`{name}!` (allocates)"),
                        });
                    }
                    if ["panic", "todo", "unimplemented"].contains(&name.as_str()) {
                        facts.push(Fact {
                            kind: FactKind::Panic,
                            line,
                            what: format!("`{name}!`"),
                        });
                    }
                    continue;
                }

                // `Type::new` style allocation facts.
                if HOT_BANNED_TYPES.contains(&name.as_str())
                    && toks.get(k + 1).is_some_and(|t| t.tok.is("::"))
                    && toks.get(k + 2).is_some_and(|t| {
                        t.tok.is("new") || t.tok.is("from") || t.tok.is("with_capacity")
                    })
                {
                    if let Some(Tok::Ident(m)) = toks.get(k + 2).map(|t| &t.tok) {
                        facts.push(Fact {
                            kind: FactKind::Alloc,
                            line,
                            what: format!("`{name}::{m}` (allocates)"),
                        });
                    }
                }

                if prev_dot {
                    // Method facts (allow `.collect::<T>()` turbofish).
                    let callish = next_open || toks.get(k + 1).is_some_and(|t| t.tok.is("::"));
                    if callish && HOT_BANNED_METHODS.contains(&name.as_str()) {
                        facts.push(Fact {
                            kind: FactKind::Alloc,
                            line,
                            what: format!("`.{name}()` (allocates or copies)"),
                        });
                    }
                    if next_open && name == "unwrap" {
                        facts.push(Fact {
                            kind: FactKind::Panic,
                            line,
                            what: "`.unwrap()` (may panic)".to_string(),
                        });
                    }
                    if next_open && name == "expect" {
                        let documented = matches!(
                            toks.get(k + 2).map(|t| &t.tok),
                            Some(Tok::Str(s)) if s.starts_with("invariant:")
                        );
                        if !documented {
                            facts.push(Fact {
                                kind: FactKind::Panic,
                                line,
                                what: "`.expect(...)` without an `\"invariant: ...\"` message"
                                    .to_string(),
                            });
                        }
                    }
                    if next_open && name == "lock" && std_mutex {
                        facts.push(Fact {
                            kind: FactKind::Blocking,
                            line,
                            what: "`.lock()` on std::sync::Mutex (blocking lock)".to_string(),
                        });
                    }
                    if next_open {
                        let on_self = k >= 2 && toks[k - 2].tok.is("self");
                        calls.push(Call {
                            kind: CallKind::Method {
                                name: name.clone(),
                                on_self,
                            },
                            line,
                        });
                    }
                    continue;
                }

                if !next_open {
                    continue;
                }
                if prev_path {
                    let path = qualifier_path(toks, k);
                    if path.is_empty() {
                        continue;
                    }
                    if starts_uppercase(name) {
                        continue; // enum variant / tuple-struct constructor
                    }
                    let full = expand_path(imports, &path);
                    if let Some(what) = blocking_call(&full, name) {
                        facts.push(Fact {
                            kind: FactKind::Blocking,
                            line,
                            what,
                        });
                    }
                    calls.push(Call {
                        kind: CallKind::Qualified {
                            path,
                            name: name.clone(),
                        },
                        line,
                    });
                    continue;
                }
                // Plain call.
                if k > 0 && toks[k - 1].tok.is("fn") {
                    continue; // definition, not a call
                }
                if CALL_KEYWORDS.contains(&name.as_str()) || starts_uppercase(name) {
                    continue;
                }
                // Imported plain names can still be blocking
                // (`use std::thread::sleep; sleep(..)`).
                if let Some(exp) = imports.get(name.as_str()) {
                    if exp.len() >= 2 {
                        if let Some(what) = blocking_call(&exp[..exp.len() - 1], name) {
                            facts.push(Fact {
                                kind: FactKind::Blocking,
                                line,
                                what,
                            });
                        }
                    }
                }
                calls.push(Call {
                    kind: CallKind::Plain(name.clone()),
                    line,
                });
            }
            Tok::Op(op) if transport => {
                // Panic/overflow surface facts, transport only (the wire
                // decode rule is the sole consumer).
                if op == "[" {
                    let indexy = k > 0
                        && match &toks[k - 1].tok {
                            Tok::Ident(s) => !CALL_KEYWORDS.contains(&s.as_str()),
                            Tok::Op(o) => o == ")" || o == "]",
                            _ => false,
                        };
                    if indexy {
                        facts.push(Fact {
                            kind: FactKind::Index,
                            line,
                            what: "`[...]` indexing (may panic out-of-bounds)".to_string(),
                        });
                    }
                } else if op == "+" || op == "-" || op == "*" {
                    let operandish = |t: &Tok| match t {
                        Tok::Ident(s) => !CALL_KEYWORDS.contains(&s.as_str()),
                        Tok::Lit => true,
                        Tok::Op(o) => o == ")" || o == "]",
                        _ => false,
                    };
                    let prev_ok = k > 0 && operandish(&toks[k - 1].tok);
                    let next_ok = toks.get(k + 1).is_some_and(|t| match &t.tok {
                        Tok::Ident(s) => !CALL_KEYWORDS.contains(&s.as_str()),
                        Tok::Lit => true,
                        Tok::Op(o) => o == "(",
                        _ => false,
                    });
                    if prev_ok && next_ok {
                        facts.push(Fact {
                            kind: FactKind::Arith,
                            line,
                            what: format!("unchecked `{op}` arithmetic (may overflow)"),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    (calls, facts)
}

// ---------------------------------------------------------------------------
// Graph construction and resolution
// ---------------------------------------------------------------------------

impl Graph {
    fn build(models: &[FileModel]) -> Graph {
        let mut files = Vec::new();
        let mut nodes = Vec::new();
        for (fi, fm) in models.iter().enumerate() {
            let transport = fm.path.starts_with("crates/transport/");
            let imports = parse_imports(&fm.tokens);
            let impls = impl_ranges(&fm.tokens);
            for f in &fm.fns {
                let impl_type = impls
                    .iter()
                    .filter(|(r, _)| r.contains(&f.body.start))
                    .min_by_key(|(r, _)| r.end - r.start)
                    .map(|(_, name)| name.clone());
                let (calls, facts) = extract(&fm.tokens, &f.body, &imports, transport);
                nodes.push(FnNode {
                    file: fi,
                    name: f.name.clone(),
                    line: f.line,
                    is_test: f.is_test || crate::is_test_path(&fm.path),
                    is_async: f.is_async,
                    hot: f.attrs.iter().any(|a| is_hot_path_attr(a)),
                    exempt: f.markers.iter().any(|m| m.starts_with("hot-path-exempt")),
                    impl_type,
                    calls,
                    facts,
                });
            }
            files.push(FileData {
                path: fm.path.clone(),
                stem: module_stem(&fm.path),
                crate_key: crate_key(&fm.path),
                imports,
            });
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut unresolved = Vec::new();
        let mut edges_external = 0usize;
        {
            // Inner scope: the name indexes borrow `nodes` and must be
            // gone before `nodes` moves into the returned graph.
            let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
            let mut by_type_method: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
            let mut by_file_name: HashMap<(usize, &str), Vec<usize>> = HashMap::new();
            for (id, n) in nodes.iter().enumerate() {
                by_name.entry(&n.name).or_default().push(id);
                if let Some(ty) = &n.impl_type {
                    by_type_method
                        .entry((ty.as_str(), &n.name))
                        .or_default()
                        .push(id);
                }
                by_file_name.entry((n.file, &n.name)).or_default().push(id);
            }
            for u in 0..nodes.len() {
                for call in &nodes[u].calls {
                    let res = resolve(
                        &files,
                        &nodes,
                        &by_name,
                        &by_type_method,
                        &by_file_name,
                        u,
                        &call.kind,
                    );
                    match res {
                        Resolution::Node(v) => edges[u].push(v),
                        Resolution::External => edges_external += 1,
                        Resolution::Unresolved => unresolved.push(UnresolvedCall {
                            path: files[nodes[u].file].path.clone(),
                            line: call.line,
                            caller: nodes[u].name.clone(),
                            callee: render_call(&call.kind),
                        }),
                    }
                }
                edges[u].sort_unstable();
                edges[u].dedup();
            }
        }
        unresolved.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.callee.as_str()).cmp(&(
                b.path.as_str(),
                b.line,
                b.callee.as_str(),
            ))
        });
        unresolved.dedup();
        Graph {
            files,
            nodes,
            edges,
            unresolved,
            edges_external,
        }
    }
}

fn render_call(kind: &CallKind) -> String {
    match kind {
        CallKind::Plain(name) => name.clone(),
        CallKind::Method { name, .. } => format!(".{name}()"),
        CallKind::Qualified { path, name } => format!("{}::{name}", path.join("::")),
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    files: &[FileData],
    nodes: &[FnNode],
    by_name: &HashMap<&str, Vec<usize>>,
    by_type_method: &HashMap<(&str, &str), Vec<usize>>,
    by_file_name: &HashMap<(usize, &str), Vec<usize>>,
    u: usize,
    kind: &CallKind,
) -> Resolution {
    let file = nodes[u].file;
    let unique = |cands: &[usize]| {
        if cands.len() == 1 {
            Some(cands[0])
        } else {
            None
        }
    };
    match kind {
        CallKind::Method { name, on_self } => {
            if !on_self && STD_METHOD_NAMES.contains(&name.as_str()) {
                return Resolution::External;
            }
            if *on_self {
                if let Some(ty) = &nodes[u].impl_type {
                    if let Some(c) = by_type_method.get(&(ty.as_str(), name.as_str())) {
                        if let Some(v) = unique(c) {
                            return Resolution::Node(v);
                        }
                        let same: Vec<usize> = c
                            .iter()
                            .copied()
                            .filter(|&v| nodes[v].file == file)
                            .collect();
                        if let Some(v) = unique(&same) {
                            return Resolution::Node(v);
                        }
                        return Resolution::Unresolved;
                    }
                }
                if STD_METHOD_NAMES.contains(&name.as_str()) {
                    return Resolution::External;
                }
            }
            match by_name.get(name.as_str()) {
                None => Resolution::External,
                Some(c) => {
                    let same: Vec<usize> = c
                        .iter()
                        .copied()
                        .filter(|&v| nodes[v].file == file)
                        .collect();
                    if let Some(v) = unique(&same) {
                        return Resolution::Node(v);
                    }
                    if let Some(v) = unique(c) {
                        return Resolution::Node(v);
                    }
                    Resolution::Unresolved
                }
            }
        }
        CallKind::Qualified { path, name } => {
            let last = path.last().expect("qualified path is non-empty");
            if last == "Self" {
                if let Some(ty) = &nodes[u].impl_type {
                    if let Some(c) = by_type_method.get(&(ty.as_str(), name.as_str())) {
                        if let Some(v) = unique(c) {
                            return Resolution::Node(v);
                        }
                        return Resolution::Unresolved;
                    }
                }
                return Resolution::External; // derived / trait-provided
            }
            if starts_uppercase(last) {
                // `Type::assoc_fn(..)`.
                match by_type_method.get(&(last.as_str(), name.as_str())) {
                    None => Resolution::External, // derived / trait-provided
                    Some(c) => {
                        if let Some(v) = unique(c) {
                            return Resolution::Node(v);
                        }
                        let same_crate: Vec<usize> = c
                            .iter()
                            .copied()
                            .filter(|&v| files[nodes[v].file].crate_key == files[file].crate_key)
                            .collect();
                        if let Some(v) = unique(&same_crate) {
                            return Resolution::Node(v);
                        }
                        Resolution::Unresolved
                    }
                }
            } else {
                resolve_module_path(files, nodes, by_name, by_file_name, u, path, name)
            }
        }
        CallKind::Plain(name) => {
            if let Some(c) = by_file_name.get(&(file, name.as_str())) {
                if let Some(v) = unique(c) {
                    return Resolution::Node(v);
                }
                let same_impl: Vec<usize> = c
                    .iter()
                    .copied()
                    .filter(|&v| nodes[v].impl_type == nodes[u].impl_type)
                    .collect();
                if let Some(v) = unique(&same_impl) {
                    return Resolution::Node(v);
                }
                return Resolution::Unresolved;
            }
            if let Some(full) = files[file].imports.get(name.as_str()) {
                if full.len() >= 2 {
                    let (path, leaf) = full.split_at(full.len() - 1);
                    let path = path.to_vec();
                    return resolve_module_path(
                        files,
                        nodes,
                        by_name,
                        by_file_name,
                        u,
                        &path,
                        &leaf[0],
                    );
                }
            }
            match by_name.get(name.as_str()) {
                None => Resolution::External,
                Some(c) => match unique(c) {
                    Some(v) => Resolution::Node(v),
                    None => Resolution::Unresolved,
                },
            }
        }
    }
}

/// Resolves a lowercase module path (`wire::get_message`,
/// `crate::bootstrap::load_host_cache`, `geogrid_core::engine::…`).
fn resolve_module_path(
    files: &[FileData],
    nodes: &[FnNode],
    by_name: &HashMap<&str, Vec<usize>>,
    by_file_name: &HashMap<(usize, &str), Vec<usize>>,
    u: usize,
    path: &[String],
    name: &str,
) -> Resolution {
    let file = nodes[u].file;
    let full = expand_path(&files[file].imports, path);
    let root = full[0].as_str();
    if EXTERNAL_ROOTS.contains(&root) {
        return Resolution::External;
    }
    let (target_crate, mods): (String, &[String]) = if root == "crate" {
        (files[file].crate_key.clone(), &full[1..])
    } else if let Some(key) = root.strip_prefix("geogrid_") {
        (key.to_string(), &full[1..])
    } else if root == "self" {
        match by_file_name.get(&(file, name)) {
            Some(c) if c.len() == 1 => return Resolution::Node(c[0]),
            Some(_) => return Resolution::Unresolved,
            None => return Resolution::Unresolved,
        }
    } else if root == "super" {
        return Resolution::Unresolved;
    } else {
        // Bare sibling-module path in the same crate.
        (files[file].crate_key.clone(), &full[..])
    };
    // Locate the module file by stem within the target crate.
    if let Some(stem) = mods.last() {
        let mut cands = Vec::new();
        for (fi, fd) in files.iter().enumerate() {
            if fd.crate_key == target_crate && fd.stem == *stem {
                if let Some(c) = by_file_name.get(&(fi, name)) {
                    cands.extend(c.iter().copied());
                }
            }
        }
        if cands.len() == 1 {
            return Resolution::Node(cands[0]);
        }
        if cands.len() > 1 {
            return Resolution::Unresolved;
        }
    }
    // Crate-wide unique fallback.
    let in_crate: Vec<usize> = by_name
        .get(name)
        .map(|c| {
            c.iter()
                .copied()
                .filter(|&v| files[nodes[v].file].crate_key == target_crate)
                .collect()
        })
        .unwrap_or_default();
    match in_crate.as_slice() {
        [v] => Resolution::Node(*v),
        [] => Resolution::Unresolved,
        _ => Resolution::Unresolved,
    }
}

// ---------------------------------------------------------------------------
// Reachability rules
// ---------------------------------------------------------------------------

impl Graph {
    /// BFS from `entry` over resolved edges. Returns visit order and
    /// parent pointers. Exempt nodes are recorded in `touched_exempt`
    /// but neither expanded nor returned when `respect_exempt` is set.
    fn bfs(
        &self,
        entry: usize,
        restrict: impl Fn(usize) -> bool,
        respect_exempt: bool,
        touched_exempt: &mut HashSet<usize>,
    ) -> (Vec<usize>, HashMap<usize, usize>) {
        let mut order = Vec::new();
        let mut parent = HashMap::new();
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(entry);
        queue.push_back(entry);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in &self.edges[v] {
                if !restrict(w) || seen.contains(&w) {
                    continue;
                }
                if respect_exempt && self.nodes[w].exempt {
                    touched_exempt.insert(w);
                    continue;
                }
                seen.insert(w);
                parent.insert(w, v);
                queue.push_back(w);
            }
        }
        (order, parent)
    }

    /// Renders `entry -> ... -> v` using the parent map.
    fn chain(&self, parent: &HashMap<usize, usize>, entry: usize, v: usize) -> String {
        let mut names = vec![self.nodes[v].name.clone()];
        let mut cur = v;
        while cur != entry {
            cur = parent[&cur];
            names.push(self.nodes[cur].name.clone());
        }
        names.reverse();
        names.join(" -> ")
    }

    /// Entry ids for a predicate, in deterministic (path, line) order.
    fn entries(&self, pred: impl Fn(&FnNode) -> bool) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].is_test && pred(&self.nodes[i]))
            .collect();
        ids.sort_by(|&a, &b| {
            (
                self.files[self.nodes[a].file].path.as_str(),
                self.nodes[a].line,
            )
                .cmp(&(
                    self.files[self.nodes[b].file].path.as_str(),
                    self.nodes[b].line,
                ))
        });
        ids
    }

    fn push_fact_finding(
        &self,
        out: &mut Vec<Finding>,
        seen: &mut HashSet<(usize, u32, String)>,
        rule: &'static str,
        entry_label: &str,
        entry: usize,
        v: usize,
        parent: &HashMap<usize, usize>,
        fact: &Fact,
    ) {
        if !seen.insert((v, fact.line, fact.what.clone())) {
            return;
        }
        let node = &self.nodes[v];
        let message = if v == entry {
            format!("{} in {entry_label} `{}`", fact.what, node.name)
        } else {
            format!(
                "{} reachable from {entry_label} `{}` via {}",
                fact.what,
                self.nodes[entry].name,
                self.chain(parent, entry, v),
            )
        };
        out.push(Finding {
            rule,
            path: self.files[node.file].path.clone(),
            line: fact.line,
            message,
        });
    }

    /// GG008: transitive `#[hot_path]` purity.
    fn rule_hot_transitive(&self, out: &mut Vec<Finding>) {
        let mut touched_exempt = HashSet::new();
        let mut seen = HashSet::new();
        for entry in self.entries(|n| n.hot && !n.exempt) {
            let (order, parent) = self.bfs(entry, |_| true, true, &mut touched_exempt);
            for v in order {
                for fact in &self.nodes[v].facts {
                    let relevant = match fact.kind {
                        // Direct allocation in a hot fn is GG002's
                        // finding; the graph adds only what lexical
                        // scanning cannot see.
                        FactKind::Alloc => !self.nodes[v].hot,
                        FactKind::Panic | FactKind::Blocking => true,
                        FactKind::Index | FactKind::Arith => false,
                    };
                    if relevant {
                        self.push_fact_finding(
                            out,
                            &mut seen,
                            "GG008",
                            "#[hot_path]",
                            entry,
                            v,
                            &parent,
                            fact,
                        );
                    }
                }
            }
        }
        // Exempt markers that no hot walk ever reached are dead: the
        // exemption excuses nothing and likely outlived a refactor.
        for (i, n) in self.nodes.iter().enumerate() {
            if n.exempt && !n.hot && !touched_exempt.contains(&i) {
                out.push(Finding {
                    rule: "GG008",
                    path: self.files[n.file].path.clone(),
                    line: n.line,
                    message: format!(
                        "`{}` has a dead `audit: hot-path-exempt` marker — no #[hot_path] \
                         call chain reaches it",
                        n.name,
                    ),
                });
            }
        }
    }

    /// GG009: panic-freedom of the wire decode surface.
    fn rule_decode_panic_free(&self, out: &mut Vec<Finding>) {
        let decode_file = |path: &str| {
            path.starts_with("crates/transport/")
                && (path.ends_with("wire.rs") || path.ends_with("frame.rs"))
        };
        let mut seen = HashSet::new();
        let mut unused = HashSet::new();
        for entry in self.entries(|n| {
            decode_file(&self.files[n.file].path)
                && (n.name.starts_with("decode") || n.name == "read_frame")
        }) {
            let (order, parent) = self.bfs(
                entry,
                |w| {
                    self.files[self.nodes[w].file]
                        .path
                        .starts_with("crates/transport/")
                },
                false,
                &mut unused,
            );
            for v in order {
                for fact in &self.nodes[v].facts {
                    if matches!(
                        fact.kind,
                        FactKind::Panic | FactKind::Index | FactKind::Arith
                    ) {
                        self.push_fact_finding(
                            out,
                            &mut seen,
                            "GG009",
                            "wire-decode entry",
                            entry,
                            v,
                            &parent,
                            fact,
                        );
                    }
                }
            }
        }
    }

    /// GG011: no blocking call reachable from transport async fns.
    fn rule_async_blocking(&self, out: &mut Vec<Finding>) {
        let mut seen = HashSet::new();
        let mut unused = HashSet::new();
        for entry in self.entries(|n| n.is_async && self.files[n.file].crate_key == "transport") {
            let (order, parent) = self.bfs(entry, |_| true, false, &mut unused);
            for v in order {
                for fact in &self.nodes[v].facts {
                    if fact.kind == FactKind::Blocking {
                        self.push_fact_finding(
                            out, &mut seen, "GG011", "async fn", entry, v, &parent, fact,
                        );
                    }
                }
            }
        }
    }
}

/// GG010: every `Message` variant appears at the encode, decode, and
/// engine-handler sites. Skipped silently when the enum file is absent
/// (fixture trees).
fn rule_message_exhaustive(models: &[FileModel], out: &mut Vec<Finding>) {
    const ENUM_FILE: &str = "crates/core/src/engine/messages.rs";
    const SITES: &[(&str, &str)] = &[
        ("crates/transport/src/wire.rs", "put_message"),
        ("crates/transport/src/wire.rs", "get_message"),
        ("crates/core/src/engine/node.rs", "handle_message"),
    ];
    let Some(enum_fm) = models.iter().find(|m| m.path == ENUM_FILE) else {
        return;
    };
    let Some((enum_line, variants)) = message_variants(&enum_fm.tokens) else {
        return;
    };
    for (site_path, site_fn) in SITES {
        let site = models
            .iter()
            .find(|m| m.path == *site_path)
            .and_then(|m| m.fns.iter().find(|f| f.name == *site_fn).map(|f| (m, f)));
        let Some((fm, f)) = site else {
            out.push(Finding {
                rule: "GG010",
                path: ENUM_FILE.to_string(),
                line: enum_line,
                message: format!(
                    "`Message` dispatch site `{site_fn}` not found in {site_path} — \
                     exhaustiveness cannot be checked",
                ),
            });
            continue;
        };
        for variant in &variants {
            let mentioned = f.body.clone().any(|k| {
                fm.tokens[k].tok.is("Message")
                    && fm.tokens.get(k + 1).is_some_and(|t| t.tok.is("::"))
                    && fm.tokens.get(k + 2).is_some_and(|t| t.tok.is(variant))
            });
            if !mentioned {
                out.push(Finding {
                    rule: "GG010",
                    path: fm.path.clone(),
                    line: f.line,
                    message: format!(
                        "`Message::{variant}` never appears in `{site_fn}` — the variant \
                         is silently undeliverable at this site",
                    ),
                });
            }
        }
    }
}

/// Parses the variants of `enum Message { ... }`; returns the enum's line
/// and variant names.
fn message_variants(toks: &[Token]) -> Option<(u32, Vec<String>)> {
    let start = (0..toks.len()).find(|&k| {
        toks[k].tok.is("enum") && toks.get(k + 1).is_some_and(|t| t.tok.is("Message"))
    })?;
    let open = crate::find_from(toks, start, "{")?;
    let close = match_brace(toks, open)?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expecting = true;
    for t in &toks[open + 1..close] {
        match &t.tok {
            t if t.is("{") || t.is("(") || t.is("[") => depth += 1,
            t if t.is("}") || t.is(")") || t.is("]") => depth -= 1,
            t if t.is(",") && depth == 0 => expecting = true,
            t if t.is("#") => {}
            Tok::Ident(name) if depth == 0 && expecting => {
                variants.push(name.clone());
                expecting = false;
            }
            _ => {}
        }
    }
    Some((toks[start].line, variants))
}

// ---------------------------------------------------------------------------
// Seeded-violation self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> Analysis {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_files(&owned)
    }

    fn rule_findings<'a>(a: &'a Analysis, rule: &str) -> Vec<&'a Finding> {
        a.findings.iter().filter(|f| f.rule == rule).collect()
    }

    // ---- resolution over a fixture module tree ----

    #[test]
    fn resolves_same_module_imported_and_unique_names() {
        let a = analyze(&[
            (
                "crates/core/src/alpha.rs",
                r#"
                use crate::beta::shared_helper;
                pub fn caller() {
                    local();
                    shared_helper();
                    crate::beta::other_helper();
                }
                fn local() {}
                "#,
            ),
            (
                "crates/core/src/beta.rs",
                r#"
                pub fn shared_helper() {}
                pub fn other_helper() { unique_everywhere(); }
                "#,
            ),
            (
                "crates/transport/src/gamma.rs",
                r#"
                pub fn unique_everywhere() {}
                pub fn cross() { geogrid_core::alpha::local(); }
                "#,
            ),
        ]);
        assert_eq!(a.functions, 6);
        // caller->local, caller->shared_helper, caller->other_helper,
        // other_helper->unique_everywhere, cross->local.
        assert_eq!(a.edges_resolved, 5, "unresolved: {:?}", a.unresolved);
        assert!(a.unresolved.is_empty(), "{:?}", a.unresolved);
    }

    #[test]
    fn ambiguous_plain_call_lands_in_unresolved_bucket() {
        let a = analyze(&[
            ("crates/core/src/a.rs", "pub fn twin() {}"),
            ("crates/core/src/b.rs", "pub fn twin() {}"),
            ("crates/core/src/c.rs", "pub fn caller() { twin(); }"),
        ]);
        assert_eq!(a.edges_resolved, 0);
        assert_eq!(a.unresolved.len(), 1);
        assert_eq!(a.unresolved[0].caller, "caller");
        assert_eq!(a.unresolved[0].callee, "twin");
    }

    #[test]
    fn std_and_vendored_calls_are_external_not_noise() {
        let a = analyze(&[(
            "crates/core/src/a.rs",
            r#"
            use std::collections::HashMap;
            pub fn f(m: &mut HashMap<u32, u32>) {
                m.insert(1, 2);
                std::mem::drop(m.get(&1));
            }
            "#,
        )]);
        assert!(a.unresolved.is_empty(), "{:?}", a.unresolved);
        assert_eq!(a.edges_resolved, 0);
        assert!(a.edges_external >= 2);
    }

    // ---- GG008 ----

    #[test]
    fn gg008_catches_alloc_reachable_through_helpers() {
        let a = analyze(&[(
            "crates/core/src/routing.rs",
            r#"
            #[hot_path]
            pub fn hot_entry(&self) { self.mid(); }
            fn mid(&self) { deep(); }
            fn deep() { let v = vec![1, 2]; }
            "#,
        )]);
        let f = rule_findings(&a, "GG008");
        assert_eq!(f.len(), 1, "{:?}", a.findings);
        assert!(
            f[0].message.contains("hot_entry -> mid -> deep"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("vec!"), "{}", f[0].message);
    }

    #[test]
    fn gg008_catches_panic_in_hot_fn_itself() {
        let a = analyze(&[(
            "crates/core/src/routing.rs",
            r#"
            #[hot_path]
            pub fn hot_entry(x: Option<u32>) -> u32 { x.unwrap() }
            "#,
        )]);
        let f = rule_findings(&a, "GG008");
        assert_eq!(f.len(), 1, "{:?}", a.findings);
        assert!(f[0].message.contains("unwrap"), "{}", f[0].message);
    }

    #[test]
    fn gg008_exempt_marker_silences_and_dead_marker_reports() {
        let clean = analyze(&[(
            "crates/core/src/routing.rs",
            r#"
            #[hot_path]
            pub fn hot_entry() { cold_fallback(); }
            // audit: hot-path-exempt(rebuild only runs on topology change)
            fn cold_fallback() { let v = vec![1]; }
            "#,
        )]);
        assert!(
            rule_findings(&clean, "GG008").is_empty(),
            "{:?}",
            clean.findings
        );

        let dead = analyze(&[(
            "crates/core/src/routing.rs",
            r#"
            // audit: hot-path-exempt(nothing hot calls this)
            fn orphan() { let v = vec![1]; }
            "#,
        )]);
        let f = rule_findings(&dead, "GG008");
        assert_eq!(f.len(), 1, "{:?}", dead.findings);
        assert!(f[0].message.contains("dead"), "{}", f[0].message);
    }

    #[test]
    fn gg008_quiet_on_clean_chain() {
        let a = analyze(&[(
            "crates/core/src/routing.rs",
            r#"
            #[hot_path]
            pub fn hot_entry(&self) -> u32 { self.mid(7) }
            fn mid(&self, x: u32) -> u32 { x ^ 0xABCD }
            "#,
        )]);
        assert!(rule_findings(&a, "GG008").is_empty(), "{:?}", a.findings);
    }

    // ---- GG009 ----

    #[test]
    fn gg009_catches_indexing_reachable_from_decode() {
        let a = analyze(&[(
            "crates/transport/src/wire.rs",
            r#"
            pub fn decode_header(buf: &[u8]) -> u8 { first(buf) }
            fn first(buf: &[u8]) -> u8 { buf[0] }
            "#,
        )]);
        let f = rule_findings(&a, "GG009");
        assert_eq!(f.len(), 1, "{:?}", a.findings);
        assert!(f[0].message.contains("indexing"), "{}", f[0].message);
        assert!(
            f[0].message.contains("decode_header -> first"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn gg009_catches_unwrap_and_unchecked_arith() {
        let a = analyze(&[(
            "crates/transport/src/frame.rs",
            r#"
            pub fn read_frame(len: usize, max: usize) -> usize {
                let padded = len + 8;
                check(padded).unwrap()
            }
            fn check(n: usize) -> Option<usize> { Some(n) }
            "#,
        )]);
        let f = rule_findings(&a, "GG009");
        assert_eq!(f.len(), 2, "{:?}", a.findings);
        assert!(f.iter().any(|f| f.message.contains("arithmetic")));
        assert!(f.iter().any(|f| f.message.contains("unwrap")));
    }

    #[test]
    fn gg009_quiet_on_checked_decode_and_ignores_encode_side() {
        let a = analyze(&[(
            "crates/transport/src/wire.rs",
            r#"
            pub fn decode_len(buf: &[u8]) -> Option<usize> {
                let n = *buf.first()?;
                (n as usize).checked_add(4)
            }
            pub fn put_len(buf: &mut Vec<u8>, n: usize) { buf.push((n + 1) as u8); }
            "#,
        )]);
        assert!(rule_findings(&a, "GG009").is_empty(), "{:?}", a.findings);
    }

    // ---- GG010 ----

    const FIXTURE_ENUM: &str = r#"
        pub enum Message {
            Ping { nonce: u64 },
            Pong,
        }
    "#;

    #[test]
    fn gg010_catches_variant_missing_from_a_site() {
        let a = analyze(&[
            ("crates/core/src/engine/messages.rs", FIXTURE_ENUM),
            (
                "crates/transport/src/wire.rs",
                r#"
                fn put_message(m: &Message) {
                    match m { Message::Ping { .. } => {}, Message::Pong => {} }
                }
                fn get_message(tag: u8) -> Message {
                    if tag == 0 { Message::Ping { nonce: 0 } } else { Message::Pong }
                }
                "#,
            ),
            (
                "crates/core/src/engine/node.rs",
                r#"
                fn handle_message(m: Message) {
                    match m { Message::Ping { .. } => {}, _ => {} }
                }
                "#,
            ),
        ]);
        let f = rule_findings(&a, "GG010");
        assert_eq!(f.len(), 1, "{:?}", a.findings);
        assert!(f[0].message.contains("Message::Pong"), "{}", f[0].message);
        assert!(f[0].message.contains("handle_message"), "{}", f[0].message);
    }

    #[test]
    fn gg010_catches_missing_site_and_quiet_when_complete() {
        let missing = analyze(&[("crates/core/src/engine/messages.rs", FIXTURE_ENUM)]);
        let f = rule_findings(&missing, "GG010");
        assert_eq!(f.len(), 3, "{:?}", missing.findings);
        assert!(f[0].message.contains("not found"), "{}", f[0].message);

        let complete = analyze(&[
            ("crates/core/src/engine/messages.rs", FIXTURE_ENUM),
            (
                "crates/transport/src/wire.rs",
                r#"
                fn put_message(m: &Message) {
                    match m { Message::Ping { .. } => {}, Message::Pong => {} }
                }
                fn get_message(tag: u8) -> Message {
                    if tag == 0 { Message::Ping { nonce: 0 } } else { Message::Pong }
                }
                "#,
            ),
            (
                "crates/core/src/engine/node.rs",
                r#"
                fn handle_message(m: Message) {
                    match m { Message::Ping { .. } => {}, Message::Pong => {} }
                }
                "#,
            ),
        ]);
        assert!(
            rule_findings(&complete, "GG010").is_empty(),
            "{:?}",
            complete.findings
        );
    }

    #[test]
    fn gg010_skips_silently_without_enum_file() {
        let a = analyze(&[("crates/core/src/lib.rs", "#![forbid(unsafe_code)]")]);
        assert!(rule_findings(&a, "GG010").is_empty());
    }

    // ---- GG011 ----

    #[test]
    fn gg011_catches_blocking_io_reachable_from_async_fn() {
        let a = analyze(&[(
            "crates/transport/src/runtime.rs",
            r#"
            pub async fn pump() { persist(); }
            fn persist() {
                let _ = std::fs::write("cache", b"x");
            }
            "#,
        )]);
        let f = rule_findings(&a, "GG011");
        assert_eq!(f.len(), 1, "{:?}", a.findings);
        assert!(f[0].message.contains("std::fs::write"), "{}", f[0].message);
        assert!(f[0].message.contains("pump -> persist"), "{}", f[0].message);
    }

    #[test]
    fn gg011_catches_sleep_and_std_mutex_lock() {
        let a = analyze(&[(
            "crates/transport/src/runtime.rs",
            r#"
            use std::sync::Mutex;
            use std::thread;
            pub async fn tick(m: &Mutex<u32>) {
                thread::sleep(core::time::Duration::from_millis(1));
                let _ = m.lock();
            }
            "#,
        )]);
        let f = rule_findings(&a, "GG011");
        assert_eq!(f.len(), 2, "{:?}", a.findings);
        assert!(f.iter().any(|f| f.message.contains("thread::sleep")));
        assert!(f.iter().any(|f| f.message.contains("std::sync::Mutex")));
    }

    #[test]
    fn gg011_spawn_blocking_detaches_and_non_transport_async_ignored() {
        let a = analyze(&[(
            "crates/transport/src/runtime.rs",
            r#"
            pub async fn pump() {
                tokio::task::spawn_blocking(|| {
                    let _ = std::fs::write("cache", b"x");
                });
            }
            "#,
        )]);
        assert!(rule_findings(&a, "GG011").is_empty(), "{:?}", a.findings);

        let core_async = analyze(&[(
            "crates/core/src/util.rs",
            "pub async fn f() { let _ = std::fs::read_to_string(\"x\"); }",
        )]);
        assert!(rule_findings(&core_async, "GG011").is_empty());
    }

    #[test]
    fn gg011_parking_lot_lock_is_not_blocking() {
        let a = analyze(&[(
            "crates/transport/src/runtime.rs",
            r#"
            use parking_lot::Mutex;
            pub async fn tick(m: &Mutex<u32>) { let _ = m.lock(); }
            "#,
        )]);
        assert!(rule_findings(&a, "GG011").is_empty(), "{:?}", a.findings);
    }

    // ---- plumbing ----

    #[test]
    fn import_parser_handles_groups_renames_and_self() {
        let lexed = lex(r#"
            use std::collections::{HashMap, HashSet as Set};
            use crate::wire::{self, get_message};
            use geogrid_core::engine::node;
        "#);
        let map = parse_imports(&lexed.tokens);
        assert_eq!(map["HashMap"], vec!["std", "collections", "HashMap"]);
        assert_eq!(map["Set"], vec!["std", "collections", "HashSet"]);
        assert_eq!(map["wire"], vec!["crate", "wire"]);
        assert_eq!(map["get_message"], vec!["crate", "wire", "get_message"]);
        assert_eq!(map["node"], vec!["geogrid_core", "engine", "node"]);
    }

    #[test]
    fn impl_scanner_finds_type_names_not_return_position_impls() {
        let lexed = lex(r#"
            impl<T: Clone> Wrapper<T> {
                fn method(&self) {}
            }
            impl std::fmt::Display for Thing {
                fn fmt(&self) -> impl Iterator<Item = u8> { body() }
            }
        "#);
        let impls = impl_ranges(&lexed.tokens);
        let names: Vec<&str> = impls.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["Wrapper", "Thing"]);
    }

    #[test]
    fn message_variant_parser_reads_struct_and_unit_variants() {
        let lexed = lex(r#"
            pub enum Message {
                #[doc = "x"]
                Alpha { a: Vec<(u8, u8)> },
                Beta(u32),
                Gamma,
            }
        "#);
        let (_, variants) = message_variants(&lexed.tokens).expect("enum found");
        assert_eq!(variants, vec!["Alpha", "Beta", "Gamma"]);
    }
}
