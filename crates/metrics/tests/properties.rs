//! Property-based tests for the measurement substrate.

use geogrid_metrics::{gini, max_mean_ratio, Histogram, RunningStats, Summary};
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6..1e6, 1..200)
}

proptest! {
    /// Welford accumulation matches the naive two-pass formulas.
    #[test]
    fn running_stats_match_naive(xs in arb_samples()) {
        let stats: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let scale = mean.abs().max(var.abs()).max(1.0);
        prop_assert!((stats.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((stats.population_variance() - var).abs() / scale.powi(2).max(1.0) < 1e-6);
        prop_assert_eq!(stats.count(), xs.len() as u64);
    }

    /// Merging any split of the samples equals accumulating them all.
    #[test]
    fn running_stats_merge_any_split(xs in arb_samples(), cut_seed in any::<usize>()) {
        let cut = cut_seed % (xs.len() + 1);
        let all: RunningStats = xs.iter().copied().collect();
        let mut left: RunningStats = xs[..cut].iter().copied().collect();
        let right: RunningStats = xs[cut..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        let scale = all.mean().abs().max(1.0);
        prop_assert!((left.mean() - all.mean()).abs() / scale < 1e-9);
        prop_assert!(
            (left.population_variance() - all.population_variance()).abs()
                / all.population_variance().max(1.0)
                < 1e-6
        );
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn summary_percentiles_monotone(xs in arb_samples(), a in 0.0..100.0, b in 0.0..100.0) {
        let s = Summary::from_values(xs);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(s.percentile(lo) <= s.percentile(hi) + 1e-12);
        prop_assert!(s.percentile(0.0) >= s.min() - 1e-12);
        prop_assert!(s.percentile(100.0) <= s.max() + 1e-12);
    }

    /// Histogram never loses a sample: bins + underflow + overflow equals
    /// the number of finite samples.
    #[test]
    fn histogram_conserves_samples(
        xs in proptest::collection::vec(-100.0..200.0, 0..300),
        bins in 1usize..50
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(
            h.count() + h.underflow() + h.overflow(),
            xs.len() as u64
        );
    }

    /// Gini is in [0, 1) and scale-invariant.
    #[test]
    fn gini_bounded_and_scale_invariant(
        xs in proptest::collection::vec(0.0..1e6, 2..100),
        k in 0.001..1e3
    ) {
        let g = gini(xs.iter().copied());
        prop_assert!((0.0..1.0).contains(&g), "gini {g}");
        let scaled = gini(xs.iter().map(|x| x * k));
        prop_assert!((g - scaled).abs() < 1e-9);
    }

    /// max/mean ratio is at least 1 for non-degenerate non-negative input.
    #[test]
    fn max_mean_ratio_at_least_one(xs in proptest::collection::vec(0.1..1e6, 1..100)) {
        prop_assert!(max_mean_ratio(xs.iter().copied()) >= 1.0 - 1e-12);
    }
}
