//! Workload-imbalance measures.
//!
//! The paper's headline claim is a reduction of workload *imbalance* by an
//! order of magnitude. Besides the std-dev the paper plots, the harness also
//! reports the Gini coefficient and the max/mean ratio, which are standard
//! imbalance measures and make the ablation tables easier to read.

/// Gini coefficient of a set of non-negative values, in `[0, 1)`.
///
/// 0 means perfectly even; values approaching 1 mean all load concentrates
/// on one node. Negative and non-finite inputs are ignored.
///
/// # Examples
///
/// ```
/// use geogrid_metrics::gini;
///
/// assert!(gini([1.0, 1.0, 1.0, 1.0]).abs() < 1e-12);
/// assert!(gini([0.0, 0.0, 0.0, 10.0]) > 0.7);
/// ```
pub fn gini<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut xs: Vec<f64> = values
        .into_iter()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .collect();
    if xs.len() < 2 {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    // G = (2 * sum_i i*x_i) / (n * sum_i x_i) - (n + 1) / n, with i starting at 1.
    let weighted: f64 = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// Ratio of the maximum value to the mean, a direct "how overloaded is the
/// hottest node" measure. Returns 0 for empty input and 1 for perfectly even
/// load.
///
/// # Examples
///
/// ```
/// use geogrid_metrics::max_mean_ratio;
///
/// assert_eq!(max_mean_ratio([2.0, 2.0]), 1.0);
/// assert_eq!(max_mean_ratio([0.0, 4.0]), 2.0);
/// ```
pub fn max_mean_ratio<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let xs: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_uniform_is_zero() {
        assert!(gini(std::iter::repeat_n(3.5, 50)).abs() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_is_high() {
        let mut xs = vec![0.0; 99];
        xs.push(100.0);
        let g = gini(xs);
        assert!(g > 0.95, "got {g}");
    }

    #[test]
    fn gini_handles_degenerate_inputs() {
        assert_eq!(gini([]), 0.0);
        assert_eq!(gini([5.0]), 0.0);
        assert_eq!(gini([0.0, 0.0]), 0.0);
        assert_eq!(gini([f64::NAN, 1.0]), 0.0); // single finite value left
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini([1.0, 2.0, 3.0, 4.0]);
        let b = gini([10.0, 20.0, 30.0, 40.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn max_mean_ratio_basics() {
        assert_eq!(max_mean_ratio([]), 0.0);
        assert_eq!(max_mean_ratio([1.0, 1.0, 1.0]), 1.0);
        assert!((max_mean_ratio([1.0, 1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
