//! Measurement substrate for the GeoGrid reproduction.
//!
//! The GeoGrid paper evaluates its load-balance machinery through summary
//! statistics of the per-node *workload index*: maximum, mean, and standard
//! deviation across all nodes (Figures 5–10). This crate provides those
//! statistics plus the supporting machinery the experiment harness needs:
//!
//! * [`Summary`] — one-pass max/mean/std-dev/percentile summaries,
//! * [`RunningStats`] — Welford online accumulation,
//! * [`Histogram`] — fixed-bin histograms used for the region-size and load
//!   distribution figures (Figures 2 and 3),
//! * [`gini`] / [`max_mean_ratio`] — imbalance measures,
//! * [`table`] — small CSV/console table writer shared by every experiment.
//!
//! # Examples
//!
//! ```
//! use geogrid_metrics::Summary;
//!
//! let s = Summary::from_values([1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.max(), 4.0);
//! assert!((s.mean() - 2.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod imbalance;
mod running;
mod summary;
pub mod table;

pub use histogram::Histogram;
pub use imbalance::{gini, max_mean_ratio};
pub use running::RunningStats;
pub use summary::Summary;
