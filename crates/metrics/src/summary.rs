//! Batch summaries of a sample set.

use std::fmt;

use crate::RunningStats;

/// Summary statistics over a complete sample set, including percentiles.
///
/// The paper reports max, mean, and standard deviation of the workload index
/// across all nodes; [`Summary`] computes those in one pass and keeps the
/// sorted samples around so percentiles can be queried as well.
///
/// # Examples
///
/// ```
/// use geogrid_metrics::Summary;
///
/// let s = Summary::from_values([4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.percentile(50.0), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: RunningStats,
}

impl Summary {
    /// Builds a summary from any collection of samples.
    ///
    /// Non-finite samples are dropped, mirroring [`RunningStats::push`].
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
        let stats = sorted.iter().copied().collect();
        Self { sorted, stats }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the summary holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation, or 0 when empty.
    pub fn std_dev(&self) -> f64 {
        self.stats.population_std_dev()
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Linearly interpolated percentile, `p` in `[0, 100]`.
    ///
    /// Returns 0 when the summary is empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or not finite.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(
            p.is_finite() && (0.0..=100.0).contains(&p),
            "percentile must lie in [0, 100], got {p}"
        );
        if self.sorted.is_empty() {
            return 0.0;
        }
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Read-only view of the sorted samples.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Underlying accumulator (for merging into trial-level aggregates).
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} std={:.6} max={:.6} p50={:.6} p99={:.6}",
            self.len(),
            self.mean(),
            self.std_dev(),
            self.max(),
            self.median(),
            self.percentile(99.0)
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::from_values([]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = Summary::from_values([10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 50.0);
        assert_eq!(s.percentile(50.0), 30.0);
        assert_eq!(s.percentile(25.0), 20.0);
        assert!((s.percentile(10.0) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn stats_match_known_values() {
        let s = Summary::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.min(), 2.0);
    }

    #[test]
    #[should_panic(expected = "percentile must lie in")]
    fn percentile_rejects_out_of_range() {
        Summary::from_values([1.0]).percentile(101.0);
    }

    #[test]
    fn drops_non_finite() {
        let s = Summary::from_values([1.0, f64::NAN, 2.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn single_value_percentiles() {
        let s = Summary::from_values([7.0]);
        assert_eq!(s.percentile(0.0), 7.0);
        assert_eq!(s.percentile(73.0), 7.0);
        assert_eq!(s.percentile(100.0), 7.0);
    }
}
