//! Fixed-bin histograms for distribution figures.

use std::fmt;

/// A histogram with uniformly sized bins over a closed range.
///
/// Figures 2 and 3 of the paper visualize region-size and load
/// distributions; the experiment harness reduces those to histograms that
/// can be printed or dumped to CSV.
///
/// # Examples
///
/// ```
/// use geogrid_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.bin_counts()[0], 1);
/// assert_eq!(h.bin_counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi]` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, either bound is non-finite, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "hi ({hi}) must exceed lo ({lo})");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample. Samples outside the range land in the
    /// underflow/overflow counters; non-finite samples are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value > self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((value - self.lo) / width) as usize;
        let idx = idx.min(self.bins.len() - 1); // value == hi maps to last bin
        self.bins[idx] += 1;
    }

    /// Total in-range samples recorded.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts, lowest bin first.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Inclusive lower bound of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_lo(&self, i: usize) -> f64 {
        assert!(i < self.bins.len(), "bin index {i} out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * i as f64
    }

    /// Exclusive upper bound of bin `i` (inclusive for the last bin).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_hi(&self, i: usize) -> f64 {
        assert!(i < self.bins.len(), "bin index {i} out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i + 1) as f64
    }

    /// Iterator over `(bin_lo, bin_hi, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_lo(i), self.bin_hi(i), self.bins[i]))
    }

    /// Fraction of in-range mass at or below the upper edge of each bin.
    pub fn cdf(&self) -> Vec<f64> {
        let total = self.count().max(1) as f64;
        let mut acc = 0u64;
        self.bins
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (lo, hi, c) in self.iter() {
            let bar = "#".repeat((c * 40 / peak) as usize);
            writeln!(f, "[{lo:>10.3}, {hi:>10.3}) {c:>8} {bar}")?;
        }
        if self.underflow > 0 || self.overflow > 0 {
            writeln!(f, "underflow={} overflow={}", self.underflow, self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!(h.bin_counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn boundary_value_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(10.0);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.1);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn cdf_reaches_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for v in [0.5, 1.5, 2.5, 3.5] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        assert!((cdf[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn display_has_rows() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(0.2);
        assert_eq!(format!("{h}").lines().count(), 4);
    }
}
