//! Small table builder shared by the experiment harness.
//!
//! Every experiment in `geogrid-bench` both prints a human-readable table
//! (the rows/series the paper reports) and writes the same table as CSV into
//! `results/`. [`Table`] is the one implementation of that behaviour.

use std::fmt::{self, Write as _};
use std::fs;
use std::io;
use std::path::Path;

/// A column-labelled table of string cells.
///
/// # Examples
///
/// ```
/// use geogrid_metrics::table::Table;
///
/// let mut t = Table::new(["nodes", "mean", "std"]);
/// t.row(["1000", "0.012", "0.034"]);
/// let csv = t.to_csv();
/// assert!(csv.starts_with("nodes,mean,std\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of floats formatted with 6 significant
    /// decimals, prefixed by one label cell.
    pub fn row_labeled<S: Into<String>>(&mut self, label: S, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.6}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:>width$}  ", h, width = widths[i]);
        }
        writeln!(f, "{}", line.trim_end())?;
        writeln!(f, "{}", "-".repeat(line.trim_end().len()))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_simple_cells() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(["a"]);
        t.row(["x,y"]);
        t.row(["he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new(["n", "value"]);
        t.row(["1", "10"]).row(["1000", "2"]);
        let text = format!("{t}");
        assert!(text.contains("1000"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn row_labeled_formats_floats() {
        let mut t = Table::new(["variant", "x", "y"]);
        t.row_labeled("basic", &[1.0, 0.5]);
        assert_eq!(t.len(), 1);
        assert!(t.to_csv().contains("basic,1.000000,0.500000"));
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("geogrid_metrics_test");
        let path = dir.join("nested").join("t.csv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        t.write_csv(&path).expect("write");
        let back = std::fs::read_to_string(&path).expect("read");
        assert_eq!(back, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
