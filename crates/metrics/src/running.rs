//! Online (streaming) statistics accumulation.

use std::fmt;

/// Welford-style online accumulator for count, mean, variance, min and max.
///
/// Used by experiment runners that aggregate a statistic over many trials
/// without retaining every sample (the paper repeats each setting over 100
/// randomly generated networks).
///
/// # Examples
///
/// ```
/// use geogrid_metrics::RunningStats;
///
/// let mut stats = RunningStats::new();
/// for x in [2.0_f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.count(), 8);
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// assert!((stats.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// Non-finite samples are ignored (and never occur in well-formed
    /// experiments); this keeps the accumulator total even under a buggy
    /// workload generator rather than poisoning every later read.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (divides by `n`), or 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`), or 0 with fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} std={:.6} min={:.6} max={:.6}",
            self.count,
            self.mean(),
            self.population_std_dev(),
            self.min(),
            self.max()
        )
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: RunningStats = xs.iter().copied().collect();
        let left: RunningStats = xs[..37].iter().copied().collect();
        let mut merged = left;
        let right: RunningStats = xs[37..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
        assert!((merged.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn display_is_nonempty() {
        let s: RunningStats = [1.0, 2.0].into_iter().collect();
        assert!(!format!("{s}").is_empty());
    }
}
