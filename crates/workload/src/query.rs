//! Location-query generators.
//!
//! Routing workload in GeoGrid comes from location queries traversing the
//! overlay. The generator draws query *target* points — either uniformly
//! or biased toward the hot-spot field (queries concentrate where the
//! action is, per the paper's Super-Bowl parking example) — plus a query
//! rectangle around each target.

use geogrid_geometry::{Point, Region, Space};
use rand::Rng;

use crate::hotspot::HotSpotField;

/// A generated location query: a spatial query region and its center.
///
/// The paper tags each request with the coordinate `(x, y)` representing
/// its spatial query region `(x, y, W, H)`; routing aims at the center
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratedQuery {
    /// Center of the query region (the routing target).
    pub target: Point,
    /// The rectangular spatial query region.
    pub region: Region,
}

/// Draws query targets and rectangles over a space.
///
/// # Examples
///
/// ```
/// use geogrid_geometry::Space;
/// use geogrid_workload::{HotSpotField, QueryGenerator};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
/// let space = Space::paper_evaluation();
/// let field = HotSpotField::random(&mut rng, space, 4);
/// let mut gen = QueryGenerator::new(space).hotspot_bias(0.8);
/// let q = gen.generate(&mut rng, &field);
/// assert!(space.covers(q.target));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGenerator {
    space: Space,
    bias: f64,
    min_extent: f64,
    max_extent: f64,
}

impl QueryGenerator {
    /// A generator with default settings: no hot-spot bias, query
    /// rectangles between 0.25 and 2 miles on a side.
    pub fn new(space: Space) -> Self {
        Self {
            space,
            bias: 0.0,
            min_extent: 0.25,
            max_extent: 2.0,
        }
    }

    /// Sets the probability that a query targets the hot-spot field rather
    /// than a uniform location.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0, 1]`.
    pub fn hotspot_bias(mut self, bias: f64) -> Self {
        assert!((0.0..=1.0).contains(&bias), "bias must be a probability");
        self.bias = bias;
        self
    }

    /// Sets the query-rectangle side-length range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min <= max`.
    pub fn extent_range(mut self, min: f64, max: f64) -> Self {
        assert!(min > 0.0 && min <= max, "need 0 < min <= max");
        self.min_extent = min;
        self.max_extent = max;
        self
    }

    /// Draws one query.
    ///
    /// A hot-spot-biased target picks a spot (weighted by radius, larger
    /// spots attract more queries), then a point inside it with the same
    /// linear density the workload field uses. Falls back to uniform when
    /// the field is empty.
    pub fn generate<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        field: &HotSpotField,
    ) -> GeneratedQuery {
        let target = if !field.is_empty() && rng.random::<f64>() < self.bias {
            self.sample_hotspot_target(rng, field)
        } else {
            self.sample_uniform_target(rng)
        };
        let w = rng.random_range(self.min_extent..=self.max_extent);
        let h = rng.random_range(self.min_extent..=self.max_extent);
        let region = Region::new(target.x - w / 2.0, target.y - h / 2.0, w, h);
        GeneratedQuery { target, region }
    }

    /// Draws `n` queries.
    pub fn generate_many<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        field: &HotSpotField,
        n: usize,
    ) -> Vec<GeneratedQuery> {
        (0..n).map(|_| self.generate(rng, field)).collect()
    }

    fn sample_uniform_target<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let b = self.space.bounds();
        Point::new(
            rng.random_range(b.x()..=b.east()),
            rng.random_range(b.y()..=b.north()),
        )
    }

    fn sample_hotspot_target<R: Rng + ?Sized>(&self, rng: &mut R, field: &HotSpotField) -> Point {
        let total: f64 = field.spots().iter().map(|s| s.radius()).sum();
        let mut pick = rng.random_range(0.0..total);
        let mut chosen = field.spots()[field.len() - 1];
        for spot in field.spots() {
            if pick < spot.radius() {
                chosen = *spot;
                break;
            }
            pick -= spot.radius();
        }
        // Radial density proportional to (1 - d/r): inverse-CDF sampling of
        // d/r from density f(u) ∝ u(1-u) on [0, 1] via rejection (cheap and
        // exact).
        loop {
            let u: f64 = rng.random();
            let accept: f64 = rng.random();
            if accept <= 4.0 * u * (1.0 - u) {
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                let d = u * chosen.radius();
                let p = chosen.center().translated(d * angle.cos(), d * angle.sin());
                return self.space.clamp(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotspot::HotSpot;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn queries_stay_in_space_and_center_on_target() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(1);
        let field = HotSpotField::random(&mut rng, space, 3);
        let mut generator = QueryGenerator::new(space).hotspot_bias(0.5);
        for q in generator.generate_many(&mut rng, &field, 500) {
            assert!(space.covers(q.target));
            assert!(q.region.center().distance(q.target) < 1e-9);
        }
    }

    #[test]
    fn full_bias_concentrates_near_spots() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(2);
        let spot = HotSpot::new(Point::new(48.0, 48.0), 5.0);
        let field = HotSpotField::new(vec![spot]);
        let mut generator = QueryGenerator::new(space).hotspot_bias(1.0);
        let qs = generator.generate_many(&mut rng, &field, 300);
        let near = qs
            .iter()
            .filter(|q| q.target.distance(spot.center()) <= spot.radius() + 1e-9)
            .count();
        assert_eq!(near, 300);
    }

    #[test]
    fn zero_bias_is_uniform() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(3);
        let spot = HotSpot::new(Point::new(1.0, 1.0), 1.0);
        let field = HotSpotField::new(vec![spot]);
        let mut generator = QueryGenerator::new(space).hotspot_bias(0.0);
        let qs = generator.generate_many(&mut rng, &field, 500);
        let far = qs
            .iter()
            .filter(|q| q.target.distance(spot.center()) > 10.0)
            .count();
        assert!(far > 350, "uniform targets should mostly be far: {far}");
    }

    #[test]
    fn empty_field_falls_back_to_uniform() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut generator = QueryGenerator::new(space).hotspot_bias(1.0);
        // Must not panic despite full bias.
        let q = generator.generate(&mut rng, &HotSpotField::default());
        assert!(space.covers(q.target));
    }

    #[test]
    fn extent_range_is_respected() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(5);
        let field = HotSpotField::default();
        let mut generator = QueryGenerator::new(space).extent_range(1.0, 1.5);
        for q in generator.generate_many(&mut rng, &field, 100) {
            assert!(q.region.width() >= 1.0 && q.region.width() <= 1.5);
            assert!(q.region.height() >= 1.0 && q.region.height() <= 1.5);
        }
    }

    #[test]
    #[should_panic(expected = "bias must be a probability")]
    fn bias_validated() {
        QueryGenerator::new(Space::paper_evaluation()).hotspot_bias(1.5);
    }
}
