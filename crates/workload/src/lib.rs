//! Workload models for the GeoGrid evaluation.
//!
//! This crate implements the synthetic workload of the paper's §3:
//!
//! * [`capacity`] — the skewed node-capacity distribution based on the
//!   Saroiu et al. Gnutella measurement study (reference \[12\] of the
//!   paper),
//! * [`hotspot`] — circular query hot spots with the paper's linear decay
//!   `1 − d/r`, random radius in \[0.1, 10\] miles, and epoch-based random
//!   migration with step size uniform in `(0, 2r)`,
//! * [`grid`] — the discretized workload **cell** grid over the plane (the
//!   paper assigns workload to cells and sums them per region),
//! * [`placement`] — node placement distributions (uniform and clustered),
//! * [`query`] — location-query generators whose targets follow the
//!   hot-spot field, used to measure routing workload.
//!
//! Everything is driven by a caller-supplied [`rand::Rng`], so experiments
//! are reproducible from a seed.
//!
//! # Examples
//!
//! ```
//! use geogrid_geometry::Space;
//! use geogrid_workload::{hotspot::HotSpotField, grid::WorkloadGrid};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let space = Space::paper_evaluation();
//! let field = HotSpotField::random(&mut rng, space, 10);
//! let grid = WorkloadGrid::from_field(space, 0.5, &field);
//! assert!(grid.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod grid;
pub mod hotspot;
pub mod placement;
pub mod query;

pub use capacity::CapacityProfile;
pub use grid::WorkloadGrid;
pub use hotspot::{HotSpot, HotSpotField};
pub use placement::NodePlacement;
pub use query::QueryGenerator;
