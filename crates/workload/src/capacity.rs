//! Node capacity distributions.
//!
//! The paper: "The capacities of those proxies follow a skewed distribution
//! based on a measurement study of Gnutella P2P network \[12\]". The
//! standard profile derived from that measurement (and used by follow-on
//! work such as GIA) assigns capacities spanning four orders of magnitude:
//!
//! | capacity | fraction |
//! |---|---|
//! | 1 | 20% |
//! | 10 | 45% |
//! | 100 | 30% |
//! | 1 000 | 4.9% |
//! | 10 000 | 0.1% |
//!
//! Figure 4 of the paper itself labels regions with capacities 1/10/100,
//! consistent with this profile.

use rand::Rng;

/// A distribution over node capacities.
///
/// Capacity in GeoGrid quantifies "the amount of resources that node p is
/// willing to dedicate for serving other nodes" — the paper uses available
/// network bandwidth.
///
/// # Examples
///
/// ```
/// use geogrid_workload::CapacityProfile;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let c = CapacityProfile::gnutella().sample(&mut rng);
/// assert!(c >= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityProfile {
    /// `(capacity, cumulative probability)` pairs, cumulative ascending.
    levels: Vec<(f64, f64)>,
}

impl CapacityProfile {
    /// The Gnutella-derived 5-level skewed profile (see module docs).
    pub fn gnutella() -> Self {
        Self::from_levels(&[
            (1.0, 0.20),
            (10.0, 0.45),
            (100.0, 0.30),
            (1_000.0, 0.049),
            (10_000.0, 0.001),
        ])
    }

    /// A degenerate profile where every node has the same capacity —
    /// useful for isolating the effect of heterogeneity in ablations.
    pub fn homogeneous(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive, got {capacity}"
        );
        Self::from_levels(&[(capacity, 1.0)])
    }

    /// Builds a profile from `(capacity, probability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, any capacity is non-positive, any
    /// probability is negative, or the probabilities do not sum to 1
    /// (within 1e-9).
    pub fn from_levels(levels: &[(f64, f64)]) -> Self {
        assert!(
            !levels.is_empty(),
            "capacity profile needs at least one level"
        );
        let mut cumulative = Vec::with_capacity(levels.len());
        let mut acc = 0.0;
        for &(cap, p) in levels {
            assert!(
                cap.is_finite() && cap > 0.0,
                "capacity must be positive, got {cap}"
            );
            assert!(p >= 0.0, "probability must be non-negative, got {p}");
            acc += p;
            cumulative.push((cap, acc));
        }
        assert!(
            (acc - 1.0).abs() < 1e-9,
            "capacity probabilities must sum to 1, got {acc}"
        );
        Self { levels: cumulative }
    }

    /// Draws one capacity.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        for &(cap, cum) in &self.levels {
            if u <= cum {
                return cap;
            }
        }
        // Guard against floating point never reaching the final cumulative.
        self.levels.last().expect("non-empty").0
    }

    /// Draws `n` capacities.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The distinct capacity levels, ascending by cumulative probability.
    pub fn levels(&self) -> impl Iterator<Item = f64> + '_ {
        self.levels.iter().map(|&(c, _)| c)
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for &(cap, cum) in &self.levels {
            mean += cap * (cum - prev);
            prev = cum;
        }
        mean
    }
}

impl Default for CapacityProfile {
    fn default() -> Self {
        Self::gnutella()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnutella_levels_and_mean() {
        let p = CapacityProfile::gnutella();
        let levels: Vec<f64> = p.levels().collect();
        assert_eq!(levels, vec![1.0, 10.0, 100.0, 1_000.0, 10_000.0]);
        // 0.2*1 + 0.45*10 + 0.3*100 + 0.049*1000 + 0.001*10000 = 93.7
        assert!((p.mean() - 93.7).abs() < 1e-9);
    }

    #[test]
    fn sample_frequencies_match_profile() {
        let p = CapacityProfile::gnutella();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let samples = p.sample_many(&mut rng, n);
        let frac = |cap: f64| samples.iter().filter(|&&c| c == cap).count() as f64 / n as f64;
        assert!((frac(1.0) - 0.20).abs() < 0.01);
        assert!((frac(10.0) - 0.45).abs() < 0.01);
        assert!((frac(100.0) - 0.30).abs() < 0.01);
        assert!((frac(1_000.0) - 0.049).abs() < 0.005);
        assert!(frac(10_000.0) < 0.005);
    }

    #[test]
    fn homogeneous_always_same() {
        let p = CapacityProfile::homogeneous(5.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(p.sample_many(&mut rng, 100).iter().all(|&c| c == 5.0));
        assert_eq!(p.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        CapacityProfile::from_levels(&[(1.0, 0.5), (2.0, 0.6)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_bad_capacity() {
        CapacityProfile::from_levels(&[(0.0, 1.0)]);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let p = CapacityProfile::gnutella();
        let a = p.sample_many(&mut SmallRng::seed_from_u64(9), 50);
        let b = p.sample_many(&mut SmallRng::seed_from_u64(9), 50);
        assert_eq!(a, b);
    }
}
