//! Node placement distributions.
//!
//! GeoGrid maps nodes to the regions covering their physical coordinates,
//! so *where* nodes sit shapes the partition. The paper calls out "the
//! unbalanced concentration of nodes in some regions" as one source of load
//! imbalance; the clustered placement models that concentration.

use geogrid_geometry::{Point, Space};
use rand::Rng;

/// How node coordinates are drawn over the space.
///
/// # Examples
///
/// ```
/// use geogrid_geometry::Space;
/// use geogrid_workload::NodePlacement;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
/// let pts = NodePlacement::Uniform.sample_many(&mut rng, Space::paper_evaluation(), 100);
/// assert_eq!(pts.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum NodePlacement {
    /// Uniform over the whole space (the paper's evaluation setting).
    #[default]
    Uniform,
    /// A mixture: with probability `background`, uniform over the space;
    /// otherwise Gaussian around one of `centers` with standard deviation
    /// `sigma` (clamped into the space). Models population centers.
    Clustered {
        /// Cluster centers (e.g. towns in the metro area).
        centers: Vec<Point>,
        /// Standard deviation of each cluster, in space units.
        sigma: f64,
        /// Probability that a node is background (uniform) rather than
        /// clustered, in `[0, 1]`.
        background: f64,
    },
}

impl NodePlacement {
    /// A clustered placement with `k` random centers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `sigma` is not positive, or `background` is
    /// outside `[0, 1]`.
    pub fn random_clusters<R: Rng + ?Sized>(
        rng: &mut R,
        space: Space,
        k: usize,
        sigma: f64,
        background: f64,
    ) -> Self {
        assert!(k > 0, "need at least one cluster center");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        assert!(
            (0.0..=1.0).contains(&background),
            "background must be a probability"
        );
        let bounds = space.bounds();
        let centers = (0..k)
            .map(|_| {
                Point::new(
                    rng.random_range(bounds.x()..=bounds.east()),
                    rng.random_range(bounds.y()..=bounds.north()),
                )
            })
            .collect();
        Self::Clustered {
            centers,
            sigma,
            background,
        }
    }

    /// Draws one node coordinate in `space`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, space: Space) -> Point {
        let bounds = space.bounds();
        match self {
            NodePlacement::Uniform => Point::new(
                rng.random_range(bounds.x()..=bounds.east()),
                rng.random_range(bounds.y()..=bounds.north()),
            ),
            NodePlacement::Clustered {
                centers,
                sigma,
                background,
            } => {
                if rng.random::<f64>() < *background || centers.is_empty() {
                    return NodePlacement::Uniform.sample(rng, space);
                }
                let c = centers[rng.random_range(0..centers.len())];
                // Box-Muller: two independent normals from two uniforms.
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random::<f64>();
                let mag = (-2.0 * u1.ln()).sqrt() * sigma;
                let p = Point::new(
                    c.x + mag * (std::f64::consts::TAU * u2).cos(),
                    c.y + mag * (std::f64::consts::TAU * u2).sin(),
                );
                space.clamp(p)
            }
        }
    }

    /// Draws `n` node coordinates.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, space: Space, n: usize) -> Vec<Point> {
        (0..n).map(|_| self.sample(rng, space)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_space() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(1);
        for p in NodePlacement::Uniform.sample_many(&mut rng, space, 1000) {
            assert!(space.covers(p));
        }
    }

    #[test]
    fn uniform_spreads_over_quadrants() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = NodePlacement::Uniform.sample_many(&mut rng, space, 4000);
        let q = |f: &dyn Fn(&Point) -> bool| pts.iter().filter(|p| f(p)).count();
        let nw = q(&|p| p.x < 32.0 && p.y >= 32.0);
        let se = q(&|p| p.x >= 32.0 && p.y < 32.0);
        assert!((nw as f64 - 1000.0).abs() < 150.0);
        assert!((se as f64 - 1000.0).abs() < 150.0);
    }

    #[test]
    fn clustered_concentrates_near_centers() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(3);
        let placement = NodePlacement::Clustered {
            centers: vec![Point::new(16.0, 16.0)],
            sigma: 2.0,
            background: 0.0,
        };
        let pts = placement.sample_many(&mut rng, space, 1000);
        let near = pts
            .iter()
            .filter(|p| p.distance(Point::new(16.0, 16.0)) < 6.0)
            .count();
        assert!(near > 900, "only {near} of 1000 near the cluster");
        assert!(pts.iter().all(|p| space.covers(*p)));
    }

    #[test]
    fn background_fraction_mixes_in_uniform() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(4);
        let placement = NodePlacement::Clustered {
            centers: vec![Point::new(1.0, 1.0)],
            sigma: 0.5,
            background: 1.0,
        };
        // background = 1.0 means pure uniform: points should not all pile
        // up at the corner cluster.
        let pts = placement.sample_many(&mut rng, space, 500);
        let far = pts
            .iter()
            .filter(|p| p.distance(Point::new(1.0, 1.0)) > 10.0)
            .count();
        assert!(far > 300);
    }

    #[test]
    fn random_clusters_validates() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(5);
        let p = NodePlacement::random_clusters(&mut rng, space, 3, 1.5, 0.2);
        match p {
            NodePlacement::Clustered { centers, .. } => assert_eq!(centers.len(), 3),
            _ => panic!("expected clustered"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let mut rng = SmallRng::seed_from_u64(6);
        NodePlacement::random_clusters(&mut rng, Space::paper_evaluation(), 0, 1.0, 0.0);
    }
}
