//! Circular query hot spots and their migration.
//!
//! §3.1 of the paper: "Each hot spot is a circular area with a random
//! initial radius between 0.1 and 10 miles. The cell at the center of a hot
//! spot has the highest normalized workload 1 and the ones on its border
//! have workload 0. The workloads of cells covered by the hot spot is
//! decided by a formula `1 − d/r` […] At the end of each era, we force each
//! hot spot to migrate along a randomly chosen direction and at a random
//! step size uniformly chosen from range `(0, 2r)`."

use std::f64::consts::TAU;
use std::fmt;

use geogrid_geometry::{Circle, Point, Space};
use rand::Rng;

/// Default radius range of a hot spot, in miles (paper §3.1).
pub const RADIUS_RANGE: (f64, f64) = (0.1, 10.0);

/// One circular query hot spot.
///
/// # Examples
///
/// ```
/// use geogrid_geometry::Point;
/// use geogrid_workload::HotSpot;
///
/// let spot = HotSpot::new(Point::new(32.0, 32.0), 5.0);
/// assert_eq!(spot.weight(Point::new(32.0, 32.0)), 1.0);
/// assert_eq!(spot.weight(Point::new(40.0, 32.0)), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSpot {
    circle: Circle,
}

impl HotSpot {
    /// Creates a hot spot centered at `center` with radius `radius`.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not strictly positive and finite.
    pub fn new(center: Point, radius: f64) -> Self {
        Self {
            circle: Circle::new(center, radius),
        }
    }

    /// Draws a hot spot with uniform center in `space` and radius uniform
    /// in [`RADIUS_RANGE`].
    pub fn random<R: Rng + ?Sized>(rng: &mut R, space: Space) -> Self {
        let bounds = space.bounds();
        let center = Point::new(
            rng.random_range(bounds.x()..=bounds.east()),
            rng.random_range(bounds.y()..=bounds.north()),
        );
        let radius = rng.random_range(RADIUS_RANGE.0..=RADIUS_RANGE.1);
        Self::new(center, radius)
    }

    /// The underlying circle.
    pub fn circle(&self) -> Circle {
        self.circle
    }

    /// Center of the spot.
    pub fn center(&self) -> Point {
        self.circle.center()
    }

    /// Radius of the spot.
    pub fn radius(&self) -> f64 {
        self.circle.radius()
    }

    /// Normalized workload this spot contributes at `p`: `1 − d/r` inside,
    /// 0 at the border and beyond.
    pub fn weight(&self, p: Point) -> f64 {
        self.circle.linear_decay(p)
    }

    /// Migrates the spot one epoch: a uniformly random direction and a step
    /// size uniform in `(0, 2r)`, with the center clamped back into `space`.
    pub fn migrate<R: Rng + ?Sized>(&mut self, rng: &mut R, space: Space) {
        let angle = rng.random_range(0.0..TAU);
        let step = rng.random_range(f64::MIN_POSITIVE..(2.0 * self.radius()));
        let moved = self
            .center()
            .translated(step * angle.cos(), step * angle.sin());
        self.circle = Circle::new(space.clamp(moved), self.radius());
    }
}

impl fmt::Display for HotSpot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hotspot {}", self.circle)
    }
}

/// A set of hot spots forming the workload field over the plane.
///
/// The field's weight at a point is the **sum** of the individual spots'
/// linear-decay weights (spots are independent query populations; where two
/// overlap, both populations query).
///
/// # Examples
///
/// ```
/// use geogrid_geometry::{Point, Space};
/// use geogrid_workload::HotSpotField;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let mut field = HotSpotField::random(&mut rng, Space::paper_evaluation(), 5);
/// assert_eq!(field.len(), 5);
/// field.advance_epoch(&mut rng, Space::paper_evaluation());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HotSpotField {
    spots: Vec<HotSpot>,
}

impl HotSpotField {
    /// Creates a field from explicit spots.
    pub fn new(spots: Vec<HotSpot>) -> Self {
        Self { spots }
    }

    /// Draws `count` random spots in `space`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, space: Space, count: usize) -> Self {
        Self::new((0..count).map(|_| HotSpot::random(rng, space)).collect())
    }

    /// Number of spots.
    pub fn len(&self) -> usize {
        self.spots.len()
    }

    /// Whether the field has no spots.
    pub fn is_empty(&self) -> bool {
        self.spots.is_empty()
    }

    /// Read-only view of the spots.
    pub fn spots(&self) -> &[HotSpot] {
        &self.spots
    }

    /// Total workload weight at `p` (sum over spots).
    pub fn weight(&self, p: Point) -> f64 {
        self.spots.iter().map(|s| s.weight(p)).sum()
    }

    /// Migrates every spot one epoch (the paper's end-of-era forced
    /// migration).
    pub fn advance_epoch<R: Rng + ?Sized>(&mut self, rng: &mut R, space: Space) {
        for spot in &mut self.spots {
            spot.migrate(rng, space);
        }
    }

    /// Migrates every spot `steps` epochs. The moving-hot-spot convergence
    /// experiment advances spots "4 to 10 steps before a round of
    /// adaptation ends".
    pub fn advance_epochs<R: Rng + ?Sized>(&mut self, rng: &mut R, space: Space, steps: usize) {
        for _ in 0..steps {
            self.advance_epoch(rng, space);
        }
    }
}

impl FromIterator<HotSpot> for HotSpotField {
    fn from_iter<T: IntoIterator<Item = HotSpot>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weight_decays_linearly() {
        let s = HotSpot::new(Point::new(10.0, 10.0), 4.0);
        assert_eq!(s.weight(Point::new(10.0, 10.0)), 1.0);
        assert!((s.weight(Point::new(12.0, 10.0)) - 0.5).abs() < 1e-12);
        assert_eq!(s.weight(Point::new(14.0, 10.0)), 0.0);
    }

    #[test]
    fn random_spot_respects_paper_ranges() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = HotSpot::random(&mut rng, space);
            assert!(space.covers(s.center()));
            assert!((RADIUS_RANGE.0..=RADIUS_RANGE.1).contains(&s.radius()));
        }
    }

    #[test]
    fn migration_step_is_bounded_by_two_radii() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let mut s = HotSpot::new(Point::new(32.0, 32.0), 3.0);
            let before = s.center();
            s.migrate(&mut rng, space);
            let step = before.distance(s.center());
            assert!(step > 0.0, "spot must move");
            assert!(step <= 2.0 * s.radius() + 1e-9, "step {step} too large");
            assert_eq!(s.radius(), 3.0, "radius never changes");
        }
    }

    #[test]
    fn migration_keeps_center_in_space() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(17);
        // Start at a corner so clamping actually matters.
        let mut s = HotSpot::new(Point::new(0.5, 0.5), 10.0);
        for _ in 0..50 {
            s.migrate(&mut rng, space);
            assert!(space.covers(s.center()));
        }
    }

    #[test]
    fn field_weight_sums_overlapping_spots() {
        let a = HotSpot::new(Point::new(0.0, 0.0), 2.0);
        let b = HotSpot::new(Point::new(1.0, 0.0), 2.0);
        let field: HotSpotField = [a, b].into_iter().collect();
        let w = field.weight(Point::new(0.5, 0.0));
        let expected = a.weight(Point::new(0.5, 0.0)) + b.weight(Point::new(0.5, 0.0));
        assert!((w - expected).abs() < 1e-12);
        assert!(w > 1.0, "overlap should add up");
    }

    #[test]
    fn epoch_advancement_moves_every_spot() {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(23);
        let mut field = HotSpotField::random(&mut rng, space, 8);
        let before: Vec<Point> = field.spots().iter().map(|s| s.center()).collect();
        field.advance_epoch(&mut rng, space);
        let moved = field
            .spots()
            .iter()
            .zip(&before)
            .filter(|(s, &b)| s.center().distance(b) > 0.0)
            .count();
        assert_eq!(moved, 8);
    }

    #[test]
    fn empty_field_weight_is_zero() {
        let field = HotSpotField::default();
        assert!(field.is_empty());
        assert_eq!(field.weight(Point::new(1.0, 1.0)), 0.0);
    }
}
