//! The discretized workload cell grid.
//!
//! The paper assigns workload to *cells*: "The cell at the center of a hot
//! spot has the highest normalized workload 1". [`WorkloadGrid`] discretizes
//! the plane into square cells, evaluates the hot-spot field at each cell
//! center, and answers "how much query workload falls inside this region" —
//! the quantity a region's owner node has to serve.

use std::fmt;

use geogrid_geometry::{Point, Region, Space};

use crate::hotspot::HotSpotField;

/// A uniform grid of workload cells over a [`Space`].
///
/// # Examples
///
/// ```
/// use geogrid_geometry::{Region, Space};
/// use geogrid_workload::{HotSpot, HotSpotField, WorkloadGrid};
/// use geogrid_geometry::Point;
///
/// let space = Space::paper_evaluation();
/// let field = HotSpotField::new(vec![HotSpot::new(Point::new(32.0, 32.0), 8.0)]);
/// let grid = WorkloadGrid::from_field(space, 0.5, &field);
/// let near = grid.region_load(&Region::new(24.0, 24.0, 16.0, 16.0));
/// let far = grid.region_load(&Region::new(0.0, 0.0, 8.0, 8.0));
/// assert!(near > far);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadGrid {
    space: Space,
    cell_size: f64,
    cols: usize,
    rows: usize,
    /// Row-major cell workloads (row = latitude index from the south).
    cells: Vec<f64>,
}

impl WorkloadGrid {
    /// Builds a grid of `cell_size`-sided cells and fills it from `field`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite or exceeds
    /// either space extent.
    pub fn from_field(space: Space, cell_size: f64, field: &HotSpotField) -> Self {
        let mut grid = Self::zeroed(space, cell_size);
        grid.fill(field);
        grid
    }

    /// Builds an all-zero grid (useful for custom workloads in tests).
    ///
    /// # Panics
    ///
    /// See [`Self::from_field`].
    pub fn zeroed(space: Space, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive, got {cell_size}"
        );
        let (w, h) = space.extent();
        assert!(
            cell_size <= w && cell_size <= h,
            "cell size {cell_size} exceeds space extent {w} x {h}"
        );
        let cols = (w / cell_size).ceil() as usize;
        let rows = (h / cell_size).ceil() as usize;
        Self {
            space,
            cell_size,
            cols,
            rows,
            cells: vec![0.0; cols * rows],
        }
    }

    /// Re-evaluates every cell from `field`, replacing previous contents.
    /// Called after each hot-spot migration epoch.
    pub fn fill(&mut self, field: &HotSpotField) {
        // Evaluating every cell against every spot is O(cells * spots);
        // restrict to each spot's bounding box instead.
        self.cells.iter_mut().for_each(|c| *c = 0.0);
        let bounds = self.space.bounds();
        for spot in field.spots() {
            let bb = spot.circle().bounding_region();
            let lo_col = (((bb.x() - bounds.x()) / self.cell_size).floor().max(0.0)) as usize;
            let lo_row = (((bb.y() - bounds.y()) / self.cell_size).floor().max(0.0)) as usize;
            let hi_col = ((bb.east() - bounds.x()) / self.cell_size).ceil() as usize;
            let hi_row = ((bb.north() - bounds.y()) / self.cell_size).ceil() as usize;
            for row in lo_row..hi_row.min(self.rows) {
                for col in lo_col..hi_col.min(self.cols) {
                    let idx = row * self.cols + col;
                    self.cells[idx] += spot.weight(self.cell_center(col, row));
                }
            }
        }
    }

    /// Number of columns (longitude direction).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (latitude direction).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Side length of a cell.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The space this grid covers.
    pub fn space(&self) -> Space {
        self.space
    }

    /// Center point of cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn cell_center(&self, col: usize, row: usize) -> Point {
        assert!(
            col < self.cols && row < self.rows,
            "cell index out of range"
        );
        let bounds = self.space.bounds();
        Point::new(
            bounds.x() + (col as f64 + 0.5) * self.cell_size,
            bounds.y() + (row as f64 + 0.5) * self.cell_size,
        )
    }

    /// Workload of cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn cell(&self, col: usize, row: usize) -> f64 {
        assert!(
            col < self.cols && row < self.rows,
            "cell index out of range"
        );
        self.cells[row * self.cols + col]
    }

    /// Sets the workload of cell `(col, row)` (tests and custom fields).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or `value` is negative or
    /// non-finite.
    pub fn set_cell(&mut self, col: usize, row: usize, value: f64) {
        assert!(
            col < self.cols && row < self.rows,
            "cell index out of range"
        );
        assert!(
            value.is_finite() && value >= 0.0,
            "cell workload must be non-negative, got {value}"
        );
        self.cells[row * self.cols + col] = value;
    }

    /// Total workload over the whole grid.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Sum of the workloads of all cells whose centers fall inside
    /// `region`. Cell centers sit at half-cell offsets, so they never
    /// coincide with region boundaries produced by halving the space, and
    /// the half-open containment rule assigns each cell to exactly one
    /// region of a partition.
    pub fn region_load(&self, region: &Region) -> f64 {
        let bounds = self.space.bounds();
        // Index window that could possibly intersect the region.
        let lo_col = (((region.x() - bounds.x()) / self.cell_size)
            .floor()
            .max(0.0)) as usize;
        let lo_row = (((region.y() - bounds.y()) / self.cell_size)
            .floor()
            .max(0.0)) as usize;
        let hi_col = (((region.east() - bounds.x()) / self.cell_size).ceil()) as usize;
        let hi_row = (((region.north() - bounds.y()) / self.cell_size).ceil()) as usize;
        let mut load = 0.0;
        for row in lo_row..hi_row.min(self.rows) {
            for col in lo_col..hi_col.min(self.cols) {
                if region.contains(self.cell_center(col, row)) {
                    load += self.cells[row * self.cols + col];
                }
            }
        }
        load
    }

    /// Workload at the cell covering `p`, or 0 outside the space.
    pub fn load_at(&self, p: Point) -> f64 {
        let bounds = self.space.bounds();
        if !self.space.covers(p) {
            return 0.0;
        }
        let col = (((p.x - bounds.x()) / self.cell_size) as usize).min(self.cols - 1);
        let row = (((p.y - bounds.y()) / self.cell_size) as usize).min(self.rows - 1);
        self.cells[row * self.cols + col]
    }
}

impl fmt::Display for WorkloadGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload grid {}x{} cells of {} (total {:.3})",
            self.cols,
            self.rows,
            self.cell_size,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotspot::HotSpot;
    use geogrid_geometry::SplitAxis;

    fn single_spot_grid() -> WorkloadGrid {
        let space = Space::paper_evaluation();
        let field = HotSpotField::new(vec![HotSpot::new(Point::new(32.0, 32.0), 8.0)]);
        WorkloadGrid::from_field(space, 0.5, &field)
    }

    #[test]
    fn grid_dimensions() {
        let g = single_spot_grid();
        assert_eq!(g.cols(), 128);
        assert_eq!(g.rows(), 128);
    }

    #[test]
    fn hottest_cell_is_at_spot_center() {
        let g = single_spot_grid();
        let mut best = (0, 0, f64::NEG_INFINITY);
        for row in 0..g.rows() {
            for col in 0..g.cols() {
                if g.cell(col, row) > best.2 {
                    best = (col, row, g.cell(col, row));
                }
            }
        }
        let center = g.cell_center(best.0, best.1);
        assert!(center.distance(Point::new(32.0, 32.0)) < 1.0);
    }

    #[test]
    fn region_loads_tile_totals() {
        let g = single_spot_grid();
        let space = g.space();
        let (a, b) = space.bounds().split(SplitAxis::Latitude);
        let (aa, ab) = a.split_preferred();
        let sum = g.region_load(&aa) + g.region_load(&ab) + g.region_load(&b);
        assert!((sum - g.total()).abs() < 1e-9);
    }

    #[test]
    fn total_matches_analytic_volume() {
        // Integral of (1 - d/r) over the disc = pi r^2 / 3; cell sum times
        // cell area should approximate it.
        let g = single_spot_grid();
        let cell_area = g.cell_size() * g.cell_size();
        let measured = g.total() * cell_area;
        let expected = std::f64::consts::PI * 8.0_f64.powi(2) / 3.0;
        let rel_err = (measured - expected).abs() / expected;
        assert!(rel_err < 0.02, "relative error {rel_err}");
    }

    #[test]
    fn fill_is_idempotent_and_replaces() {
        let space = Space::paper_evaluation();
        let field = HotSpotField::new(vec![HotSpot::new(Point::new(10.0, 10.0), 5.0)]);
        let mut g = WorkloadGrid::from_field(space, 1.0, &field);
        let t1 = g.total();
        g.fill(&field);
        assert!((g.total() - t1).abs() < 1e-12, "fill must not accumulate");
    }

    #[test]
    fn load_at_point_lookup() {
        let g = single_spot_grid();
        assert!(g.load_at(Point::new(32.0, 32.0)) > 0.9);
        assert_eq!(g.load_at(Point::new(63.9, 63.9)), 0.0);
        assert_eq!(g.load_at(Point::new(-1.0, 0.0)), 0.0);
    }

    #[test]
    fn set_cell_and_region_load() {
        let mut g = WorkloadGrid::zeroed(Space::square(4.0), 1.0);
        g.set_cell(0, 0, 2.0);
        g.set_cell(3, 3, 1.0);
        assert_eq!(g.total(), 3.0);
        assert_eq!(g.region_load(&Region::new(0.0, 0.0, 2.0, 2.0)), 2.0);
        assert_eq!(g.region_load(&Region::new(2.0, 2.0, 2.0, 2.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_index_bounds_checked() {
        single_spot_grid().cell(1000, 0);
    }
}
