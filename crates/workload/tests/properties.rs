//! Property-based tests for the workload models.

use geogrid_geometry::{Point, Region, Space};
use geogrid_workload::{CapacityProfile, HotSpot, HotSpotField, NodePlacement, WorkloadGrid};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Capacity samples always come from the profile's levels.
    #[test]
    fn capacities_are_always_profile_levels(seed in any::<u64>(), n in 1usize..200) {
        let profile = CapacityProfile::gnutella();
        let levels: Vec<f64> = profile.levels().collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for c in profile.sample_many(&mut rng, n) {
            prop_assert!(levels.contains(&c), "capacity {c} not a level");
        }
    }

    /// Hot-spot migration keeps the radius constant, the step within
    /// (0, 2r], and the center inside the space — for any trajectory.
    #[test]
    fn migration_invariants(seed in any::<u64>(), x in 0.0..64.0, y in 0.0..64.0,
                            r in 0.1..10.0, steps in 1usize..50) {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut spot = HotSpot::new(Point::new(x, y), r);
        for _ in 0..steps {
            let before = spot.center();
            spot.migrate(&mut rng, space);
            prop_assert_eq!(spot.radius(), r);
            prop_assert!(space.covers(spot.center()));
            // Clamping can only shorten the step, never lengthen it.
            prop_assert!(before.distance(spot.center()) <= 2.0 * r + 1e-9);
        }
    }

    /// The grid's per-region sums equal its total for any binary-split
    /// partition depth, for any field.
    #[test]
    fn grid_mass_is_partition_invariant(seed in any::<u64>(), spots in 1usize..6,
                                        depth in 0usize..6) {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(seed);
        let field = HotSpotField::random(&mut rng, space, spots);
        let grid = WorkloadGrid::from_field(space, 1.0, &field);
        let mut leaves = vec![space.bounds()];
        for _ in 0..depth {
            leaves = leaves
                .into_iter()
                .flat_map(|r| {
                    let (a, b) = r.split_preferred();
                    [a, b]
                })
                .collect();
        }
        let sum: f64 = leaves.iter().map(|r| grid.region_load(r)).sum();
        prop_assert!((sum - grid.total()).abs() < 1e-9 * grid.total().max(1.0));
    }

    /// Field weight is non-negative everywhere and zero far from all
    /// spots.
    #[test]
    fn field_weight_bounds(seed in any::<u64>(), spots in 1usize..8,
                           px in 0.0..64.0, py in 0.0..64.0) {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(seed);
        let field = HotSpotField::random(&mut rng, space, spots);
        let w = field.weight(Point::new(px, py));
        prop_assert!(w >= 0.0);
        prop_assert!(w <= spots as f64, "weight {w} exceeds spot count");
        // A point far outside every spot's radius sees zero.
        let far = Point::new(px + 1000.0, py + 1000.0);
        prop_assert_eq!(field.weight(far), 0.0);
    }

    /// Placements always land inside the space.
    #[test]
    fn placements_stay_in_space(seed in any::<u64>(), n in 1usize..100,
                                clustered in any::<bool>()) {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(seed);
        let placement = if clustered {
            NodePlacement::random_clusters(&mut rng, space, 3, 2.0, 0.1)
        } else {
            NodePlacement::Uniform
        };
        for p in placement.sample_many(&mut rng, space, n) {
            prop_assert!(space.covers(p));
        }
    }

    /// region_load of a sub-rectangle never exceeds the enclosing
    /// rectangle's load.
    #[test]
    fn region_load_is_monotone_in_containment(seed in any::<u64>(),
                                              x in 0.0..32.0, y in 0.0..32.0,
                                              w in 1.0..32.0, h in 1.0..32.0) {
        let space = Space::paper_evaluation();
        let mut rng = SmallRng::seed_from_u64(seed);
        let field = HotSpotField::random(&mut rng, space, 5);
        let grid = WorkloadGrid::from_field(space, 0.5, &field);
        let outer = Region::new(x, y, w, h);
        let (inner, _) = outer.split_preferred();
        prop_assert!(grid.region_load(&inner) <= grid.region_load(&outer) + 1e-12);
    }
}
