//! Property-based tests for the geometry crate's core invariants.

use geogrid_geometry::{Circle, Point, Region, Space, SplitAxis};
use proptest::prelude::*;

fn arb_point(side: f64) -> impl Strategy<Value = Point> {
    (0.0..=side, 0.0..=side).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_region(side: f64) -> impl Strategy<Value = Region> {
    (0.0..side, 0.0..side, 0.01..side, 0.01..side).prop_map(|(x, y, w, h)| Region::new(x, y, w, h))
}

proptest! {
    /// Splitting a region always yields two halves that tile it and merge
    /// back into it, on both axes.
    #[test]
    fn split_merge_round_trip(r in arb_region(64.0), lat in any::<bool>()) {
        let axis = if lat { SplitAxis::Latitude } else { SplitAxis::Longitude };
        let (a, b) = r.split(axis);
        prop_assert!((a.area() + b.area() - r.area()).abs() < 1e-9);
        prop_assert!(a.touches_edge(&b));
        prop_assert_eq!(a.merge(&b), Some(r));
    }

    /// Any point covered by a region is covered by exactly one of its split
    /// halves (the paper's half-open rule makes halves disjoint).
    #[test]
    fn split_partitions_points(r in arb_region(64.0), p in arb_point(64.0), lat in any::<bool>()) {
        let axis = if lat { SplitAxis::Latitude } else { SplitAxis::Longitude };
        let (a, b) = r.split(axis);
        let parent = r.contains(p);
        let child_count = a.contains(p) as u32 + b.contains(p) as u32;
        prop_assert_eq!(child_count, parent as u32);
    }

    /// The neighbor predicate is symmetric.
    #[test]
    fn touches_edge_is_symmetric(a in arb_region(64.0), b in arb_region(64.0)) {
        prop_assert_eq!(a.touches_edge(&b), b.touches_edge(&a));
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersection_properties(a in arb_region(64.0), b in arb_region(64.0)) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(ab), Some(ba)) = (ab, ba) {
            prop_assert!((ab.area() - ba.area()).abs() < 1e-9);
            prop_assert!(ab.area() <= a.area() + 1e-9);
            prop_assert!(ab.area() <= b.area() + 1e-9);
        }
    }

    /// The closest point of a region to `p` is inside the region (closed)
    /// and no farther from `p` than any sampled region point.
    #[test]
    fn closest_point_is_closest(r in arb_region(64.0), p in arb_point(64.0)) {
        let c = r.closest_point_to(p);
        prop_assert!(r.contains_closed(c));
        prop_assert!(p.distance(c) <= p.distance(r.center()) + 1e-9);
    }

    /// Repeated preferred splits keep every space point covered by exactly
    /// one leaf region.
    #[test]
    fn recursive_split_tiles_space(p in arb_point(64.0), depth in 1usize..8) {
        let space = Space::paper_evaluation();
        let mut leaves = vec![space.bounds()];
        for _ in 0..depth {
            let mut next = Vec::with_capacity(leaves.len() * 2);
            for leaf in leaves {
                let (a, b) = leaf.split_preferred();
                next.push(a);
                next.push(b);
            }
            leaves = next;
        }
        let covering = leaves.iter().filter(|r| space.region_covers(r, p)).count();
        prop_assert_eq!(covering, 1);
    }

    /// Hot-spot decay is within [0, 1], 1 only at the center, and
    /// monotonically non-increasing with distance.
    #[test]
    fn circle_decay_bounds(c_x in 0.0..64.0, c_y in 0.0..64.0, r in 0.1..10.0,
                           p in arb_point(64.0)) {
        let c = Circle::new(Point::new(c_x, c_y), r);
        let w = c.linear_decay(p);
        prop_assert!((0.0..=1.0).contains(&w));
        // A point strictly farther from the center never has higher weight.
        let farther = Point::new(
            c_x + (p.x - c_x) * 2.0,
            c_y + (p.y - c_y) * 2.0,
        );
        prop_assert!(c.linear_decay(farther) <= w + 1e-12);
    }

    /// A circle's bounding region contains every point of the circle.
    #[test]
    fn bounding_region_contains_circle(c_x in 1.0..63.0, c_y in 1.0..63.0,
                                       r in 0.1..10.0, angle in 0.0..std::f64::consts::TAU) {
        let c = Circle::new(Point::new(c_x, c_y), r);
        let inside = Point::new(
            c_x + 0.99 * r * angle.cos(),
            c_y + 0.99 * r * angle.sin(),
        );
        prop_assert!(c.contains(inside));
        prop_assert!(c.bounding_region().contains_closed(inside));
    }
}
