//! Rectangular regions — the unit of ownership in GeoGrid.

use std::fmt;

use crate::Point;

/// Tolerance for edge-coincidence tests.
///
/// Region coordinates are produced by repeated exact halving of the initial
/// space, so equality would normally be exact; the tolerance guards against
/// drift when regions are reconstructed from serialized values.
const EDGE_EPS: f64 = 1e-9;

/// Axis along which a region is split in half.
///
/// The paper splits "following a certain ordering of the dimensions such as
/// latitude dimension first and then longitude dimension". Splitting on
/// [`SplitAxis::Latitude`] halves the *height* (a horizontal cut); splitting
/// on [`SplitAxis::Longitude`] halves the *width* (a vertical cut).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitAxis {
    /// Horizontal cut: the y-dimension (height) is halved.
    Latitude,
    /// Vertical cut: the x-dimension (width) is halved.
    Longitude,
}

impl SplitAxis {
    /// The other axis.
    pub fn flipped(self) -> SplitAxis {
        match self {
            SplitAxis::Latitude => SplitAxis::Longitude,
            SplitAxis::Longitude => SplitAxis::Latitude,
        }
    }
}

/// A rectangular region of the GeoGrid plane.
///
/// The paper denotes a region as the quadruple `<x, y, width, height>`
/// where `(x, y)` is the south-west corner. Containment is half-open:
/// a point `o` is covered iff `r.x < o.x ≤ r.x + width` and
/// `r.y < o.y ≤ r.y + height` — i.e. a region owns its north/east edges but
/// not its south/west edges, so sibling regions never both cover a boundary
/// point.
///
/// # Examples
///
/// ```
/// use geogrid_geometry::{Point, Region};
///
/// let r = Region::new(0.0, 0.0, 32.0, 16.0);
/// assert!(r.contains(Point::new(32.0, 16.0)));   // north-east corner: in
/// assert!(!r.contains(Point::new(0.0, 8.0)));    // west edge: out
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    x: f64,
    y: f64,
    width: f64,
    height: f64,
}

impl Region {
    /// Creates a region from its south-west corner and extents.
    ///
    /// # Panics
    ///
    /// Panics if any component is non-finite or either extent is not
    /// strictly positive.
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        assert!(
            x.is_finite() && y.is_finite() && width.is_finite() && height.is_finite(),
            "region components must be finite"
        );
        assert!(
            width > 0.0 && height > 0.0,
            "region extents must be positive (got {width} x {height})"
        );
        Self {
            x,
            y,
            width,
            height,
        }
    }

    /// South-west corner x (longitude).
    pub fn x(&self) -> f64 {
        self.x
    }

    /// South-west corner y (latitude).
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Extent along the longitude axis.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Extent along the latitude axis.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// East edge x-coordinate.
    pub fn east(&self) -> f64 {
        self.x + self.width
    }

    /// North edge y-coordinate.
    pub fn north(&self) -> f64 {
        self.y + self.height
    }

    /// Geometric center of the region.
    pub fn center(&self) -> Point {
        Point::new(self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Area of the region.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// The paper's containment test: open on the south/west edges, closed
    /// on the north/east edges.
    pub fn contains(&self, p: Point) -> bool {
        self.x < p.x && p.x <= self.east() && self.y < p.y && p.y <= self.north()
    }

    /// Containment with all edges closed. Used for geometric queries where
    /// the half-open convention would spuriously exclude boundary contacts
    /// (e.g. "does this query rectangle touch my region").
    pub fn contains_closed(&self, p: Point) -> bool {
        self.x <= p.x && p.x <= self.east() && self.y <= p.y && p.y <= self.north()
    }

    /// Axis a fresh split of this region should use: the longer dimension,
    /// preferring latitude on ties.
    ///
    /// For the square initial space this reproduces the paper's
    /// latitude-then-longitude alternation exactly, and it keeps aspect
    /// ratios bounded for non-square deployments.
    pub fn preferred_split_axis(&self) -> SplitAxis {
        if self.width > self.height {
            SplitAxis::Longitude
        } else {
            SplitAxis::Latitude
        }
    }

    /// Splits the region in half along `axis`.
    ///
    /// Returns the pair `(low, high)`: `(south, north)` for a latitude
    /// split, `(west, east)` for a longitude split. The two halves exactly
    /// tile the original region.
    pub fn split(&self, axis: SplitAxis) -> (Region, Region) {
        match axis {
            SplitAxis::Latitude => {
                let half = self.height / 2.0;
                (
                    Region::new(self.x, self.y, self.width, half),
                    Region::new(self.x, self.y + half, self.width, self.height - half),
                )
            }
            SplitAxis::Longitude => {
                let half = self.width / 2.0;
                (
                    Region::new(self.x, self.y, half, self.height),
                    Region::new(self.x + half, self.y, self.width - half, self.height),
                )
            }
        }
    }

    /// Splits along [`Self::preferred_split_axis`].
    pub fn split_preferred(&self) -> (Region, Region) {
        self.split(self.preferred_split_axis())
    }

    /// Attempts to merge with `other` into the rectangle they jointly tile.
    ///
    /// Succeeds only when the union is exactly a rectangle: the regions
    /// share a full edge (same extent on the perpendicular axis) and are
    /// adjacent. This is the inverse of [`Self::split`].
    pub fn merge(&self, other: &Region) -> Option<Region> {
        let eq = |a: f64, b: f64| (a - b).abs() <= EDGE_EPS;
        // Horizontally adjacent (share a vertical edge)?
        if eq(self.y, other.y) && eq(self.height, other.height) {
            if eq(self.east(), other.x) {
                return Some(Region::new(
                    self.x,
                    self.y,
                    self.width + other.width,
                    self.height,
                ));
            }
            if eq(other.east(), self.x) {
                return Some(Region::new(
                    other.x,
                    self.y,
                    self.width + other.width,
                    self.height,
                ));
            }
        }
        // Vertically adjacent (share a horizontal edge)?
        if eq(self.x, other.x) && eq(self.width, other.width) {
            if eq(self.north(), other.y) {
                return Some(Region::new(
                    self.x,
                    self.y,
                    self.width,
                    self.height + other.height,
                ));
            }
            if eq(other.north(), self.y) {
                return Some(Region::new(
                    self.x,
                    other.y,
                    self.width,
                    self.height + other.height,
                ));
            }
        }
        None
    }

    /// The paper's neighbor predicate: true when the intersection of the
    /// two regions is a line segment — a shared edge of positive length.
    /// Corner-only contact and area overlap both return false.
    pub fn touches_edge(&self, other: &Region) -> bool {
        let eq = |a: f64, b: f64| (a - b).abs() <= EDGE_EPS;
        let overlap =
            |lo1: f64, hi1: f64, lo2: f64, hi2: f64| (hi1.min(hi2) - lo1.max(lo2)) > EDGE_EPS;
        let vertical_contact = (eq(self.east(), other.x) || eq(other.east(), self.x))
            && overlap(self.y, self.north(), other.y, other.north());
        let horizontal_contact = (eq(self.north(), other.y) || eq(other.north(), self.y))
            && overlap(self.x, self.east(), other.x, other.east());
        vertical_contact || horizontal_contact
    }

    /// Whether the two regions overlap with positive area.
    pub fn intersects(&self, other: &Region) -> bool {
        self.x < other.east() - EDGE_EPS
            && other.x < self.east() - EDGE_EPS
            && self.y < other.north() - EDGE_EPS
            && other.y < self.north() - EDGE_EPS
    }

    /// The overlapping rectangle, if the regions overlap with positive area.
    pub fn intersection(&self, other: &Region) -> Option<Region> {
        if !self.intersects(other) {
            return None;
        }
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let east = self.east().min(other.east());
        let north = self.north().min(other.north());
        Some(Region::new(x, y, east - x, north - y))
    }

    /// The point of this region closest to `p` (clamping `p` to the
    /// rectangle). Used by greedy routing to guarantee per-hop progress.
    pub fn closest_point_to(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.x, self.east()),
            p.y.clamp(self.y, self.north()),
        )
    }

    /// Euclidean distance from `p` to the region (0 when `p` is inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point_to(p).distance(p)
    }

    /// Smallest Euclidean distance between any point of `self` and any
    /// point of `other` (0 when they intersect or touch). This is the
    /// lower bound of `self.distance_to_point(p)` over all `p` in
    /// `other` — the routing cache uses it to prove a neighbor can never
    /// be the greedy choice for any target inside a destination cell.
    pub fn distance_to_region(&self, other: &Region) -> f64 {
        let dx = (other.x - self.east()).max(self.x - other.east()).max(0.0);
        let dy = (other.y - self.north())
            .max(self.y - other.north())
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{:.4}, {:.4}, {:.4}, {:.4}>",
            self.x, self.y, self.width, self.height
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Region {
        Region::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn containment_is_half_open() {
        let r = unit();
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.5, 0.5)));
        assert!(!r.contains(Point::new(0.0, 0.5)));
        assert!(!r.contains(Point::new(0.5, 0.0)));
        assert!(!r.contains(Point::new(1.0001, 0.5)));
    }

    #[test]
    fn split_halves_tile_parent() {
        let r = Region::new(2.0, 4.0, 8.0, 6.0);
        for axis in [SplitAxis::Latitude, SplitAxis::Longitude] {
            let (a, b) = r.split(axis);
            assert!((a.area() + b.area() - r.area()).abs() < 1e-12);
            assert!(a.touches_edge(&b));
            assert_eq!(a.merge(&b), Some(r));
            assert_eq!(b.merge(&a), Some(r));
        }
    }

    #[test]
    fn split_point_membership_is_exclusive() {
        let r = unit();
        let (a, b) = r.split(SplitAxis::Latitude);
        // Points on the internal boundary belong to exactly one half (the
        // south one, which owns its north edge).
        let boundary = Point::new(0.5, 0.5);
        assert!(a.contains(boundary));
        assert!(!b.contains(boundary));
        // Any interior point is in exactly one half.
        let p = Point::new(0.25, 0.75);
        assert!(a.contains(p) ^ b.contains(p));
    }

    #[test]
    fn preferred_axis_alternates_from_square() {
        let square = Region::new(0.0, 0.0, 64.0, 64.0);
        assert_eq!(square.preferred_split_axis(), SplitAxis::Latitude);
        let (south, _) = square.split(SplitAxis::Latitude);
        assert_eq!(south.preferred_split_axis(), SplitAxis::Longitude);
        let (west, _) = south.split(SplitAxis::Longitude);
        assert_eq!(west.preferred_split_axis(), SplitAxis::Latitude);
    }

    #[test]
    fn corner_contact_is_not_neighbor() {
        let a = Region::new(0.0, 0.0, 1.0, 1.0);
        let b = Region::new(1.0, 1.0, 1.0, 1.0);
        assert!(!a.touches_edge(&b));
        let c = Region::new(1.0, 0.0, 1.0, 1.0);
        assert!(a.touches_edge(&c));
    }

    #[test]
    fn partial_edge_overlap_is_neighbor() {
        let a = Region::new(0.0, 0.0, 1.0, 1.0);
        let b = Region::new(1.0, 0.5, 1.0, 2.0);
        assert!(a.touches_edge(&b));
        assert!(b.touches_edge(&a));
    }

    #[test]
    fn area_overlap_is_not_edge_contact() {
        let a = Region::new(0.0, 0.0, 2.0, 2.0);
        let b = Region::new(1.0, 1.0, 2.0, 2.0);
        assert!(a.intersects(&b));
        assert!(!a.touches_edge(&b));
    }

    #[test]
    fn intersection_shape() {
        let a = Region::new(0.0, 0.0, 2.0, 2.0);
        let b = Region::new(1.0, 1.0, 2.0, 2.0);
        let i = a.intersection(&b).expect("overlap");
        assert_eq!(i, Region::new(1.0, 1.0, 1.0, 1.0));
        let far = Region::new(10.0, 10.0, 1.0, 1.0);
        assert_eq!(a.intersection(&far), None);
    }

    #[test]
    fn merge_rejects_non_rectangles() {
        let a = Region::new(0.0, 0.0, 1.0, 1.0);
        let taller = Region::new(1.0, 0.0, 1.0, 2.0);
        assert_eq!(a.merge(&taller), None);
        let gap = Region::new(2.0, 0.0, 1.0, 1.0);
        assert_eq!(a.merge(&gap), None);
        assert_eq!(a.merge(&a), None);
    }

    #[test]
    fn closest_point_and_distance() {
        let r = unit();
        assert_eq!(r.distance_to_point(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(
            r.closest_point_to(Point::new(2.0, 0.5)),
            Point::new(1.0, 0.5)
        );
        assert!((r.distance_to_point(Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        // Diagonal case.
        assert!((r.distance_to_point(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn region_distance_is_the_infimum_over_the_other_rect() {
        let a = Region::new(0.0, 0.0, 1.0, 1.0);
        // Overlapping and touching rectangles are at distance zero.
        assert_eq!(a.distance_to_region(&Region::new(0.5, 0.5, 2.0, 2.0)), 0.0);
        assert_eq!(a.distance_to_region(&Region::new(1.0, 0.0, 1.0, 1.0)), 0.0);
        // Axis-aligned gap.
        assert!((a.distance_to_region(&Region::new(3.0, 0.0, 1.0, 1.0)) - 2.0).abs() < 1e-12);
        // Diagonal gap: closest corners are (1,1) and (4,5).
        let far = Region::new(4.0, 5.0, 1.0, 1.0);
        assert!((a.distance_to_region(&far) - 5.0).abs() < 1e-12);
        assert!((far.distance_to_region(&a) - 5.0).abs() < 1e-12);
        // Never exceeds the point distance for any point of `other`.
        for p in [
            Point::new(4.0, 5.0),
            Point::new(4.5, 5.5),
            Point::new(5.0, 6.0),
        ] {
            assert!(a.distance_to_region(&far) <= a.distance_to_point(p) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "extents must be positive")]
    fn rejects_zero_width() {
        Region::new(0.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn display_matches_paper_quadruple() {
        let r = Region::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(format!("{r}"), "<1.0000, 2.0000, 3.0000, 4.0000>");
    }
}
