//! The bounded global coordinate space.

use std::fmt;

use crate::{Point, Region};

/// The global GeoGrid plane: the geographic area of interest (a metro area,
/// a state, a country…) that the overlay partitions among its nodes.
///
/// The paper's evaluation uses a 64 × 64-mile plane
/// ([`Space::paper_evaluation`]). The space's own lower edges are treated
/// inclusively: the half-open region containment of the paper would leave
/// points on the global west/south boundary covered by no region, so
/// [`Space::covers`] closes those two edges for the space as a whole and
/// [`Space::region_covers`] extends a region's containment accordingly when
/// the region sits on the space boundary.
///
/// # Examples
///
/// ```
/// use geogrid_geometry::{Point, Space};
///
/// let space = Space::paper_evaluation();
/// assert!(space.covers(Point::new(0.0, 0.0)));
/// assert!(space.covers(Point::new(64.0, 64.0)));
/// assert!(!space.covers(Point::new(-0.1, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Space {
    bounds: Region,
}

impl Space {
    /// Creates a space covering `bounds`.
    pub fn new(bounds: Region) -> Self {
        Self { bounds }
    }

    /// A square space of `side × side` with south-west corner at the origin.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not strictly positive and finite.
    pub fn square(side: f64) -> Self {
        Self::new(Region::new(0.0, 0.0, side, side))
    }

    /// The 64 × 64-mile plane used throughout the paper's evaluation.
    pub fn paper_evaluation() -> Self {
        Self::square(64.0)
    }

    /// The bounding region of the whole space. The first node of a GeoGrid
    /// network owns exactly this region.
    pub fn bounds(&self) -> Region {
        self.bounds
    }

    /// Whether the space covers `p` (all four edges inclusive).
    pub fn covers(&self, p: Point) -> bool {
        self.bounds.contains_closed(p)
    }

    /// Region containment adjusted for the space boundary: the paper's
    /// half-open test, except that a region flush with the space's west or
    /// south edge also owns points on that edge.
    pub fn region_covers(&self, region: &Region, p: Point) -> bool {
        if region.contains(p) {
            return true;
        }
        if !self.covers(p) {
            return false;
        }
        let on_west = p.x == self.bounds.x() && region.x() == self.bounds.x();
        let on_south = p.y == self.bounds.y() && region.y() == self.bounds.y();
        let x_ok = (region.x() < p.x && p.x <= region.east()) || on_west;
        let y_ok = (region.y() < p.y && p.y <= region.north()) || on_south;
        (on_west || on_south) && x_ok && y_ok
    }

    /// Clamps `p` into the space.
    pub fn clamp(&self, p: Point) -> Point {
        self.bounds.closest_point_to(p)
    }

    /// Side lengths `(width, height)` of the space.
    pub fn extent(&self) -> (f64, f64) {
        (self.bounds.width(), self.bounds.height())
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "space{}", self.bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitAxis;

    #[test]
    fn square_space_covers_all_corners() {
        let s = Space::square(64.0);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(64.0, 0.0),
            Point::new(0.0, 64.0),
            Point::new(64.0, 64.0),
        ] {
            assert!(s.covers(p), "{p} should be covered");
        }
        assert!(!s.covers(Point::new(64.1, 0.0)));
    }

    #[test]
    fn region_covers_closes_global_lower_edges() {
        let s = Space::square(64.0);
        let root = s.bounds();
        // The root region covers the global south-west corner despite the
        // half-open rule.
        assert!(!root.contains(Point::new(0.0, 0.0)));
        assert!(s.region_covers(&root, Point::new(0.0, 0.0)));
        assert!(s.region_covers(&root, Point::new(0.0, 10.0)));
        assert!(s.region_covers(&root, Point::new(10.0, 0.0)));
    }

    #[test]
    fn region_covers_respects_interior_half_open_rule() {
        let s = Space::square(64.0);
        let (west, east) = s.bounds().split(SplitAxis::Longitude);
        // Interior boundary: owned by the west half only.
        let boundary = Point::new(32.0, 10.0);
        assert!(s.region_covers(&west, boundary));
        assert!(!s.region_covers(&east, boundary));
        // Global west edge: owned by the west half (flush with space edge).
        let west_edge = Point::new(0.0, 10.0);
        assert!(s.region_covers(&west, west_edge));
        assert!(!s.region_covers(&east, west_edge));
    }

    #[test]
    fn every_space_point_covered_by_exactly_one_half() {
        let s = Space::square(8.0);
        let (a, b) = s.bounds().split(SplitAxis::Latitude);
        for i in 0..=16 {
            for j in 0..=16 {
                let p = Point::new(i as f64 * 0.5, j as f64 * 0.5);
                let n = s.region_covers(&a, p) as u32 + s.region_covers(&b, p) as u32;
                assert_eq!(n, 1, "point {p} covered by {n} regions");
            }
        }
    }

    #[test]
    fn clamp_pulls_points_inside() {
        let s = Space::square(10.0);
        assert_eq!(s.clamp(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(s.clamp(Point::new(5.0, 5.0)), Point::new(5.0, 5.0));
    }
}
