//! Points in the GeoGrid coordinate plane.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in the two-dimensional geographic coordinate space.
///
/// `x` is the longitude-like axis and `y` the latitude-like axis; the
/// paper's evaluation uses plain miles over a 64 × 64 plane, so no spherical
/// correction is applied.
///
/// # Examples
///
/// ```
/// use geogrid_geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Longitude-axis coordinate.
    pub x: f64,
    /// Latitude-axis coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its two coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed, e.g. greedy routing decisions).
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// The point translated by `(dx, dy)`.
    pub fn translated(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Whether both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;

    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;

    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.5);
        let b = Point::new(-4.0, 7.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn midpoint_is_between() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(2.0, 6.0));
        assert_eq!(m, Point::new(1.0, 3.0));
    }

    #[test]
    fn add_sub_round_trip() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(0.5, -0.25);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (3.0, 4.0).into();
        assert_eq!(p, Point::new(3.0, 4.0));
    }

    #[test]
    fn finite_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Point::new(0.0, 0.0)).is_empty());
    }
}
