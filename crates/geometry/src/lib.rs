//! Geographic 2-D geometry for the GeoGrid overlay.
//!
//! GeoGrid partitions a two-dimensional coordinate space — in one-to-one
//! correspondence with physical geography — into rectangular regions, one
//! per owner node. This crate implements that coordinate space exactly as
//! the paper defines it:
//!
//! * [`Point`] — a longitude/latitude coordinate (the paper's `o(x, y)`),
//! * [`Region`] — the quadruple `<x, y, width, height>` with the paper's
//!   half-open containment test
//!   `(r.x < o.x ≤ r.x + w) ∧ (r.y < o.y ≤ r.y + h)`,
//! * region **split** (halving, latitude-first alternating axis) and
//!   **merge** (two halves re-forming their parent rectangle),
//! * the **neighbor** predicate — two regions are neighbors when their
//!   intersection is a line segment (shared edge of positive length, corner
//!   contact does not count),
//! * [`Circle`] — circular query/hot-spot areas, and
//! * [`Space`] — the global bounded plane (64 × 64 miles in the paper's
//!   evaluation).
//!
//! # Examples
//!
//! ```
//! use geogrid_geometry::{Point, Region, SplitAxis};
//!
//! let root = Region::new(0.0, 0.0, 64.0, 64.0);
//! let (south, north) = root.split(SplitAxis::Latitude);
//! assert!(south.touches_edge(&north));
//! assert_eq!(south.merge(&north), Some(root));
//! assert!(north.contains(Point::new(10.0, 48.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod point;
mod region;
mod space;

pub use circle::Circle;
pub use point::Point;
pub use region::{Region, SplitAxis};
pub use space::Space;
