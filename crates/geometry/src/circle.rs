//! Circular areas: query regions and hot spots.

use std::fmt;

use crate::{Point, Region};

/// A circular area of the plane.
///
/// The paper uses circles in two places: query regions specified "in a
/// circle with radius γ" (represented for routing as the bounding rectangle
/// `(x, y, 2γ, 2γ)`), and the circular query hot spots of the evaluation
/// whose workload decays linearly from the center (`1 − d/r`).
///
/// # Examples
///
/// ```
/// use geogrid_geometry::{Circle, Point};
///
/// let c = Circle::new(Point::new(0.0, 0.0), 2.0);
/// assert!(c.contains(Point::new(1.0, 1.0)));
/// assert!(!c.contains(Point::new(2.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    center: Point,
    radius: f64,
}

impl Circle {
    /// Creates a circle from center and radius.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not strictly positive and finite, or the
    /// center is non-finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(center.is_finite(), "circle center must be finite");
        assert!(
            radius.is_finite() && radius > 0.0,
            "circle radius must be positive, got {radius}"
        );
        Self { center, radius }
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Whether `p` lies strictly inside the circle (`d < r`).
    ///
    /// The paper's hot-spot model gives border cells workload 0, so the
    /// border is treated as outside.
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_squared(p) < self.radius * self.radius
    }

    /// Whether any part of `region` lies inside the circle.
    pub fn intersects_region(&self, region: &Region) -> bool {
        self.contains(region.closest_point_to(self.center))
    }

    /// The paper's rectangular representation of a circular query region:
    /// `(x, y, 2γ, 2γ)` centered on the circle.
    pub fn bounding_region(&self) -> Region {
        Region::new(
            self.center.x - self.radius,
            self.center.y - self.radius,
            2.0 * self.radius,
            2.0 * self.radius,
        )
    }

    /// The circle translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Circle {
        Circle::new(self.center.translated(dx, dy), self.radius)
    }

    /// Normalized linear-decay weight of `p`: `1 − d/r` inside the circle,
    /// 0 outside. This is exactly the paper's hot-spot workload formula.
    pub fn linear_decay(&self, p: Point) -> f64 {
        let d = self.center.distance(p);
        if d >= self.radius {
            0.0
        } else {
            1.0 - d / self.radius
        }
    }
}

impl fmt::Display for Circle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circle({}, r={:.4})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_is_strict() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(c.contains(Point::new(0.0, 0.0)));
        assert!(!c.contains(Point::new(1.0, 0.0))); // on the border
        assert!(!c.contains(Point::new(0.8, 0.8)));
    }

    #[test]
    fn linear_decay_profile() {
        let c = Circle::new(Point::new(0.0, 0.0), 10.0);
        assert_eq!(c.linear_decay(Point::new(0.0, 0.0)), 1.0);
        assert!((c.linear_decay(Point::new(5.0, 0.0)) - 0.5).abs() < 1e-12);
        assert_eq!(c.linear_decay(Point::new(10.0, 0.0)), 0.0);
        assert_eq!(c.linear_decay(Point::new(100.0, 0.0)), 0.0);
    }

    #[test]
    fn bounding_region_matches_paper_form() {
        let c = Circle::new(Point::new(5.0, 7.0), 2.0);
        let r = c.bounding_region();
        assert_eq!(r, Region::new(3.0, 5.0, 4.0, 4.0));
        assert_eq!(r.center(), c.center());
    }

    #[test]
    fn region_intersection() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(c.intersects_region(&Region::new(-0.5, -0.5, 1.0, 1.0)));
        assert!(c.intersects_region(&Region::new(0.5, -0.5, 10.0, 1.0)));
        // Box whose closest corner is exactly on the border: outside.
        assert!(!c.intersects_region(&Region::new(1.0, 0.0, 1.0, 1.0)));
        assert!(!c.intersects_region(&Region::new(5.0, 5.0, 1.0, 1.0)));
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_bad_radius() {
        Circle::new(Point::new(0.0, 0.0), 0.0);
    }

    #[test]
    fn translation_moves_center_only() {
        let c = Circle::new(Point::new(1.0, 1.0), 3.0).translated(2.0, -1.0);
        assert_eq!(c.center(), Point::new(3.0, 0.0));
        assert_eq!(c.radius(), 3.0);
    }
}
