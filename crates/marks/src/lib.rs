//! Marker attributes for the GeoGrid audit tooling.
//!
//! The attributes in this crate expand to their input unchanged — they
//! exist so that performance- and correctness-critical functions carry a
//! machine-readable marker in the source itself. The `geogrid-audit`
//! binary (`cargo lint-all`) scans the workspace for these markers and
//! enforces the rules attached to them; see `crates/audit` and DESIGN.md
//! §7 for the rule catalog.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Marks a function as part of the routing hot path.
///
/// Functions carrying this attribute must not allocate: the audit rule
/// **GG002** rejects `Vec::new`, `vec!`, `.clone()`, `.to_vec()`,
/// `.collect()`, `Box::new`, `format!`, `.to_string()`, `.to_owned()`,
/// `String::new`/`from`, and `HashMap`/`HashSet`/`BTreeMap::new` inside
/// the marked function's own body. Cold-path helpers a hot function calls
/// (cache promotion, scratch growth) are deliberately *not* checked
/// transitively — keep allocations behind a named helper and leave that
/// helper unmarked.
///
/// The attribute itself is a no-op at compile time.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
