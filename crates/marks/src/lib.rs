//! Marker attributes for the GeoGrid audit tooling.
//!
//! The attributes in this crate expand to their input unchanged — they
//! exist so that performance- and correctness-critical functions carry a
//! machine-readable marker in the source itself. The `geogrid-audit`
//! binary (`cargo lint-all`) scans the workspace for these markers and
//! enforces the rules attached to them; see `crates/audit` and DESIGN.md
//! §7 for the rule catalog.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Marks a function as part of the routing hot path.
///
/// Functions carrying this attribute must not allocate, at two depths:
///
/// * **GG002** (lexical) rejects `Vec::new`, `vec!`, `.clone()`,
///   `.to_vec()`, `.collect()`, `Box::new`, `format!`, `.to_string()`,
///   `.to_owned()`, `String::new`/`from`, and
///   `HashMap`/`HashSet`/`BTreeMap::new` inside the marked function's
///   own body.
/// * **GG008** (call graph) extends the ban transitively: no allocating
///   construct may be *reachable* from a hot function through any chain
///   of first-party helpers, so an allocation cannot hide behind a named
///   helper. A genuinely cold helper on a hot call path (one-time lazy
///   init, capped promotion) is excused by annotating it with
///   `// audit: hot-path-exempt(reason)` — the reason is mandatory
///   (GG000) and the exemption cuts the reachability walk at that
///   function.
///
/// The attribute itself is a no-op at compile time.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
