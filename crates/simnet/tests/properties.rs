//! Property-based tests on the simulator's core guarantees.

use geogrid_simnet::{Addr, Context, LatencyModel, Process, SimConfig, SimTime, Simulation};
use proptest::prelude::*;

/// Records every delivery with its arrival time.
struct Recorder {
    log: Vec<(Addr, u32, SimTime)>,
}

impl Process for Recorder {
    type Msg = u32;

    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: Addr, msg: u32) {
        let now = ctx.now();
        self.log.push((from, msg, now));
    }
}

fn sim(latency: LatencyModel, loss: f64, seed: u64) -> Simulation<Recorder> {
    Simulation::new(
        SimConfig {
            latency,
            loss_probability: loss,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delivery times never run backwards and every message arrives no
    /// earlier than its minimum latency.
    #[test]
    fn time_is_monotone_and_latency_respected(
        seed in any::<u64>(),
        min_ms in 1u64..20,
        spread in 0u64..30,
        count in 1usize..50
    ) {
        let mut s = sim(LatencyModel::uniform_millis(min_ms, min_ms + spread), 0.0, seed);
        let r = s.add_process(Recorder { log: Vec::new() });
        let src = s.add_process(Recorder { log: Vec::new() });
        for i in 0..count {
            s.post(src, r, i as u32);
        }
        s.run_until_quiescent(100_000);
        let log = &s.process(r).unwrap().log;
        prop_assert_eq!(log.len(), count);
        let mut last = SimTime::ZERO;
        for (_, _, at) in log {
            prop_assert!(*at >= last, "delivery time went backwards");
            prop_assert!(*at >= SimTime::from_millis(min_ms));
            last = *at;
        }
    }

    /// With constant latency, per-sender FIFO order is preserved.
    #[test]
    fn constant_latency_preserves_send_order(seed in any::<u64>(), count in 1usize..80) {
        let mut s = sim(LatencyModel::constant_millis(3), 0.0, seed);
        let r = s.add_process(Recorder { log: Vec::new() });
        let src = s.add_process(Recorder { log: Vec::new() });
        for i in 0..count {
            s.post(src, r, i as u32);
        }
        s.run_until_quiescent(100_000);
        let msgs: Vec<u32> = s.process(r).unwrap().log.iter().map(|(_, m, _)| *m).collect();
        prop_assert_eq!(msgs, (0..count as u32).collect::<Vec<_>>());
    }

    /// sent == delivered + lost + undeliverable, always.
    #[test]
    fn conservation_of_messages(
        seed in any::<u64>(),
        loss in 0.0..0.9,
        count in 1usize..100,
        crash_receiver in any::<bool>()
    ) {
        let mut s = sim(LatencyModel::constant_millis(1), loss, seed);
        let r = s.add_process(Recorder { log: Vec::new() });
        let src = s.add_process(Recorder { log: Vec::new() });
        if crash_receiver {
            s.crash(r);
        }
        for i in 0..count {
            s.post(src, r, i as u32);
        }
        s.run_until_quiescent(100_000);
        let st = s.stats();
        prop_assert_eq!(st.sent, count as u64);
        prop_assert_eq!(st.sent, st.delivered + st.lost + st.undeliverable);
        if crash_receiver {
            prop_assert_eq!(st.delivered, 0);
        }
    }

    /// Two simulations with the same seed produce identical logs.
    #[test]
    fn determinism(seed in any::<u64>(), count in 1usize..60) {
        let run = |seed| {
            let mut s = sim(LatencyModel::uniform_millis(1, 9), 0.2, seed);
            let r = s.add_process(Recorder { log: Vec::new() });
            let src = s.add_process(Recorder { log: Vec::new() });
            for i in 0..count {
                s.post(src, r, i as u32);
            }
            s.run_until_quiescent(100_000);
            s.process(r).unwrap().log.clone()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// run_until never processes events beyond the deadline.
    #[test]
    fn run_until_respects_deadline(seed in any::<u64>(), deadline_ms in 1u64..50) {
        let mut s = sim(LatencyModel::uniform_millis(1, 100), 0.0, seed);
        let r = s.add_process(Recorder { log: Vec::new() });
        let src = s.add_process(Recorder { log: Vec::new() });
        for i in 0..50 {
            s.post(src, r, i as u32);
        }
        let deadline = SimTime::from_millis(deadline_ms);
        s.run_until(deadline, 100_000);
        for (_, _, at) in &s.process(r).unwrap().log {
            prop_assert!(*at <= deadline);
        }
    }
}
