//! The simulation engine: processes, events, and the run loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{LatencyModel, SimStats, SimTime};

/// Address of a process inside a simulation.
///
/// Addresses are allocated sequentially by [`Simulation::add_process`] and
/// are never reused, so a crashed node's address stays dangling — exactly
/// like a departed peer's endpoint in a real overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// The raw numeric address (stable within one simulation).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs an address from its raw value.
    ///
    /// Useful for drivers that keep an external id space numerically
    /// aligned with simulator addresses. Sending to an address that was
    /// never allocated is safe: the message counts as undeliverable.
    pub fn from_raw(raw: u64) -> Addr {
        Addr(raw)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A simulated process (an overlay node).
///
/// Handlers receive a [`Context`] for sending messages, arming timers, and
/// reading the clock. All effects requested through the context are applied
/// by the simulator after the handler returns, keeping handlers pure with
/// respect to the event queue.
pub trait Process {
    /// The message type exchanged between processes.
    type Msg;

    /// Called once when the process is added to the simulation.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: Addr, msg: Self::Msg);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: u64) {
        let _ = (ctx, timer);
    }
}

/// Simulation-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// One-way message latency model.
    pub latency: LatencyModel,
    /// Independent probability that any message is silently dropped.
    pub loss_probability: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            loss_probability: 0.0,
        }
    }
}

/// Handle through which a process interacts with the simulation during a
/// handler invocation.
pub struct Context<'a, M> {
    now: SimTime,
    addr: Addr,
    rng: &'a mut SmallRng,
    actions: &'a mut Vec<Action<M>>,
}

enum Action<M> {
    Send { to: Addr, msg: M },
    Timer { delay: SimTime, id: u64 },
    Stop,
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's own address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Sends `msg` to `to` (subject to the latency and loss models).
    pub fn send(&mut self, to: Addr, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Arms a timer that fires after `delay` with the given id.
    pub fn set_timer(&mut self, delay: SimTime, id: u64) {
        self.actions.push(Action::Timer { delay, id });
    }

    /// Removes this process from the simulation after the handler returns
    /// (a graceful departure; pending messages to it become undeliverable).
    pub fn stop(&mut self) {
        self.actions.push(Action::Stop);
    }

    /// Deterministic randomness shared with the simulation.
    pub fn rng(&mut self) -> &mut impl Rng {
        self.rng
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: Addr, to: Addr, msg: M },
    Timer { to: Addr, id: u64 },
    Start { to: Addr },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event simulation over a set of processes.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Simulation<P: Process> {
    config: SimConfig,
    now: SimTime,
    seq: u64,
    next_addr: u64,
    queue: BinaryHeap<Reverse<Event<P::Msg>>>,
    processes: HashMap<Addr, P>,
    rng: SmallRng,
    stats: SimStats,
    scratch: Vec<Action<P::Msg>>,
}

impl<P: Process> Simulation<P> {
    /// Creates an empty simulation with the given config and RNG seed.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&config.loss_probability),
            "loss probability must be in [0, 1), got {}",
            config.loss_probability
        );
        Self {
            config,
            now: SimTime::ZERO,
            seq: 0,
            next_addr: 0,
            queue: BinaryHeap::new(),
            processes: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            stats: SimStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Adds a process; its `on_start` runs at the current simulated time
    /// (once the run loop reaches it).
    pub fn add_process(&mut self, process: P) -> Addr {
        let addr = Addr(self.next_addr);
        self.next_addr += 1;
        self.processes.insert(addr, process);
        self.push_event(self.now, EventKind::Start { to: addr });
        addr
    }

    /// Injects a message from outside the simulation (e.g. a mobile user
    /// contacting its proxy). Latency and loss apply as usual.
    pub fn post(&mut self, from: Addr, to: Addr, msg: P::Msg) {
        self.enqueue_send(from, to, msg);
    }

    /// Crashes a process immediately: it is removed without any handler
    /// running, and in-flight messages to it count as undeliverable.
    ///
    /// Returns the process state if it was alive.
    pub fn crash(&mut self, addr: Addr) -> Option<P> {
        self.processes.remove(&addr)
    }

    /// Whether `addr` is currently alive.
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.processes.contains_key(&addr)
    }

    /// Read access to a process's state.
    pub fn process(&self, addr: Addr) -> Option<&P> {
        self.processes.get(&addr)
    }

    /// Mutable access to a process's state (for test instrumentation).
    pub fn process_mut(&mut self, addr: Addr) -> Option<&mut P> {
        self.processes.get_mut(&addr)
    }

    /// Addresses of all live processes (unordered).
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.processes.keys().copied()
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether no processes are alive.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Processes a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "time must not move backwards");
        self.now = event.at;
        self.stats.events += 1;
        match event.kind {
            EventKind::Deliver { from, to, msg } => {
                if self.processes.contains_key(&to) {
                    self.stats.delivered += 1;
                    self.dispatch(to, |p, ctx| p.on_message(ctx, from, msg));
                } else {
                    self.stats.undeliverable += 1;
                }
            }
            EventKind::Timer { to, id } => {
                if self.processes.contains_key(&to) {
                    self.stats.timers_fired += 1;
                    self.dispatch(to, |p, ctx| p.on_timer(ctx, id));
                }
            }
            EventKind::Start { to } => {
                if self.processes.contains_key(&to) {
                    self.dispatch(to, |p, ctx| p.on_start(ctx));
                }
            }
        }
        true
    }

    /// Runs until the queue drains or `max_events` have been processed.
    /// Returns the number of events processed.
    pub fn run_until_quiescent(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Runs until simulated time would pass `deadline` (events at exactly
    /// `deadline` are processed) or `max_events` have been processed.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            match self.queue.peek() {
                Some(Reverse(e)) if e.at <= deadline => {
                    self.step();
                    n += 1;
                }
                _ => break,
            }
        }
        self.now = self
            .now
            .max(deadline.min(self.queue.peek().map(|Reverse(e)| e.at).unwrap_or(deadline)));
        n
    }

    fn dispatch<F>(&mut self, addr: Addr, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        let mut process = self.processes.remove(&addr).expect("checked alive");
        let mut actions = std::mem::take(&mut self.scratch);
        let mut ctx = Context {
            now: self.now,
            addr,
            rng: &mut self.rng,
            actions: &mut actions,
        };
        f(&mut process, &mut ctx);
        let mut stopped = false;
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.enqueue_send(addr, to, msg),
                Action::Timer { delay, id } => {
                    self.push_event(self.now + delay, EventKind::Timer { to: addr, id });
                }
                Action::Stop => stopped = true,
            }
        }
        self.scratch = actions;
        if !stopped {
            self.processes.insert(addr, process);
        }
    }

    fn enqueue_send(&mut self, from: Addr, to: Addr, msg: P::Msg) {
        self.stats.sent += 1;
        if self.config.loss_probability > 0.0
            && self.rng.random::<f64>() < self.config.loss_probability
        {
            self.stats.lost += 1;
            return;
        }
        let latency = self.config.latency.sample(&mut self.rng);
        self.push_event(self.now + latency, EventKind::Deliver { from, to, msg });
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<P::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }
}

impl<P: Process> fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("processes", &self.processes.len())
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages and echoes pings.
    struct Echo {
        received: u32,
    }

    impl Process for Echo {
        type Msg = &'static str;

        fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: Addr, msg: Self::Msg) {
            self.received += 1;
            if msg == "ping" {
                ctx.send(from, "pong");
            }
        }
    }

    fn two_echoes(config: SimConfig) -> (Simulation<Echo>, Addr, Addr) {
        let mut sim = Simulation::new(config, 7);
        let a = sim.add_process(Echo { received: 0 });
        let b = sim.add_process(Echo { received: 0 });
        (sim, a, b)
    }

    #[test]
    fn ping_pong_delivers_both_ways() {
        let (mut sim, a, b) = two_echoes(SimConfig::default());
        sim.post(a, b, "ping");
        sim.run_until_quiescent(100);
        assert_eq!(sim.process(b).unwrap().received, 1);
        assert_eq!(sim.process(a).unwrap().received, 1);
        assert_eq!(sim.stats().delivered, 2);
        // Two latency hops of 5ms each.
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn crash_makes_messages_undeliverable() {
        let (mut sim, a, b) = two_echoes(SimConfig::default());
        sim.crash(b);
        sim.post(a, b, "ping");
        sim.run_until_quiescent(100);
        assert_eq!(sim.stats().undeliverable, 1);
        assert_eq!(sim.stats().delivered, 0);
        assert!(!sim.is_alive(b));
        assert!(sim.is_alive(a));
    }

    #[test]
    fn loss_model_drops_messages() {
        let config = SimConfig {
            loss_probability: 0.999999,
            ..SimConfig::default()
        };
        let (mut sim, a, b) = two_echoes(config);
        for _ in 0..50 {
            sim.post(a, b, "ping");
        }
        sim.run_until_quiescent(1000);
        assert!(sim.stats().lost >= 45, "lost {}", sim.stats().lost);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| {
            let config = SimConfig {
                latency: LatencyModel::uniform_millis(1, 10),
                loss_probability: 0.1,
            };
            let mut sim = Simulation::new(config, seed);
            let a = sim.add_process(Echo { received: 0 });
            let b = sim.add_process(Echo { received: 0 });
            for _ in 0..100 {
                sim.post(a, b, "ping");
            }
            sim.run_until_quiescent(10_000);
            (sim.stats(), sim.now())
        };
        assert_eq!(run(11), run(11));
        // Different seeds should produce a different trajectory in at
        // least one observable (loss count or final clock).
        assert_ne!(run(11), run(12));
    }

    /// A process that reschedules itself a fixed number of times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Process for Ticker {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            ctx.set_timer(SimTime::from_millis(10), 1);
        }

        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: Addr, _msg: ()) {}

        fn on_timer(&mut self, ctx: &mut Context<'_, ()>, timer: u64) {
            assert_eq!(timer, 1);
            self.fired_at.push(ctx.now());
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(SimTime::from_millis(10), 1);
            }
        }
    }

    #[test]
    fn timers_fire_on_schedule() {
        let mut sim = Simulation::new(SimConfig::default(), 1);
        let t = sim.add_process(Ticker {
            remaining: 3,
            fired_at: Vec::new(),
        });
        sim.run_until_quiescent(100);
        let fired = &sim.process(t).unwrap().fired_at;
        assert_eq!(
            *fired,
            vec![
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30)
            ]
        );
        assert_eq!(sim.stats().timers_fired, 3);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(SimConfig::default(), 1);
        sim.add_process(Ticker {
            remaining: 10,
            fired_at: Vec::new(),
        });
        sim.run_until(SimTime::from_millis(35), 1000);
        assert_eq!(sim.stats().timers_fired, 3); // 10, 20, 30ms fired; 40ms pending
        assert!(sim.now() <= SimTime::from_millis(40));
    }

    /// A process that stops itself upon any message.
    struct Quitter;

    impl Process for Quitter {
        type Msg = ();

        fn on_message(&mut self, ctx: &mut Context<'_, ()>, _from: Addr, _msg: ()) {
            ctx.stop();
        }
    }

    #[test]
    fn stop_removes_process() {
        let mut sim = Simulation::new(SimConfig::default(), 1);
        let a = sim.add_process(Quitter);
        let b = sim.add_process(Quitter);
        sim.post(b, a, ());
        sim.post(b, a, ()); // second message arrives after the stop
        sim.run_until_quiescent(100);
        assert!(!sim.is_alive(a));
        assert!(sim.is_alive(b));
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().undeliverable, 1);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        // Two messages posted at the same instant with constant latency
        // must deliver in post order.
        struct Recorder {
            log: Vec<u32>,
        }
        impl Process for Recorder {
            type Msg = u32;
            fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _from: Addr, msg: u32) {
                self.log.push(msg);
            }
        }
        let mut sim = Simulation::new(SimConfig::default(), 3);
        let r = sim.add_process(Recorder { log: Vec::new() });
        let s = sim.add_process(Recorder { log: Vec::new() });
        for i in 0..10 {
            sim.post(s, r, i);
        }
        sim.run_until_quiescent(100);
        assert_eq!(sim.process(r).unwrap().log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn config_validates_loss() {
        let config = SimConfig {
            loss_probability: 1.5,
            ..SimConfig::default()
        };
        let _sim: Simulation<Echo> = Simulation::new(config, 0);
    }
}
