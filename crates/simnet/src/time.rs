//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in integer microseconds from the
/// start of the simulation.
///
/// Integer time keeps event ordering exact — no floating-point ties.
///
/// # Examples
///
/// ```
/// use geogrid_simnet::SimTime;
///
/// let t = SimTime::from_millis(2) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 2_500);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This time in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This time in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert!(a > b);
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(b + SimTime::from_millis(2), a);
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimTime::from_micros(1_500)), "1.500ms");
    }
}
