//! Simulation-wide counters.

use std::fmt;

/// Counters accumulated over a simulation run.
///
/// # Examples
///
/// ```
/// use geogrid_simnet::SimStats;
///
/// let stats = SimStats::default();
/// assert_eq!(stats.sent, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Messages handed to the network (including ones later dropped).
    pub sent: u64,
    /// Messages delivered to a live process.
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub lost: u64,
    /// Messages addressed to a crashed/removed process.
    pub undeliverable: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Total events processed.
    pub events: u64,
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} lost={} undeliverable={} timers={} events={}",
            self.sent,
            self.delivered,
            self.lost,
            self.undeliverable,
            self.timers_fired,
            self.events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_displayable() {
        let s = SimStats::default();
        assert_eq!(s.events, 0);
        assert!(format!("{s}").contains("sent=0"));
    }
}
