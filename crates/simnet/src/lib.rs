//! A deterministic discrete-event network simulator.
//!
//! The GeoGrid paper evaluates its overlay on simulated networks of up to
//! 16,000 proxy nodes. This crate is that substrate: a single-threaded,
//! seeded, discrete-event simulator in which *processes* (overlay nodes)
//! exchange messages with configurable latency and loss, set timers, and
//! can crash or leave.
//!
//! Design notes:
//!
//! * **Deterministic.** All randomness flows from one seeded RNG; two runs
//!   with the same seed replay the identical event order (ties broken by
//!   insertion sequence).
//! * **Sans-io friendly.** The protocol logic in `geogrid-core` is written
//!   as state machines; [`Process`] is the adapter that lets the simulator
//!   (or any other driver) own scheduling while protocol code owns
//!   decisions.
//!
//! # Examples
//!
//! ```
//! use geogrid_simnet::{Addr, Context, Process, SimConfig, SimTime, Simulation};
//!
//! struct Echo;
//! impl Process for Echo {
//!     type Msg = String;
//!     fn on_message(&mut self, ctx: &mut Context<'_, String>, from: Addr, msg: String) {
//!         if msg == "ping" {
//!             ctx.send(from, "pong".to_string());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default(), 42);
//! let a = sim.add_process(Echo);
//! let b = sim.add_process(Echo);
//! sim.post(a, b, "ping".to_string());
//! sim.run_until_quiescent(10_000);
//! assert_eq!(sim.stats().delivered, 2); // ping + pong
//! # let _ = SimTime::ZERO;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latency;
mod sim;
mod stats;
mod time;

pub use latency::LatencyModel;
pub use sim::{Addr, Context, Process, SimConfig, Simulation};
pub use stats::SimStats;
pub use time::SimTime;
