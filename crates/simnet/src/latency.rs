//! Message latency models.

use rand::Rng;

use crate::SimTime;

/// How long a message takes from sender to receiver.
///
/// GeoGrid's geographic mapping means overlay neighbors are physically
/// close, so a constant or lightly jittered latency is the realistic
/// default; the uniform model stresses reordering tolerance in tests.
///
/// # Examples
///
/// ```
/// use geogrid_simnet::{LatencyModel, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let d = LatencyModel::constant_millis(5).sample(&mut rng);
/// assert_eq!(d, SimTime::from_millis(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimTime),
    /// Latency uniform in `[min, max]`.
    Uniform {
        /// Minimum one-way latency.
        min: SimTime,
        /// Maximum one-way latency.
        max: SimTime,
    },
}

impl LatencyModel {
    /// Constant latency of `ms` milliseconds.
    pub fn constant_millis(ms: u64) -> Self {
        LatencyModel::Constant(SimTime::from_millis(ms))
    }

    /// Uniform latency between `min_ms` and `max_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `min_ms > max_ms`.
    pub fn uniform_millis(min_ms: u64, max_ms: u64) -> Self {
        assert!(min_ms <= max_ms, "min must not exceed max");
        LatencyModel::Uniform {
            min: SimTime::from_millis(min_ms),
            max: SimTime::from_millis(max_ms),
        }
    }

    /// Draws one latency value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                SimTime::from_micros(rng.random_range(min.as_micros()..=max.as_micros()))
            }
        }
    }
}

impl Default for LatencyModel {
    /// 5 ms constant — a sensible metro-area one-way latency.
    fn default() -> Self {
        LatencyModel::constant_millis(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = LatencyModel::constant_millis(7);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimTime::from_millis(7));
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = LatencyModel::uniform_millis(2, 9);
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!(d >= SimTime::from_millis(2) && d <= SimTime::from_millis(9));
        }
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn uniform_validates_bounds() {
        LatencyModel::uniform_millis(5, 1);
    }
}
