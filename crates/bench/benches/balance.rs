//! Criterion: adaptation-engine costs — one trigger check + plan over a
//! loaded network, and a full adaptation round (the per-round cost behind
//! Figures 7–10).

use criterion::{criterion_group, criterion_main, Criterion};
use geogrid_bench::common::build_network;
use geogrid_bench::ExperimentConfig;
use geogrid_core::balance::{plan_for_region, AdaptationEngine, BalanceConfig};
use geogrid_core::builder::Mode;
use geogrid_core::load::LoadMap;
use std::hint::black_box;

fn bench_balance(c: &mut Criterion) {
    let config = ExperimentConfig::default();
    let mut rng = config.rng(77, 0);
    let (_, grid) = config.field_and_grid(&mut rng);
    let topo = build_network(&config, Mode::DualPeer, 2_000, 0);
    let loads = LoadMap::from_grid(&topo, &grid);
    let balance = BalanceConfig::default();

    // Hottest region's planning cost.
    let hottest = topo
        .region_ids()
        .max_by(|&a, &b| {
            loads
                .index_of(&topo, a)
                .partial_cmp(&loads.index_of(&topo, b))
                .unwrap()
        })
        .unwrap();
    c.bench_function("plan_for_hottest_region_2000", |b| {
        b.iter(|| black_box(plan_for_region(&topo, &loads, &balance, hottest)))
    });

    c.bench_function("loadmap_from_grid_2000", |b| {
        b.iter(|| black_box(LoadMap::from_grid(&topo, &grid)))
    });

    let mut group = c.benchmark_group("adaptation_round");
    group.sample_size(10);
    group.bench_function("round_2000", |b| {
        b.iter_batched(
            || (topo.clone(), LoadMap::from_grid(&topo, &grid)),
            |(mut topo, mut loads)| {
                let engine = AdaptationEngine::default();
                black_box(engine.run_round(&mut topo, &grid, &mut loads))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_balance);
criterion_main!(benches);
