//! Criterion: network construction throughput — basic vs dual-peer joins
//! (the bootstrap cost behind Figures 2/3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geogrid_core::builder::{Mode, NetworkBuilder};
use geogrid_geometry::Space;
use std::hint::black_box;

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_network");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        for (mode, label) in [(Mode::Basic, "basic"), (Mode::DualPeer, "dual")] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    black_box(
                        NetworkBuilder::new(Space::paper_evaluation(), 42)
                            .mode(mode)
                            .build(n),
                    )
                })
            });
        }
    }
    group.finish();

    // Marginal join cost at an established size.
    let base = NetworkBuilder::new(Space::paper_evaluation(), 7)
        .mode(Mode::DualPeer)
        .build(2_000);
    c.bench_function("join_one_at_2000", |b| {
        b.iter_batched(
            || base.clone(),
            |mut net| {
                net.join_one();
                black_box(net)
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
